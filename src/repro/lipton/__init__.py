"""The paper's construction (Sections 5–6): double-exponential thresholds."""

from repro.lipton.canonical import (
    canonical_restart_policy,
    expected_behaviour,
    good_configuration,
)
from repro.lipton.classify import (
    Classification,
    MainBehaviour,
    classify,
    is_i_empty,
    is_i_high,
    is_i_low,
    is_i_proper,
    is_weakly_i_proper,
    max_proper_prefix,
)
from repro.lipton.construction import (
    assert_empty_name,
    assert_proper_name,
    build_equality_program,
    build_threshold_program,
    equality_predicate,
    incr_pair_name,
    large_name,
    suggested_quiet_window,
    threshold_predicate,
    zero_name,
)
from repro.lipton.levels import (
    RESERVE,
    all_registers,
    bar,
    double_exponential_lower_bound,
    level_constant,
    level_of,
    level_registers,
    threshold,
    x,
    xbar,
    y,
    ybar,
)
from repro.lipton.parallel import (
    build_parallel_program,
    decide_with_trusted_initialisation,
    parallel_program_size,
)

__all__ = [
    # levels
    "level_constant",
    "threshold",
    "double_exponential_lower_bound",
    "all_registers",
    "level_registers",
    "level_of",
    "bar",
    "x",
    "xbar",
    "y",
    "ybar",
    "RESERVE",
    # classification
    "is_i_proper",
    "is_weakly_i_proper",
    "is_i_low",
    "is_i_high",
    "is_i_empty",
    "max_proper_prefix",
    "classify",
    "Classification",
    "MainBehaviour",
    # construction
    "build_threshold_program",
    "build_equality_program",
    "equality_predicate",
    "threshold_predicate",
    "suggested_quiet_window",
    "assert_empty_name",
    "assert_proper_name",
    "zero_name",
    "large_name",
    "incr_pair_name",
    # canonical configurations
    "good_configuration",
    "expected_behaviour",
    "canonical_restart_policy",
    # parallel / leader baseline
    "build_parallel_program",
    "parallel_program_size",
    "decide_with_trusted_initialisation",
]
