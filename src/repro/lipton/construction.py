"""The succinct population program of Section 6 (Theorem 3).

Builds, for any ``n ≥ 1``, the population program with registers
``Q_1 ∪ … ∪ Q_n ∪ {R}`` and procedures **Main**, **AssertEmpty(i)**,
**AssertProper(i)**, **Zero(x)**, **IncrPair(x, y)** and **Large(x)** that
decides ``φ(m) ⇔ m ≥ k_n`` with ``k_n = 2·Σᵢ Nᵢ ≥ 2^(2^(n-1))``, using
size O(n).

Procedures are instantiated lazily (only the ones reachable from Main are
emitted), exactly mirroring the paper's "parameterised copies" convention:
``Large(x̄₂)`` and ``Large(ȳ₂)`` are distinct procedures of constant size.

The ``error_checking`` flag controls the paper's §5.2 machinery
(AssertProper / AssertEmpty calls and Large's entry check).  Disabling it
yields Lipton's *original* double-exponential counter, which is only
correct under trusted initialisation — this is both the leader-assisted
baseline (a leader is what buys trusted initialisation) and the ablation
of experiment X2.
"""

from __future__ import annotations

from typing import Dict, List

from repro.core.predicates import Threshold
from repro.programs.ast import (
    And,
    CallExpr,
    CallStmt,
    Const,
    Detect,
    If,
    Move,
    Not,
    Or,
    PopulationProgram,
    Procedure,
    Restart,
    Return,
    SetOutput,
    Statement,
    Swap,
    While,
)
from repro.programs.builder import program, seq
from repro.lipton.levels import (
    RESERVE,
    all_registers,
    bar,
    level_of,
    level_registers,
    threshold,
    x,
    xbar,
    y,
    ybar,
)


def assert_empty_name(i: int) -> str:
    return f"AssertEmpty({i})"


def assert_proper_name(i: int) -> str:
    return f"AssertProper({i})"


def zero_name(register: str) -> str:
    return f"Zero({register})"


def large_name(register: str) -> str:
    return f"Large({register})"


def incr_pair_name(xreg: str, yreg: str) -> str:
    return f"IncrPair({xreg},{yreg})"


class _ConstructionBuilder:
    """Emit the reachable procedure set on demand."""

    def __init__(self, n: int, error_checking: bool):
        self.n = n
        self.error_checking = error_checking
        self.procedures: Dict[str, Procedure] = {}

    # -- helpers -------------------------------------------------------
    def _add(self, proc: Procedure) -> str:
        if proc.name not in self.procedures:
            self.procedures[proc.name] = proc
        return proc.name

    def _maybe_assert_proper(self, i: int) -> List[Statement]:
        """A call to AssertProper(i), or nothing for i ≤ 0 (the paper notes
        AssertProper(0) has no effect) or with error checking disabled."""
        if i < 1 or not self.error_checking:
            return []
        return [CallStmt(self.assert_proper(i))]

    # -- AssertEmpty (levels i … n+1) -----------------------------------
    def assert_empty(self, i: int) -> str:
        name = assert_empty_name(i)
        if name in self.procedures:
            return name
        body: List[Statement] = []
        if i <= self.n:
            body.append(CallStmt(self.assert_empty(i + 1)))
            for reg in level_registers(i):
                body.append(If(Detect(reg), then_body=seq(Restart())))
        else:
            body.append(If(Detect(RESERVE), then_body=seq(Restart())))
        return self._add(Procedure(name, tuple(body)))

    # -- AssertProper ----------------------------------------------------
    def assert_proper(self, i: int) -> str:
        name = assert_proper_name(i)
        if name in self.procedures:
            return name
        # Reserve the name first: AssertProper(i) and Large/Zero on lower
        # levels never call AssertProper(i) back (calls are strictly
        # downward), but reserving avoids re-entry while building.
        body: List[Statement] = []
        if i > 1:
            body.append(CallStmt(self.assert_proper(i - 1)))
        for reg in (x(i), y(i)):
            body.append(If(Detect(reg), then_body=seq(Restart())))
            body.append(CallStmt(self.large(bar(reg))))
            body.append(If(Detect(reg), then_body=seq(Restart())))
        return self._add(Procedure(name, tuple(body)))

    # -- Zero ------------------------------------------------------------
    def zero(self, register: str) -> str:
        name = zero_name(register)
        if name in self.procedures:
            return name
        i = level_of(register)
        loop_body: List[Statement] = []
        loop_body.extend(self._maybe_assert_proper(i - 1))
        loop_body.append(If(Detect(register), then_body=seq(Return(False))))
        loop_body.append(
            If(CallExpr(self.large(bar(register))), then_body=seq(Return(True)))
        )
        body = (While(Const(True), tuple(loop_body)),)
        return self._add(Procedure(name, body, returns_value=True))

    # -- IncrPair ----------------------------------------------------------
    def incr_pair(self, xreg: str, yreg: str) -> str:
        name = incr_pair_name(xreg, yreg)
        if name in self.procedures:
            return name
        body = (
            If(
                CallExpr(self.zero(bar(yreg))),
                then_body=seq(
                    Swap(yreg, bar(yreg)),
                    If(
                        CallExpr(self.zero(bar(xreg))),
                        then_body=seq(Swap(xreg, bar(xreg))),
                        else_body=seq(Move(bar(xreg), xreg)),
                    ),
                ),
                else_body=seq(Move(bar(yreg), yreg)),
            ),
        )
        return self._add(Procedure(name, body))

    # -- Large -------------------------------------------------------------
    def large(self, register: str) -> str:
        name = large_name(register)
        if name in self.procedures:
            return name
        i = level_of(register)
        comp = bar(register)
        if i == 1:
            body = (
                If(
                    Detect(register),
                    then_body=seq(
                        Move(register, comp),
                        Swap(register, comp),
                        Return(True),
                    ),
                    else_body=seq(Return(False)),
                ),
            )
            return self._add(Procedure(name, body, returns_value=True))

        lx, ly = x(i - 1), y(i - 1)
        lxb, lyb = xbar(i - 1), ybar(i - 1)
        entry_check: List[Statement] = []
        if self.error_checking:
            entry_check.append(
                If(
                    Or(
                        Not(CallExpr(self.zero(lx))),
                        Not(CallExpr(self.zero(ly))),
                    ),
                    then_body=seq(Restart()),
                )
            )
        loop_body: List[Statement] = []
        loop_body.extend(self._maybe_assert_proper(i - 2))
        loop_body.append(
            If(
                Detect(register),
                then_body=seq(
                    Move(register, comp),
                    CallStmt(self.incr_pair(lx, ly)),
                    If(
                        And(CallExpr(self.zero(lx)), CallExpr(self.zero(ly))),
                        then_body=seq(Swap(register, comp), Return(True)),
                    ),
                ),
                else_body=seq(
                    If(
                        And(CallExpr(self.zero(lx)), CallExpr(self.zero(ly))),
                        then_body=seq(Return(False)),
                    ),
                    If(
                        Detect(comp),
                        then_body=seq(
                            Move(comp, register),
                            CallStmt(self.incr_pair(lxb, lyb)),
                        ),
                    ),
                ),
            )
        )
        body = tuple(entry_check) + (While(Const(True), tuple(loop_body)),)
        return self._add(Procedure(name, body, returns_value=True))

    # -- Main ----------------------------------------------------------------
    def _level_verification(self) -> List[Statement]:
        """The for-loop of Main: verify levels 1…n bottom-up."""
        body: List[Statement] = []
        for i in range(1, self.n + 1):
            loop_body: List[Statement] = []
            if self.error_checking:
                loop_body.append(CallStmt(self.assert_proper(i)))
                loop_body.append(CallStmt(self.assert_empty(i + 1)))
            body.append(
                While(
                    Or(
                        Not(CallExpr(self.large(xbar(i)))),
                        Not(CallExpr(self.large(ybar(i)))),
                    ),
                    tuple(loop_body),
                )
            )
        return body

    def main(self) -> str:
        body: List[Statement] = [SetOutput(False)]
        body.extend(self._level_verification())
        body.append(SetOutput(True))
        final_body: List[Statement] = []
        if self.error_checking:
            final_body.append(CallStmt(self.assert_proper(self.n)))
        body.append(While(Const(True), tuple(final_body)))
        return self._add(Procedure("Main", tuple(body)))

    def equality_main(self) -> str:
        """Main for ``m = k`` (the Section 9 extension).

        After the levels verify, a surplus in R distinguishes ``m > k``
        from ``m = k``: the surplus branch parks with OF = false, the
        accepting branch re-checks R forever and restarts if a surplus is
        ever certified (so spurious detect-false answers cannot make
        ``m > k`` accept stably)."""
        body: List[Statement] = [SetOutput(False)]
        body.extend(self._level_verification())
        park_body: List[Statement] = []
        if self.error_checking:
            park_body.append(CallStmt(self.assert_proper(self.n)))
        body.append(
            If(
                Detect(RESERVE),
                then_body=(While(Const(True), tuple(park_body)),),
            )
        )
        body.append(SetOutput(True))
        accept_body: List[Statement] = []
        if self.error_checking:
            accept_body.append(CallStmt(self.assert_proper(self.n)))
        accept_body.append(If(Detect(RESERVE), then_body=seq(Restart())))
        body.append(While(Const(True), tuple(accept_body)))
        return self._add(Procedure("Main", tuple(body)))


def build_threshold_program(
    n: int, *, error_checking: bool = True
) -> PopulationProgram:
    """The Section 6 population program deciding ``m ≥ threshold(n)``.

    With ``error_checking=False`` the §5.2 detect–restart machinery is
    stripped, leaving Lipton's bare counter (correct only from canonical
    initial configurations — the leader baseline / X2 ablation).
    """
    if n < 1:
        raise ValueError("need at least one level")
    builder = _ConstructionBuilder(n, error_checking)
    builder.main()
    return program(
        registers=all_registers(n),
        procedures=builder.procedures.values(),
        main="Main",
    )


def build_equality_program(
    n: int, *, error_checking: bool = True
) -> PopulationProgram:
    """The Section 9 extension: a population program of size O(n) deciding
    ``m = threshold(n)`` (equality instead of threshold).

    Identical to :func:`build_threshold_program` except for Main: after the
    level verification, a certified surplus in ``R`` parks the run with
    output *false* (the ``m > k`` case), while the accepting loop keeps
    re-checking ``R`` and restarts whenever a surplus is certified.
    """
    if n < 1:
        raise ValueError("need at least one level")
    builder = _ConstructionBuilder(n, error_checking)
    builder.equality_main()
    return program(
        registers=all_registers(n),
        procedures=builder.procedures.values(),
        main="Main",
    )


def equality_predicate(n: int):
    """The predicate decided by :func:`build_equality_program`."""
    from repro.core.predicates import Equality

    return Equality(threshold(n))


def threshold_predicate(n: int) -> Threshold:
    """The predicate decided by :func:`build_threshold_program`."""
    return Threshold(threshold(n))


def suggested_quiet_window(n: int) -> int:
    """A quiet-window size safely above the measured time-to-accept of the
    n-level program under canonical restarts.

    The accepting run must clear every level's verification loop without an
    intermediate observable event, and the level-i check costs ~N_i counter
    steps; measured accept times grow roughly 5x per level (n=1 ≈ 1k,
    n=2 ≈ 3k, n=3 ≈ 400k steps).  Deciders must not declare an output
    stable before that, hence these windows.
    """
    return min(1_000_000, 20_000 * 5 ** (n - 1))
