"""Lipton's original counter, i.e. the leader-assisted baseline (§5.1).

The paper builds on Lipton's double-exponential counting routine for
vector addition systems, which assumes *trusted initialisation* (registers
start at 0 / at their invariant values).  In the population-protocol world
a leader is exactly what buys this: the leader-assisted O(log log k)
construction of Blondin–Esparza–Jaax [14] has the leader orchestrate a
computation over properly initialised counters.

We therefore model the baseline as the Section 6 program with the §5.2
error-checking machinery removed (``error_checking=False``) and executed
from the canonical initial configuration.  This gives

* the Table 1 "with leaders" size row (measured with the same metric), and
* the X2 ablation: the same program run under *adversarial*
  initialisation is no longer correct (demonstrated in the robustness
  experiments).
"""

from __future__ import annotations

from repro.lipton.canonical import good_configuration
from repro.lipton.construction import build_threshold_program
from repro.programs.ast import PopulationProgram
from repro.programs.interpreter import decide_program
from repro.programs.size import ProgramSize, program_size


def build_parallel_program(n: int) -> PopulationProgram:
    """The bare Lipton counter with n levels (no error checking)."""
    return build_threshold_program(n, error_checking=False)


def parallel_program_size(n: int) -> ProgramSize:
    return program_size(build_parallel_program(n))


def decide_with_trusted_initialisation(
    n: int,
    m: int,
    *,
    seed: int | None = None,
    quiet_window: int | None = None,
    max_steps: int = 20_000_000,
) -> bool:
    """Run the bare counter from the canonical (leader-prepared) initial
    configuration and return its stabilised output."""
    from repro.lipton.construction import suggested_quiet_window

    if quiet_window is None:
        quiet_window = suggested_quiet_window(n)
    programme = build_parallel_program(n)
    return decide_program(
        programme,
        good_configuration(n, m),
        seed=seed,
        quiet_window=quiet_window,
        max_steps=max_steps,
    )
