"""Canonical "good" configurations C_m (proof of Theorem 3, App. A.4).

For each total ``m`` the proof designates one configuration the program
may stabilise on:

* if ``m ≥ k_n``: the n-proper configuration with the surplus in ``R``;
* otherwise: take the maximal ``j`` with ``2·Σ_{i<j} N_i ≤ m``, make the
  configuration (j−1)-proper and j-empty, and distribute the remaining
  ``r < 2·N_j`` units evenly across ``x̄_j`` and ``ȳ_j`` — which is j-low
  and (j+1)-empty.

These are exactly the configurations Lemma 4 lets Main stabilise on; every
other configuration (eventually) restarts.  :class:`CanonicalRestart`
policies built from :func:`good_configuration` therefore sample the runs
used in the paper's existence proof.
"""

from __future__ import annotations

from typing import Dict

from repro.lipton.classify import classify, MainBehaviour
from repro.lipton.levels import (
    RESERVE,
    level_constant,
    threshold,
    xbar,
    ybar,
)
from repro.programs.restart import CanonicalRestart


def good_configuration(n: int, m: int) -> Dict[str, int]:
    """The canonical configuration C_m for a population program with ``n``
    levels and ``m`` total units (zero registers omitted)."""
    if m < 0:
        raise ValueError("total must be nonnegative")
    k = threshold(n)
    config: Dict[str, int] = {}
    if m >= k:
        for i in range(1, n + 1):
            ni = level_constant(i)
            config[xbar(i)] = ni
            config[ybar(i)] = ni
        if m > k:
            config[RESERVE] = m - k
        return config
    # Maximal j with 2 * sum_{i<j} N_i <= m.
    j = 1
    used = 0
    while j < n and used + 2 * level_constant(j) <= m:
        used += 2 * level_constant(j)
        j += 1
    for i in range(1, j):
        ni = level_constant(i)
        config[xbar(i)] = ni
        config[ybar(i)] = ni
    remaining = m - used
    half = remaining // 2
    if half:
        config[xbar(j)] = half
    if remaining - half:
        config[ybar(j)] = remaining - half
    return config


def expected_behaviour(n: int, m: int) -> MainBehaviour:
    """Lemma 4's verdict on the canonical configuration (never RESTART)."""
    return classify(good_configuration(n, m), n).behaviour


def canonical_restart_policy(n: int) -> CanonicalRestart:
    """A restart policy that jumps straight to C_m (a legal outcome of the
    nondeterministic restart; sampling the proof's chosen fair run)."""
    return CanonicalRestart(lambda total: good_configuration(n, total))
