"""Configuration classification for the construction (Figure 2, App. A).

Let ``C ∈ ℕ^Q`` and ``i ∈ {1, …, n}``.  ``C`` is

* *i-proper*       if ``C(x_j) = C(y_j) = 0`` and ``C(x̄_j) = C(ȳ_j) = N_j``
  for all ``j ≤ i``;
* *weakly i-proper* if it is (i−1)-proper and ``C(x) + C(x̄) = N_i`` for
  ``x ∈ {x_i, y_i}``;
* *i-low*  if it is (i−1)-proper, not i-proper, and ``C(x) = 0`` and
  ``C(x̄) ≤ N_i`` for all ``x ∈ {x_i, y_i}``;
* *i-high* if it is (i−1)-proper, not i-proper, and
  ``C(x) + C(x̄) ≥ N_i`` for all ``x ∈ {x_i, y_i}``;
* *i-empty* if all registers on levels ``i, …, n+1`` are empty.

These predicates drive Lemma 4: Main may stabilise to *false* exactly on
configurations that are j-low and (j+1)-empty for some j, to *true* exactly
on n-proper configurations, and must restart otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Mapping, Optional

from repro.lipton.levels import (
    RESERVE,
    level_constant,
    level_registers,
    x,
    xbar,
    y,
    ybar,
)

Registers = Mapping[str, int]


def _get(config: Registers, register: str) -> int:
    return config.get(register, 0)


def is_i_proper(config: Registers, i: int) -> bool:
    """0-proper is vacuously true; otherwise check levels 1…i."""
    for j in range(1, i + 1):
        nj = level_constant(j)
        if _get(config, x(j)) or _get(config, y(j)):
            return False
        if _get(config, xbar(j)) != nj or _get(config, ybar(j)) != nj:
            return False
    return True


def is_weakly_i_proper(config: Registers, i: int) -> bool:
    if not is_i_proper(config, i - 1):
        return False
    ni = level_constant(i)
    return (
        _get(config, x(i)) + _get(config, xbar(i)) == ni
        and _get(config, y(i)) + _get(config, ybar(i)) == ni
    )


def is_i_low(config: Registers, i: int) -> bool:
    if not is_i_proper(config, i - 1) or is_i_proper(config, i):
        return False
    ni = level_constant(i)
    return (
        _get(config, x(i)) == 0
        and _get(config, y(i)) == 0
        and _get(config, xbar(i)) <= ni
        and _get(config, ybar(i)) <= ni
    )


def is_i_high(config: Registers, i: int) -> bool:
    if not is_i_proper(config, i - 1) or is_i_proper(config, i):
        return False
    ni = level_constant(i)
    return (
        _get(config, x(i)) + _get(config, xbar(i)) >= ni
        and _get(config, y(i)) + _get(config, ybar(i)) >= ni
    )


def is_i_empty(config: Registers, i: int, n: int) -> bool:
    """All registers on levels ``i, …, n`` and ``R`` are empty.

    ``i = n + 1`` checks only ``R``.
    """
    for j in range(i, n + 1):
        if any(_get(config, reg) for reg in level_registers(j)):
            return False
    return _get(config, RESERVE) == 0


class MainBehaviour(Enum):
    """Lemma 4's trichotomy for Main run on a register configuration."""

    STABILISE_FALSE = "stabilise_false"
    STABILISE_TRUE = "stabilise_true"
    RESTART = "restart"


@dataclass(frozen=True)
class Classification:
    """Summary of a configuration against the Lemma 4 case analysis.

    ``low_level`` is the ``j`` for which the configuration is j-low and
    (j+1)-empty (if any); ``behaviour`` is the verdict Lemma 4 assigns.
    """

    behaviour: MainBehaviour
    n_proper: bool
    low_level: Optional[int]
    max_proper_prefix: int


def max_proper_prefix(config: Registers, n: int) -> int:
    """The largest ``i ≤ n`` such that the configuration is i-proper."""
    best = 0
    for i in range(1, n + 1):
        if is_i_proper(config, i):
            best = i
        else:
            break
    return best


def classify(config: Registers, n: int) -> Classification:
    """Apply Lemma 4's case analysis to a register configuration."""
    if is_i_proper(config, n):
        return Classification(
            behaviour=MainBehaviour.STABILISE_TRUE,
            n_proper=True,
            low_level=None,
            max_proper_prefix=n,
        )
    prefix = max_proper_prefix(config, n)
    j = prefix + 1
    if j <= n and is_i_low(config, j) and is_i_empty(config, j + 1, n):
        return Classification(
            behaviour=MainBehaviour.STABILISE_FALSE,
            n_proper=False,
            low_level=j,
            max_proper_prefix=prefix,
        )
    return Classification(
        behaviour=MainBehaviour.RESTART,
        n_proper=False,
        low_level=None,
        max_proper_prefix=prefix,
    )
