"""Level constants and register naming for the Section 6 construction.

The construction uses registers ``Q = Q_1 ∪ … ∪ Q_n ∪ {R}`` with
``Q_i = {x_i, y_i, x̄_i, ȳ_i}`` and level constants

    N_1 = 1,   N_{i+1} = (N_i + 1)²

so ``N_i + 1 = 2^(2^(i-1))`` and the decided threshold
``k_n = 2·Σᵢ N_i`` satisfies ``k_n ≥ 2^(2^(n-1))`` (Theorem 3).  All
arithmetic uses native bignums, so any level is representable.
"""

from __future__ import annotations

from functools import lru_cache
from typing import List, Tuple

RESERVE = "R"


@lru_cache(maxsize=None)
def level_constant(i: int) -> int:
    """``N_i`` — the invariant sum ``x_i + x̄_i = y_i + ȳ_i = N_i``."""
    if i < 1:
        raise ValueError("levels are numbered from 1")
    if i == 1:
        return 1
    previous = level_constant(i - 1)
    return (previous + 1) ** 2


def threshold(n: int) -> int:
    """``k_n = 2·Σ_{i=1}^n N_i`` — the threshold decided with n levels."""
    if n < 1:
        raise ValueError("need at least one level")
    return 2 * sum(level_constant(i) for i in range(1, n + 1))


def double_exponential_lower_bound(n: int) -> int:
    """The guarantee of Theorem 3: ``k_n ≥ 2^(2^(n-1))``."""
    return 2 ** (2 ** (n - 1))


def x(i: int) -> str:
    return f"x{i}"


def xbar(i: int) -> str:
    return f"xb{i}"


def y(i: int) -> str:
    return f"y{i}"


def ybar(i: int) -> str:
    return f"yb{i}"


def bar(register: str) -> str:
    """The complement register (the paper identifies x̄̄ with x)."""
    if register == RESERVE:
        raise ValueError("R has no complement")
    if register.startswith("xb"):
        return "x" + register[2:]
    if register.startswith("yb"):
        return "y" + register[2:]
    if register.startswith("x"):
        return "xb" + register[1:]
    if register.startswith("y"):
        return "yb" + register[1:]
    raise ValueError(f"not a level register: {register!r}")


def level_of(register: str) -> int:
    """The level a register belongs to (R is level n+1 by convention and
    raises here; callers handle it explicitly)."""
    if register == RESERVE:
        raise ValueError("R is the level-(n+1) register")
    digits = register.lstrip("xyb")
    return int(digits)


def level_registers(i: int) -> Tuple[str, str, str, str]:
    """``Q_i = (x_i, x̄_i, y_i, ȳ_i)``."""
    return (x(i), xbar(i), y(i), ybar(i))


def all_registers(n: int) -> List[str]:
    """``Q_1 ∪ … ∪ Q_n ∪ {R}`` in a stable order."""
    registers: List[str] = []
    for i in range(1, n + 1):
        registers.extend(level_registers(i))
    registers.append(RESERVE)
    return registers
