"""Lint rules: the determinism & fork-safety invariants of the runtime.

Each rule is a function ``(tree, path) -> List[Diagnostic]`` over one
parsed module.  The rules are deliberately *syntactic* — no type
inference — tuned so that a true positive is an invariant violation the
distributed runtime actually depends on, and intentional exceptions are
marked ``# lint-ok: CODE`` at the offending line (see
:mod:`repro.lint.engine`).

* ``LNT001`` — call to a module-level ``random.*`` function (or
  ``numpy.random.*`` legacy global).  These draw from interpreter-global,
  implicitly-seeded state; every draw in this codebase must come from an
  explicitly seeded ``random.Random`` (or ``numpy`` ``Generator``)
  threaded through the call tree, or runs stop being reproducible and
  workers fork identical streams.  Constructors (``random.Random``,
  ``random.SystemRandom``, ``numpy.random.default_rng``,
  ``numpy.random.Generator`` …) are fine: they *create* local state.
* ``LNT002`` — time-derived seed: a wall-clock call (``time.time``,
  ``time.time_ns``, ``time.monotonic``, ``datetime.now`` …) in the
  argument list of a ``Random(...)`` / ``default_rng(...)`` construction
  or a ``.seed(...)`` call.  Time seeds differ per process and per run;
  seeds must come from the experiment spec / seed tree.
* ``LNT003`` — RNG consumption inside iteration over an unordered
  collection: a ``for`` whose iterable is syntactically a set (literal,
  comprehension, or ``set()``/``frozenset()`` call) and whose body calls
  an RNG method (a draw on a name containing ``rng``/``random``, or any
  well-known draw method like ``choice``/``shuffle``).  Set order varies
  with ``PYTHONHASHSEED``, so the draw sequence would too — iterate a
  ``sorted(...)`` view instead.
* ``LNT004`` — unpicklable pool-crossing type: in the packages whose
  objects cross process boundaries (core, programs, machines, conversion,
  resilience, lipton, baselines), a class that stores an unpicklable
  value on ``self`` (a ``MappingProxyType``, a lock/condition/semaphore,
  an open file handle) must define ``__reduce__``/``__getstate__`` (or
  ``__reduce_ex__``/``__deepcopy__``-style custom serialisation) so a
  pool ``submit`` does not explode at pickling time.
* ``LNT005`` — lowercase module-level mutable container: module-level
  lists/dicts/sets that are not ALL_CAPS constants (or sunken
  ``_private`` singletons managed through accessor functions with
  ``global``) are fork-hazardous ambient state — each worker silently
  gets a divergent copy.
* ``LNT006`` — unused module-level import (``__init__.py`` re-export
  surfaces are skipped).
* ``LNT007`` — population size captured at construction time: a
  ``self.<attr> = <config>.size`` / ``len(<config>)`` assignment inside
  ``__init__``, or a nested ``def``/``lambda`` closing over a local that
  was bound (exactly once) from such an expression.  Populations are
  dynamic under churn (:mod:`repro.resilience.churn`): a size snapshot
  taken at construction/definition time goes stale the moment a
  ``JoinAgents``/``LeaveAgents`` fault fires — read the live size at use
  time, or refresh the local after every fault barrier (a local that
  *is* reassigned elsewhere in the function is not flagged).
"""

from __future__ import annotations

import ast
from typing import Dict, List, Set

from repro.core.diagnostics import Diagnostic, WARNING

#: Constructors on the random/numpy.random modules that *create* local
#: generator state rather than drawing from the global one.
_RNG_CONSTRUCTORS = {
    "Random",
    "SystemRandom",
    "default_rng",
    "Generator",
    "RandomState",
    "PCG64",
    "Philox",
    "SFC64",
    "MT19937",
    "SeedSequence",
}

#: Wall-clock sources that must never feed a seed.
_TIME_CALLS = {
    ("time", "time"),
    ("time", "time_ns"),
    ("time", "monotonic"),
    ("time", "monotonic_ns"),
    ("time", "perf_counter"),
    ("time", "perf_counter_ns"),
    ("datetime", "now"),
    ("datetime", "utcnow"),
}

#: Method names that draw from an RNG.
_DRAW_METHODS = {
    "random",
    "randint",
    "randrange",
    "uniform",
    "choice",
    "choices",
    "sample",
    "shuffle",
    "gauss",
    "normalvariate",
    "expovariate",
    "betavariate",
    "binomial",
    "multinomial",
    "getrandbits",
    "triangular",
}

#: Attribute sources whose values do not pickle.
_UNPICKLABLE_CALLS = {
    "MappingProxyType",
    "Lock",
    "RLock",
    "Condition",
    "Event",
    "Semaphore",
    "BoundedSemaphore",
    "Barrier",
    "open",
}

#: Custom-serialisation hooks, any of which makes a class pool-safe.
_PICKLE_HOOKS = {"__reduce__", "__reduce_ex__", "__getstate__"}

#: Package prefixes (relative to ``src/repro``) whose types cross the
#: process-pool / distributed boundary.
POOL_CROSSING_PREFIXES = (
    "core",
    "programs",
    "machines",
    "conversion",
    "resilience",
    "lipton",
    "baselines",
)


def _diag(code: str, message: str, path: str, node: ast.AST) -> Diagnostic:
    return Diagnostic(
        code=code,
        severity=WARNING,
        message=message,
        target=path,
        location=str(getattr(node, "lineno", 0)),
    )


def _dotted(node: ast.AST) -> str:
    """``a.b.c`` for an attribute chain rooted at a Name, else ``""``."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


# ----------------------------------------------------------------------
# LNT001 / LNT002 — global RNG use and time-derived seeds
# ----------------------------------------------------------------------
def rule_global_rng(tree: ast.Module, path: str) -> List[Diagnostic]:
    out: List[Diagnostic] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        dotted = _dotted(node.func)
        parts = dotted.split(".")
        # random.X(...) / np.random.X(...) / numpy.random.X(...)
        is_stdlib = len(parts) == 2 and parts[0] == "random"
        is_numpy = (
            len(parts) == 3
            and parts[0] in ("np", "numpy")
            and parts[1] == "random"
        )
        if (is_stdlib or is_numpy) and parts[-1] not in _RNG_CONSTRUCTORS:
            out.append(
                _diag(
                    "LNT001",
                    f"call to global RNG function {dotted}(): draw from an "
                    "explicitly seeded random.Random / numpy Generator "
                    "instead",
                    path,
                    node,
                )
            )
    return out


def _contains_time_call(node: ast.AST) -> bool:
    for sub in ast.walk(node):
        if isinstance(sub, ast.Call):
            dotted = _dotted(sub.func)
            parts = tuple(dotted.split("."))
            if len(parts) >= 2 and (parts[-2], parts[-1]) in _TIME_CALLS:
                return True
    return False


def rule_time_seed(tree: ast.Module, path: str) -> List[Diagnostic]:
    out: List[Diagnostic] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        name = (
            func.attr
            if isinstance(func, ast.Attribute)
            else func.id
            if isinstance(func, ast.Name)
            else ""
        )
        if name not in ("Random", "default_rng", "seed", "SeedSequence"):
            continue
        for arg in [*node.args, *(kw.value for kw in node.keywords)]:
            if _contains_time_call(arg):
                out.append(
                    _diag(
                        "LNT002",
                        f"time-derived seed passed to {name}(): seeds must "
                        "come from the experiment spec / seed tree, never "
                        "the wall clock",
                        path,
                        node,
                    )
                )
                break
    return out


# ----------------------------------------------------------------------
# LNT003 — RNG draws inside unordered-set iteration
# ----------------------------------------------------------------------
def _is_set_expr(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        func = node.func
        name = func.id if isinstance(func, ast.Name) else ""
        return name in ("set", "frozenset")
    return False


def _draws_rng(body: List[ast.stmt]) -> ast.Call:
    for stmt in body:
        for node in ast.walk(stmt):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute):
                continue
            root = _dotted(func.value).split(".")[0].lower()
            if func.attr in _DRAW_METHODS and ("rng" in root or "random" in root):
                return node
    return None


def rule_rng_in_set_iteration(tree: ast.Module, path: str) -> List[Diagnostic]:
    out: List[Diagnostic] = []
    for node in ast.walk(tree):
        if not isinstance(node, (ast.For, ast.AsyncFor)):
            continue
        if not _is_set_expr(node.iter):
            continue
        draw = _draws_rng(node.body)
        if draw is not None:
            out.append(
                _diag(
                    "LNT003",
                    "RNG draw inside iteration over an unordered set: the "
                    "draw sequence depends on PYTHONHASHSEED — iterate a "
                    "sorted(...) view",
                    path,
                    node,
                )
            )
    return out


# ----------------------------------------------------------------------
# LNT004 — pool-crossing classes with unpicklable attributes
# ----------------------------------------------------------------------
def rule_pool_pickle_safety(tree: ast.Module, path: str) -> List[Diagnostic]:
    normalised = path.replace("\\", "/")
    if normalised.startswith("src/repro/"):
        normalised = normalised[len("src/repro/") :]
    if not normalised.startswith(POOL_CROSSING_PREFIXES):
        return []
    out: List[Diagnostic] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.ClassDef):
            continue
        hooks: Set[str] = {
            item.name
            for item in node.body
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        if hooks & _PICKLE_HOOKS:
            continue
        offender = None
        for sub in ast.walk(node):
            # self.<attr> = <unpicklable>(...) — incl. object.__setattr__
            if isinstance(sub, ast.Assign):
                targets = sub.targets
                value = sub.value
            elif isinstance(sub, ast.Call):
                dotted = _dotted(sub.func)
                if dotted.endswith("__setattr__") and len(sub.args) == 3:
                    targets, value = [sub.args[1]], sub.args[2]
                else:
                    continue
            else:
                continue
            stores_on_self = any(
                (isinstance(t, ast.Attribute) and _dotted(t).startswith("self."))
                or isinstance(t, ast.Constant)  # __setattr__(self, "name", v)
                for t in targets
            )
            if not stores_on_self:
                continue
            for call in ast.walk(value):
                if isinstance(call, ast.Call):
                    name = _dotted(call.func).split(".")[-1]
                    if name in _UNPICKLABLE_CALLS:
                        offender = (call, name)
                        break
            if offender:
                break
        if offender:
            call, name = offender
            out.append(
                _diag(
                    "LNT004",
                    f"class {node.name} stores a {name}(...) on instances "
                    "but defines no __reduce__/__getstate__: it will not "
                    "survive the pool/distributed pickle boundary",
                    path,
                    call,
                )
            )
    return out


# ----------------------------------------------------------------------
# LNT005 — lowercase module-level mutable containers
# ----------------------------------------------------------------------
def _is_mutable_container(node: ast.AST) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("list", "dict", "set", "defaultdict", "deque", "Counter", "OrderedDict")
    return False


def rule_module_mutable_state(tree: ast.Module, path: str) -> List[Diagnostic]:
    out: List[Diagnostic] = []
    for stmt in tree.body:
        if isinstance(stmt, ast.Assign):
            targets, value = stmt.targets, stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets, value = [stmt.target], stmt.value
        else:
            continue
        if not _is_mutable_container(value):
            continue
        for target in targets:
            if not isinstance(target, ast.Name):
                continue
            name = target.id
            if name == name.upper() or name.startswith("__"):
                continue  # ALL_CAPS constant / dunder (__all__ etc.)
            out.append(
                _diag(
                    "LNT005",
                    f"module-level mutable container {name!r}: name it "
                    "ALL_CAPS if it is a constant, or move it behind an "
                    "accessor — ambient mutable state diverges across "
                    "forked workers",
                    path,
                    stmt,
                )
            )
    return out


# ----------------------------------------------------------------------
# LNT006 — unused module-level imports
# ----------------------------------------------------------------------
def rule_unused_imports(tree: ast.Module, path: str) -> List[Diagnostic]:
    if path.endswith("__init__.py"):
        return []  # re-export surface: unused-looking imports are the point
    imported: Dict[str, ast.stmt] = {}
    for stmt in tree.body:
        if isinstance(stmt, ast.Import):
            for alias in stmt.names:
                name = alias.asname or alias.name.split(".")[0]
                imported[name] = stmt
        elif isinstance(stmt, ast.ImportFrom):
            if stmt.module == "__future__":
                continue
            for alias in stmt.names:
                if alias.name == "*":
                    continue
                imported[alias.asname or alias.name] = stmt
    if not imported:
        return []
    used: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Name):
            used.add(node.id)
        elif isinstance(node, ast.Attribute):
            dotted = _dotted(node)
            if dotted:
                used.add(dotted.split(".")[0])
    # Names in string annotations and docstring doctests are invisible to
    # the walker; a grep over the raw source would over-match instead.
    # ``__all__`` entries count as uses.
    for node in ast.walk(tree):
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            if node.value in imported:
                used.add(node.value)
    out: List[Diagnostic] = []
    for name, stmt in imported.items():
        if name not in used:
            out.append(
                _diag("LNT006", f"unused import {name!r}", path, stmt)
            )
    return out


# ----------------------------------------------------------------------
# LNT007 — population size captured at construction time
# ----------------------------------------------------------------------
#: Identifier fragments that mark a value as a population configuration.
_POP_NAME_HINTS = ("config", "population", "current", "dense", "multiset")


def _is_pop_size_expr(node: ast.AST) -> bool:
    """``<config-ish>.size`` or ``len(<config-ish>)``."""
    if isinstance(node, ast.Attribute) and node.attr == "size":
        chain = _dotted(node).lower()
        return any(hint in chain for hint in _POP_NAME_HINTS)
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == "len"
        and len(node.args) == 1
        and not node.keywords
    ):
        chain = _dotted(node.args[0]).lower()
        return any(hint in chain for hint in _POP_NAME_HINTS)
    return False


def _bound_names(target: ast.AST) -> List[str]:
    """Plain names bound by an assignment target (tuples unpacked)."""
    if isinstance(target, ast.Name):
        return [target.id]
    if isinstance(target, (ast.Tuple, ast.List)):
        out: List[str] = []
        for elt in target.elts:
            out.extend(_bound_names(elt))
        return out
    return []


def rule_population_size_capture(tree: ast.Module, path: str) -> List[Diagnostic]:
    out: List[Diagnostic] = []

    # Pattern A: ``self.<attr> = …<config>.size…`` inside ``__init__`` —
    # the attribute freezes the size for the object's whole lifetime.
    for cls in ast.walk(tree):
        if not isinstance(cls, ast.ClassDef):
            continue
        for item in cls.body:
            if (
                not isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
                or item.name != "__init__"
            ):
                continue
            for stmt in ast.walk(item):
                if not isinstance(stmt, ast.Assign):
                    continue
                on_self = any(
                    isinstance(t, ast.Attribute)
                    and _dotted(t).startswith("self.")
                    for t in stmt.targets
                )
                if not on_self:
                    continue
                for sub in ast.walk(stmt.value):
                    if _is_pop_size_expr(sub):
                        out.append(
                            _diag(
                                "LNT007",
                                f"{cls.name}.__init__ stores the population "
                                "size on self: the population can resize "
                                "under churn — read the live size at use "
                                "time instead",
                                path,
                                stmt,
                            )
                        )
                        break

    # Pattern B: a nested def/lambda closing over a local bound exactly
    # once from a size expression — the closure sees the stale snapshot
    # forever.  Locals that are reassigned elsewhere (e.g. refreshed at a
    # fault barrier) are fine.
    for func in ast.walk(tree):
        if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        bindings: Dict[str, int] = {}
        size_bound: Dict[str, ast.Assign] = {}
        for stmt in ast.walk(func):
            if stmt is func:
                continue
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue  # inner scopes counted separately
            if isinstance(stmt, ast.Assign):
                names = [n for t in stmt.targets for n in _bound_names(t)]
                for name in names:
                    bindings[name] = bindings.get(name, 0) + 1
                if _is_pop_size_expr(stmt.value):
                    for name in names:
                        size_bound[name] = stmt
            elif isinstance(stmt, ast.AugAssign):
                for name in _bound_names(stmt.target):
                    bindings[name] = bindings.get(name, 0) + 1
            elif isinstance(stmt, (ast.For, ast.AsyncFor)):
                for name in _bound_names(stmt.target):
                    bindings[name] = bindings.get(name, 0) + 1
        frozen = {
            name for name, stmt in size_bound.items() if bindings.get(name) == 1
        }
        if not frozen:
            continue
        for inner in ast.walk(func):
            if inner is func or not isinstance(
                inner, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                continue
            inner_args = {a.arg for a in inner.args.args}
            inner_args |= {a.arg for a in inner.args.kwonlyargs}
            body = inner.body if isinstance(inner.body, list) else [inner.body]
            rebound = {
                n
                for stmt in body
                for sub in ast.walk(stmt)
                if isinstance(sub, ast.Assign)
                for t in sub.targets
                for n in _bound_names(t)
            }
            for stmt in body:
                hit = None
                for sub in ast.walk(stmt):
                    if (
                        isinstance(sub, ast.Name)
                        and isinstance(sub.ctx, ast.Load)
                        and sub.id in frozen
                        and sub.id not in inner_args
                        and sub.id not in rebound
                    ):
                        hit = sub
                        break
                if hit is not None:
                    label = getattr(inner, "name", "<lambda>")
                    out.append(
                        _diag(
                            "LNT007",
                            f"closure {label} captures {hit.id!r}, a "
                            "population size snapshot taken at definition "
                            "time: the population can resize under churn — "
                            "read the live size inside the closure or "
                            "refresh the local after fault barriers",
                            path,
                            inner,
                        )
                    )
                    break
    return out


#: All rules, in code order; the engine runs each over every module.
ALL_RULES = (
    rule_global_rng,
    rule_time_seed,
    rule_rng_in_set_iteration,
    rule_pool_pickle_safety,
    rule_module_mutable_state,
    rule_unused_imports,
    rule_population_size_capture,
)
