"""Lint rules: the determinism & fork-safety invariants of the runtime.

Each rule is a function ``(tree, path) -> List[Diagnostic]`` over one
parsed module.  The rules are deliberately *syntactic* — no type
inference — tuned so that a true positive is an invariant violation the
distributed runtime actually depends on, and intentional exceptions are
marked ``# lint-ok: CODE`` at the offending line (see
:mod:`repro.lint.engine`).

* ``LNT001`` — call to a module-level ``random.*`` function (or
  ``numpy.random.*`` legacy global).  These draw from interpreter-global,
  implicitly-seeded state; every draw in this codebase must come from an
  explicitly seeded ``random.Random`` (or ``numpy`` ``Generator``)
  threaded through the call tree, or runs stop being reproducible and
  workers fork identical streams.  Constructors (``random.Random``,
  ``random.SystemRandom``, ``numpy.random.default_rng``,
  ``numpy.random.Generator`` …) are fine: they *create* local state.
* ``LNT002`` — time-derived seed: a wall-clock call (``time.time``,
  ``time.time_ns``, ``time.monotonic``, ``datetime.now`` …) in the
  argument list of a ``Random(...)`` / ``default_rng(...)`` construction
  or a ``.seed(...)`` call.  Time seeds differ per process and per run;
  seeds must come from the experiment spec / seed tree.
* ``LNT003`` — RNG consumption inside iteration over an unordered
  collection: a ``for`` whose iterable is syntactically a set (literal,
  comprehension, or ``set()``/``frozenset()`` call) and whose body calls
  an RNG method (a draw on a name containing ``rng``/``random``, or any
  well-known draw method like ``choice``/``shuffle``).  Set order varies
  with ``PYTHONHASHSEED``, so the draw sequence would too — iterate a
  ``sorted(...)`` view instead.
* ``LNT004`` — unpicklable pool-crossing type: in the packages whose
  objects cross process boundaries (core, programs, machines, conversion,
  resilience, lipton, baselines), a class that stores an unpicklable
  value on ``self`` (a ``MappingProxyType``, a lock/condition/semaphore,
  an open file handle) must define ``__reduce__``/``__getstate__`` (or
  ``__reduce_ex__``/``__deepcopy__``-style custom serialisation) so a
  pool ``submit`` does not explode at pickling time.
* ``LNT005`` — lowercase module-level mutable container: module-level
  lists/dicts/sets that are not ALL_CAPS constants (or sunken
  ``_private`` singletons managed through accessor functions with
  ``global``) are fork-hazardous ambient state — each worker silently
  gets a divergent copy.
* ``LNT006`` — unused module-level import (``__init__.py`` re-export
  surfaces are skipped).
"""

from __future__ import annotations

import ast
from typing import Dict, List, Set

from repro.core.diagnostics import Diagnostic, WARNING

#: Constructors on the random/numpy.random modules that *create* local
#: generator state rather than drawing from the global one.
_RNG_CONSTRUCTORS = {
    "Random",
    "SystemRandom",
    "default_rng",
    "Generator",
    "RandomState",
    "PCG64",
    "Philox",
    "SFC64",
    "MT19937",
    "SeedSequence",
}

#: Wall-clock sources that must never feed a seed.
_TIME_CALLS = {
    ("time", "time"),
    ("time", "time_ns"),
    ("time", "monotonic"),
    ("time", "monotonic_ns"),
    ("time", "perf_counter"),
    ("time", "perf_counter_ns"),
    ("datetime", "now"),
    ("datetime", "utcnow"),
}

#: Method names that draw from an RNG.
_DRAW_METHODS = {
    "random",
    "randint",
    "randrange",
    "uniform",
    "choice",
    "choices",
    "sample",
    "shuffle",
    "gauss",
    "normalvariate",
    "expovariate",
    "betavariate",
    "binomial",
    "multinomial",
    "getrandbits",
    "triangular",
}

#: Attribute sources whose values do not pickle.
_UNPICKLABLE_CALLS = {
    "MappingProxyType",
    "Lock",
    "RLock",
    "Condition",
    "Event",
    "Semaphore",
    "BoundedSemaphore",
    "Barrier",
    "open",
}

#: Custom-serialisation hooks, any of which makes a class pool-safe.
_PICKLE_HOOKS = {"__reduce__", "__reduce_ex__", "__getstate__"}

#: Package prefixes (relative to ``src/repro``) whose types cross the
#: process-pool / distributed boundary.
POOL_CROSSING_PREFIXES = (
    "core",
    "programs",
    "machines",
    "conversion",
    "resilience",
    "lipton",
    "baselines",
)


def _diag(code: str, message: str, path: str, node: ast.AST) -> Diagnostic:
    return Diagnostic(
        code=code,
        severity=WARNING,
        message=message,
        target=path,
        location=str(getattr(node, "lineno", 0)),
    )


def _dotted(node: ast.AST) -> str:
    """``a.b.c`` for an attribute chain rooted at a Name, else ``""``."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


# ----------------------------------------------------------------------
# LNT001 / LNT002 — global RNG use and time-derived seeds
# ----------------------------------------------------------------------
def rule_global_rng(tree: ast.Module, path: str) -> List[Diagnostic]:
    out: List[Diagnostic] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        dotted = _dotted(node.func)
        parts = dotted.split(".")
        # random.X(...) / np.random.X(...) / numpy.random.X(...)
        is_stdlib = len(parts) == 2 and parts[0] == "random"
        is_numpy = (
            len(parts) == 3
            and parts[0] in ("np", "numpy")
            and parts[1] == "random"
        )
        if (is_stdlib or is_numpy) and parts[-1] not in _RNG_CONSTRUCTORS:
            out.append(
                _diag(
                    "LNT001",
                    f"call to global RNG function {dotted}(): draw from an "
                    "explicitly seeded random.Random / numpy Generator "
                    "instead",
                    path,
                    node,
                )
            )
    return out


def _contains_time_call(node: ast.AST) -> bool:
    for sub in ast.walk(node):
        if isinstance(sub, ast.Call):
            dotted = _dotted(sub.func)
            parts = tuple(dotted.split("."))
            if len(parts) >= 2 and (parts[-2], parts[-1]) in _TIME_CALLS:
                return True
    return False


def rule_time_seed(tree: ast.Module, path: str) -> List[Diagnostic]:
    out: List[Diagnostic] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        name = (
            func.attr
            if isinstance(func, ast.Attribute)
            else func.id
            if isinstance(func, ast.Name)
            else ""
        )
        if name not in ("Random", "default_rng", "seed", "SeedSequence"):
            continue
        for arg in [*node.args, *(kw.value for kw in node.keywords)]:
            if _contains_time_call(arg):
                out.append(
                    _diag(
                        "LNT002",
                        f"time-derived seed passed to {name}(): seeds must "
                        "come from the experiment spec / seed tree, never "
                        "the wall clock",
                        path,
                        node,
                    )
                )
                break
    return out


# ----------------------------------------------------------------------
# LNT003 — RNG draws inside unordered-set iteration
# ----------------------------------------------------------------------
def _is_set_expr(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        func = node.func
        name = func.id if isinstance(func, ast.Name) else ""
        return name in ("set", "frozenset")
    return False


def _draws_rng(body: List[ast.stmt]) -> ast.Call:
    for stmt in body:
        for node in ast.walk(stmt):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute):
                continue
            root = _dotted(func.value).split(".")[0].lower()
            if func.attr in _DRAW_METHODS and ("rng" in root or "random" in root):
                return node
    return None


def rule_rng_in_set_iteration(tree: ast.Module, path: str) -> List[Diagnostic]:
    out: List[Diagnostic] = []
    for node in ast.walk(tree):
        if not isinstance(node, (ast.For, ast.AsyncFor)):
            continue
        if not _is_set_expr(node.iter):
            continue
        draw = _draws_rng(node.body)
        if draw is not None:
            out.append(
                _diag(
                    "LNT003",
                    "RNG draw inside iteration over an unordered set: the "
                    "draw sequence depends on PYTHONHASHSEED — iterate a "
                    "sorted(...) view",
                    path,
                    node,
                )
            )
    return out


# ----------------------------------------------------------------------
# LNT004 — pool-crossing classes with unpicklable attributes
# ----------------------------------------------------------------------
def rule_pool_pickle_safety(tree: ast.Module, path: str) -> List[Diagnostic]:
    normalised = path.replace("\\", "/")
    if normalised.startswith("src/repro/"):
        normalised = normalised[len("src/repro/") :]
    if not normalised.startswith(POOL_CROSSING_PREFIXES):
        return []
    out: List[Diagnostic] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.ClassDef):
            continue
        hooks: Set[str] = {
            item.name
            for item in node.body
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        if hooks & _PICKLE_HOOKS:
            continue
        offender = None
        for sub in ast.walk(node):
            # self.<attr> = <unpicklable>(...) — incl. object.__setattr__
            if isinstance(sub, ast.Assign):
                targets = sub.targets
                value = sub.value
            elif isinstance(sub, ast.Call):
                dotted = _dotted(sub.func)
                if dotted.endswith("__setattr__") and len(sub.args) == 3:
                    targets, value = [sub.args[1]], sub.args[2]
                else:
                    continue
            else:
                continue
            stores_on_self = any(
                (isinstance(t, ast.Attribute) and _dotted(t).startswith("self."))
                or isinstance(t, ast.Constant)  # __setattr__(self, "name", v)
                for t in targets
            )
            if not stores_on_self:
                continue
            for call in ast.walk(value):
                if isinstance(call, ast.Call):
                    name = _dotted(call.func).split(".")[-1]
                    if name in _UNPICKLABLE_CALLS:
                        offender = (call, name)
                        break
            if offender:
                break
        if offender:
            call, name = offender
            out.append(
                _diag(
                    "LNT004",
                    f"class {node.name} stores a {name}(...) on instances "
                    "but defines no __reduce__/__getstate__: it will not "
                    "survive the pool/distributed pickle boundary",
                    path,
                    call,
                )
            )
    return out


# ----------------------------------------------------------------------
# LNT005 — lowercase module-level mutable containers
# ----------------------------------------------------------------------
def _is_mutable_container(node: ast.AST) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("list", "dict", "set", "defaultdict", "deque", "Counter", "OrderedDict")
    return False


def rule_module_mutable_state(tree: ast.Module, path: str) -> List[Diagnostic]:
    out: List[Diagnostic] = []
    for stmt in tree.body:
        if isinstance(stmt, ast.Assign):
            targets, value = stmt.targets, stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets, value = [stmt.target], stmt.value
        else:
            continue
        if not _is_mutable_container(value):
            continue
        for target in targets:
            if not isinstance(target, ast.Name):
                continue
            name = target.id
            if name == name.upper() or name.startswith("__"):
                continue  # ALL_CAPS constant / dunder (__all__ etc.)
            out.append(
                _diag(
                    "LNT005",
                    f"module-level mutable container {name!r}: name it "
                    "ALL_CAPS if it is a constant, or move it behind an "
                    "accessor — ambient mutable state diverges across "
                    "forked workers",
                    path,
                    stmt,
                )
            )
    return out


# ----------------------------------------------------------------------
# LNT006 — unused module-level imports
# ----------------------------------------------------------------------
def rule_unused_imports(tree: ast.Module, path: str) -> List[Diagnostic]:
    if path.endswith("__init__.py"):
        return []  # re-export surface: unused-looking imports are the point
    imported: Dict[str, ast.stmt] = {}
    for stmt in tree.body:
        if isinstance(stmt, ast.Import):
            for alias in stmt.names:
                name = alias.asname or alias.name.split(".")[0]
                imported[name] = stmt
        elif isinstance(stmt, ast.ImportFrom):
            if stmt.module == "__future__":
                continue
            for alias in stmt.names:
                if alias.name == "*":
                    continue
                imported[alias.asname or alias.name] = stmt
    if not imported:
        return []
    used: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Name):
            used.add(node.id)
        elif isinstance(node, ast.Attribute):
            dotted = _dotted(node)
            if dotted:
                used.add(dotted.split(".")[0])
    # Names in string annotations and docstring doctests are invisible to
    # the walker; a grep over the raw source would over-match instead.
    # ``__all__`` entries count as uses.
    for node in ast.walk(tree):
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            if node.value in imported:
                used.add(node.value)
    out: List[Diagnostic] = []
    for name, stmt in imported.items():
        if name not in used:
            out.append(
                _diag("LNT006", f"unused import {name!r}", path, stmt)
            )
    return out


#: All rules, in code order; the engine runs each over every module.
ALL_RULES = (
    rule_global_rng,
    rule_time_seed,
    rule_rng_in_set_iteration,
    rule_pool_pickle_safety,
    rule_module_mutable_state,
    rule_unused_imports,
)
