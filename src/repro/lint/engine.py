"""The lint driver: walk a source tree, parse, run rules, honour pragmas.

``python -m repro lint`` runs :func:`lint_paths` over ``src/repro``.  A
finding is suppressed by a pragma comment on its line::

    state = set(peers)  # lint-ok
    rnd = random.random()  # lint-ok: LNT001

A bare ``# lint-ok`` waives every rule for that line; with codes, only
the listed ones.  Pragmas are per-line by design — a file- or block-level
waiver would silently cover future regressions.
"""

from __future__ import annotations

import ast
import re
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set

from repro.core.diagnostics import Diagnostic, ERROR
from repro.lint.rules import ALL_RULES

_PRAGMA = re.compile(r"#\s*lint-ok(?::\s*(?P<codes>[A-Z0-9,\s]+))?")


def _pragmas(source: str) -> Dict[int, Optional[Set[str]]]:
    """``{lineno: None}`` for blanket waivers, ``{lineno: {codes}}`` for
    code-specific ones (1-indexed, matching ast line numbers)."""
    out: Dict[int, Optional[Set[str]]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _PRAGMA.search(line)
        if match is None:
            continue
        codes = match.group("codes")
        if codes is None:
            out[lineno] = None
        else:
            out[lineno] = {c.strip() for c in codes.split(",") if c.strip()}
    return out


def _line_of(diagnostic: Diagnostic) -> int:
    try:
        return int(diagnostic.location)
    except ValueError:
        return 0


def lint_source(source: str, path: str) -> List[Diagnostic]:
    """Lint one module's source text (``path`` is used for reporting and
    for path-scoped rules like LNT004's pool-crossing check)."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            Diagnostic(
                code="LNT000",
                severity=ERROR,
                message=f"syntax error: {exc.msg}",
                target=path,
                location=str(exc.lineno or 0),
            )
        ]
    findings: List[Diagnostic] = []
    for rule in ALL_RULES:
        findings.extend(rule(tree, path))
    waivers = _pragmas(source)
    kept = []
    for diag in findings:
        waived_codes = waivers.get(_line_of(diag), "missing")
        if waived_codes == "missing":
            kept.append(diag)
        elif waived_codes is not None and diag.code not in waived_codes:
            kept.append(diag)
    return sorted(kept, key=lambda d: (d.target, _line_of(d), d.code))


def lint_file(path: Path, root: Optional[Path] = None) -> List[Diagnostic]:
    rel = str(path.relative_to(root)) if root is not None else str(path)
    return lint_source(path.read_text(encoding="utf-8"), rel)


def iter_source_files(root: Path) -> Iterable[Path]:
    return sorted(p for p in root.rglob("*.py") if p.is_file())


def lint_paths(paths: Sequence[Path]) -> List[Diagnostic]:
    """Lint every ``.py`` file under each path (files are linted as-is).

    Reported targets are root-relative, so the output is stable no matter
    where the tree is checked out.
    """
    out: List[Diagnostic] = []
    for path in paths:
        path = Path(path)
        if path.is_dir():
            for file in iter_source_files(path):
                out.extend(lint_file(file, root=path))
        else:
            out.extend(lint_file(path, root=path.parent))
    return out
