"""Source lint enforcing the runtime's determinism & fork-safety
invariants (codes ``LNT001–LNT007``; run via ``python -m repro lint``).

See :mod:`repro.lint.rules` for the rule catalogue and
:mod:`repro.lint.engine` for the driver and the ``# lint-ok`` pragma.
"""

from repro.lint.engine import lint_file, lint_paths, lint_source
from repro.lint.rules import ALL_RULES, POOL_CROSSING_PREFIXES

__all__ = [
    "ALL_RULES",
    "POOL_CROSSING_PREFIXES",
    "lint_file",
    "lint_paths",
    "lint_source",
]
