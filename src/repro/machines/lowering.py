"""Compiling population programs to population machines (§7.2, App. B.2).

The translation is the classical structured-programming-to-goto lowering,
specialised to the machine's three instruction kinds:

* ``if`` / ``while`` — conditions are evaluated short-circuit; atomic
  conditions leave their truth in ``CF`` and a conditional jump
  ``IP := f(CF)`` branches (Figure 5);
* procedure calls — each procedure ``P`` gets a pointer whose domain is its
  set of return addresses; a call stores the return address and jumps, a
  return jumps indirectly through the pointer (Figure 6).  Return *values*
  travel in ``CF``;
* ``swap x, y`` — three register-map assignments
  ``V_□ := V_x; V_x := V_y; V_y := V_□`` (Figure 3).  Register-map domains
  are pruned to the swap components, so ``Σ_x |𝓕_{V_x}|`` matches the
  program's swap-size;
* ``restart`` — a jump into a single shared helper that nondeterministically
  redistributes all registers through a hub register and then jumps back to
  address 1 (Figure 7);
* the machine starts with a synthetic preamble ``1: P_Main := 3;
  2: IP := start(Main); 3: IP := 3`` — call Main, then spin forever should
  it ever return.

Proposition 14: the resulting machine has size O(program size); verified
empirically in the benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Union

from repro.core.errors import InvalidProgramError
from repro.machines.machine import (
    AssignInstr,
    BOOL_DOMAIN,
    BOX,
    CF,
    DetectInstr,
    IP,
    Instruction,
    MoveInstr,
    OF,
    PopulationMachine,
    register_map_pointer,
)
from repro.programs.ast import (
    And,
    CallExpr,
    CallStmt,
    Condition,
    Const,
    Detect,
    If,
    Move,
    Not,
    Or,
    PopulationProgram,
    Restart,
    Return,
    SetOutput,
    Statement,
    Swap,
    While,
)
from repro.programs.size import swap_components
from repro.programs.validate import validate_program


class _Label:
    """A forward-referencable instruction address."""

    __slots__ = ("address",)

    def __init__(self) -> None:
        self.address: Optional[int] = None


@dataclass
class _PendingJump:
    """Placeholder: ``IP := target``."""

    target: _Label


@dataclass
class _PendingBranch:
    """Placeholder: ``IP := (true_target if CF else false_target)``."""

    true_target: _Label
    false_target: _Label


@dataclass
class _PendingCall:
    """Placeholder: set the callee's return pointer, then jump to it."""

    procedure: str
    return_label: _Label


@dataclass
class _PendingReturn:
    """Placeholder: ``IP := P_proc`` (indirect return)."""

    procedure: str


_Pending = Union[Instruction, _PendingJump, _PendingBranch, _PendingCall, _PendingReturn]


def procedure_pointer(name: str) -> str:
    """The return-address pointer for procedure ``name``."""
    return f"P[{name}]"


class _Lowerer:
    def __init__(self, program: PopulationProgram):
        validate_program(program)
        self.program = program
        self.code: List[_Pending] = []
        self.starts: Dict[str, _Label] = {
            name: _Label() for name in program.procedures
        }
        self.return_sites: Dict[str, List[_Label]] = {
            name: [] for name in program.procedures
        }
        self.restart_label: Optional[_Label] = None
        self.components = swap_components(program)
        self._needs_restart = False

    # ------------------------------------------------------------------
    # Emission helpers
    # ------------------------------------------------------------------
    def _emit(self, item: _Pending) -> int:
        self.code.append(item)
        return len(self.code)  # 1-based address of the emitted instruction

    def _here(self) -> int:
        return len(self.code) + 1

    def _bind(self, label: _Label) -> None:
        label.address = self._here()

    def _emit_call(self, procedure: str) -> None:
        if procedure not in self.program.procedures:
            raise InvalidProgramError(f"call to undefined procedure {procedure!r}")
        return_label = _Label()
        self.return_sites[procedure].append(return_label)
        self._emit(_PendingCall(procedure, return_label))
        self._emit(_PendingJump(self.starts[procedure]))
        self._bind(return_label)

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------
    def _compile_block(self, body: Tuple[Statement, ...], proc_name: str) -> None:
        for stmt in body:
            self._compile_statement(stmt, proc_name)

    def _compile_statement(self, stmt: Statement, proc_name: str) -> None:
        if isinstance(stmt, Move):
            self._emit(MoveInstr(stmt.src, stmt.dst))
        elif isinstance(stmt, Swap):
            va = register_map_pointer(stmt.a)
            vb = register_map_pointer(stmt.b)
            vbox = register_map_pointer(BOX)
            self._emit(AssignInstr(vbox, va, self._identity_map(stmt.a, BOX)))
            self._emit(AssignInstr(va, vb, self._identity_map(stmt.b, stmt.a)))
            self._emit(AssignInstr(vb, vbox, self._identity_map(BOX, stmt.b)))
        elif isinstance(stmt, SetOutput):
            self._emit(AssignInstr(OF, OF, {False: stmt.value, True: stmt.value}))
        elif isinstance(stmt, Restart):
            self._needs_restart = True
            if self.restart_label is None:
                self.restart_label = _Label()
            self._emit(_PendingJump(self.restart_label))
        elif isinstance(stmt, Return):
            if stmt.value is not None:
                self._emit(AssignInstr(CF, CF, {False: stmt.value, True: stmt.value}))
            self._emit(_PendingReturn(proc_name))
        elif isinstance(stmt, CallStmt):
            self._emit_call(stmt.procedure)
        elif isinstance(stmt, If):
            then_label, else_label, end_label = _Label(), _Label(), _Label()
            self._compile_condition(stmt.condition, then_label, else_label)
            self._bind(then_label)
            self._compile_block(stmt.then_body, proc_name)
            self._emit(_PendingJump(end_label))
            self._bind(else_label)
            self._compile_block(stmt.else_body, proc_name)
            self._bind(end_label)
        elif isinstance(stmt, While):
            head_label, body_label, end_label = _Label(), _Label(), _Label()
            self._bind(head_label)
            self._compile_condition(stmt.condition, body_label, end_label)
            self._bind(body_label)
            self._compile_block(stmt.body, proc_name)
            self._emit(_PendingJump(head_label))
            self._bind(end_label)
        else:
            raise InvalidProgramError(f"unknown statement {stmt!r}")

    # ------------------------------------------------------------------
    # Conditions (short-circuit, Figure 5)
    # ------------------------------------------------------------------
    def _compile_condition(
        self, condition: Condition, true_label: _Label, false_label: _Label
    ) -> None:
        if isinstance(condition, Const):
            self._emit(_PendingJump(true_label if condition.value else false_label))
        elif isinstance(condition, Detect):
            self._emit(DetectInstr(condition.register))
            self._emit(_PendingBranch(true_label, false_label))
        elif isinstance(condition, CallExpr):
            self._emit_call(condition.procedure)
            self._emit(_PendingBranch(true_label, false_label))
        elif isinstance(condition, Not):
            self._compile_condition(condition.inner, false_label, true_label)
        elif isinstance(condition, And):
            middle = _Label()
            self._compile_condition(condition.left, middle, false_label)
            self._bind(middle)
            self._compile_condition(condition.right, true_label, false_label)
        elif isinstance(condition, Or):
            middle = _Label()
            self._compile_condition(condition.left, true_label, middle)
            self._bind(middle)
            self._compile_condition(condition.right, true_label, false_label)
        else:
            raise InvalidProgramError(f"unknown condition {condition!r}")

    # ------------------------------------------------------------------
    # Register-map domains
    # ------------------------------------------------------------------
    def _component_of(self, register: str) -> Tuple[str, ...]:
        for members in self.components.values():
            if register in members:
                return members
        return (register,)

    def _box_domain(self) -> Tuple[str, ...]:
        union: List[str] = []
        for members in self.components.values():
            union.extend(members)
        if not union:
            union = [self.program.registers[0]]
        return tuple(sorted(set(union)))

    def _identity_map(self, source_reg: str, target_reg: str) -> Dict[str, str]:
        """Identity over the source pointer's domain, clamped into the
        target pointer's domain.

        When swap components partition the registers, the temporary's
        domain is their union; values outside the target's component are
        unreachable at runtime (a swap only moves values within one
        component) and are clamped to keep the tabulated map well-typed.
        """
        source_domain = (
            self._box_domain() if source_reg == BOX else self._component_of(source_reg)
        )
        target_domain = set(
            self._box_domain() if target_reg == BOX else self._component_of(target_reg)
        )
        fallback = target_reg if target_reg != BOX else next(iter(sorted(target_domain)))
        return {
            value: (value if value in target_domain else fallback)
            for value in source_domain
        }

    # ------------------------------------------------------------------
    # Restart helper (Figure 7)
    # ------------------------------------------------------------------
    def _emit_restart_helper(self) -> int:
        assert self.restart_label is not None
        entry = self._here()
        self._bind(self.restart_label)
        hub = self.program.registers[0]
        pairs = [(reg, hub) for reg in self.program.registers if reg != hub]
        pairs += [(hub, reg) for reg in self.program.registers if reg != hub]
        for src, dst in pairs:
            head, body, end = _Label(), _Label(), _Label()
            self._bind(head)
            self._emit(DetectInstr(src))
            self._emit(_PendingBranch(body, end))
            self._bind(body)
            self._emit(MoveInstr(src, dst))
            self._emit(_PendingJump(head))
            self._bind(end)
        # The residual restart instruction becomes IP := 1 (App. B.2).
        self._emit(AssignInstr(IP, CF, {False: 1, True: 1}))
        return entry

    # ------------------------------------------------------------------
    # Top level
    # ------------------------------------------------------------------
    def lower(self, name: str) -> PopulationMachine:
        # Preamble: call Main, then spin forever if it returns (B.2).
        main = self.program.main
        spin_label = _Label()
        main_return = _Label()
        self.return_sites[main].append(main_return)
        self._emit(_PendingCall(main, main_return))
        self._emit(_PendingJump(self.starts[main]))
        self._bind(main_return)
        self._bind(spin_label)
        self._emit(_PendingJump(spin_label))

        for proc_name, proc in self.program.procedures.items():
            self._bind(self.starts[proc_name])
            self._compile_block(proc.body, proc_name)
            # Fall-through: implicit plain return.
            self._emit(_PendingReturn(proc_name))

        restart_entry: Optional[int] = None
        if self._needs_restart:
            restart_entry = self._emit_restart_helper()

        return self._assemble(name, restart_entry)

    def _assemble(self, name: str, restart_entry: Optional[int]) -> PopulationMachine:
        length = len(self.code)
        proc_domains: Dict[str, Tuple[int, ...]] = {}
        for proc_name, sites in self.return_sites.items():
            addresses = sorted({site.address for site in sites if site.address})
            proc_domains[proc_name] = tuple(addresses) if addresses else (1,)

        def resolve(label: _Label) -> int:
            if label.address is None:
                raise InvalidProgramError("unresolved label during lowering")
            if label.address > length:
                # A label bound past the end (e.g. the end label of a
                # trailing infinite loop) — point it at the spin loop.
                return 3
            return label.address

        instructions: List[Instruction] = []
        for item in self.code:
            if isinstance(item, _PendingJump):
                target = resolve(item.target)
                instructions.append(
                    AssignInstr(IP, CF, {False: target, True: target})
                )
            elif isinstance(item, _PendingBranch):
                instructions.append(
                    AssignInstr(
                        IP,
                        CF,
                        {
                            True: resolve(item.true_target),
                            False: resolve(item.false_target),
                        },
                    )
                )
            elif isinstance(item, _PendingCall):
                pointer = procedure_pointer(item.procedure)
                ret = resolve(item.return_label)
                domain = proc_domains[item.procedure]
                instructions.append(
                    AssignInstr(pointer, pointer, {value: ret for value in domain})
                )
            elif isinstance(item, _PendingReturn):
                pointer = procedure_pointer(item.procedure)
                domain = proc_domains[item.procedure]
                instructions.append(
                    AssignInstr(IP, pointer, {value: value for value in domain})
                )
            else:
                instructions.append(item)

        pointer_domains: Dict[str, Tuple[object, ...]] = {
            OF: BOOL_DOMAIN,
            CF: BOOL_DOMAIN,
            IP: tuple(range(1, length + 1)),
        }
        for reg in self.program.registers:
            pointer_domains[register_map_pointer(reg)] = self._component_of(reg)
        pointer_domains[register_map_pointer(BOX)] = self._box_domain()
        for proc_name, domain in proc_domains.items():
            pointer_domains[procedure_pointer(proc_name)] = domain

        return PopulationMachine(
            registers=tuple(self.program.registers),
            pointer_domains=pointer_domains,
            instructions=tuple(instructions),
            restart_entry=restart_entry,
            name=name,
        )


def lower_program(
    program: PopulationProgram, name: str = "machine"
) -> PopulationMachine:
    """Compile a population program into an equivalent population machine
    (Proposition 14: size O(program size))."""
    return _Lowerer(program).lower(name)
