"""Population machines (Section 7.1–7.2 of the paper)."""

from repro.machines.machine import (
    AssignInstr,
    BOOL_DOMAIN,
    BOX,
    CF,
    DetectInstr,
    IP,
    Instruction,
    MachineConfiguration,
    MoveInstr,
    OF,
    PopulationMachine,
    pretty_print,
    register_map_pointer,
)
from repro.machines.interpreter import (
    MachineRunResult,
    decide_machine,
    machine_step,
    machine_successors,
    run_machine,
)
from repro.machines.lowering import lower_program, procedure_pointer

__all__ = [
    "PopulationMachine",
    "MachineConfiguration",
    "MoveInstr",
    "DetectInstr",
    "AssignInstr",
    "Instruction",
    "OF",
    "CF",
    "IP",
    "BOX",
    "BOOL_DOMAIN",
    "register_map_pointer",
    "procedure_pointer",
    "pretty_print",
    "machine_step",
    "machine_successors",
    "run_machine",
    "decide_machine",
    "MachineRunResult",
    "lower_program",
]
