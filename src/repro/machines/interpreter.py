"""Executing population machines (Definition 13), randomized-fair.

:func:`machine_step` implements one step of the ``→`` relation with the
``detect`` nondeterminism resolved by coin flip; :func:`run_machine` and
:func:`decide_machine` mirror the program-level drivers, using the same
quiet-period criterion (no output change and no pass through the restart
helper for a long stretch).

:func:`machine_successors` enumerates *all* successors of a configuration
(both detect outcomes), which the conversion tests use for lockstep
machine ↔ protocol co-simulation.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Mapping, Optional, Tuple

from repro.core.errors import InvalidMachineError, NonConvergenceError
from repro.observability import spans as _spans
from repro.observability.events import LAYER_MACHINE
from repro.observability.observer import Observer, live
from repro.machines.machine import (
    AssignInstr,
    CF,
    DetectInstr,
    IP,
    MachineConfiguration,
    MoveInstr,
    PopulationMachine,
)


def machine_successors(
    machine: PopulationMachine, config: MachineConfiguration
) -> List[MachineConfiguration]:
    """All proper successors of ``config`` (empty list ⇒ the machine hangs
    and the configuration self-loops)."""
    instr = machine.instruction_at(config.ip)
    successors: List[MachineConfiguration] = []
    if isinstance(instr, MoveInstr):
        src = config.resolve(instr.x)
        dst = config.resolve(instr.y)
        if src == dst:
            raise InvalidMachineError(
                "register map aliased a move's operands (corrupt lowering)"
            )
        if config.registers[src] > 0 and config.ip < machine.length:
            nxt = config.copy()
            nxt.registers[src] -= 1
            nxt.registers[dst] += 1
            nxt.pointers[IP] = config.ip + 1
            successors.append(nxt)
    elif isinstance(instr, DetectInstr):
        if config.ip < machine.length:
            actual = config.registers[config.resolve(instr.x)] > 0
            for outcome in {False, actual}:
                nxt = config.copy()
                nxt.pointers[CF] = outcome
                nxt.pointers[IP] = config.ip + 1
                successors.append(nxt)
    elif isinstance(instr, AssignInstr):
        value = instr.mapping[config.pointers[instr.source]]
        if instr.target == IP:
            nxt = config.copy()
            nxt.pointers[IP] = value
            successors.append(nxt)
        elif config.ip < machine.length:
            nxt = config.copy()
            nxt.pointers[instr.target] = value
            nxt.pointers[IP] = config.ip + 1
            successors.append(nxt)
    else:  # pragma: no cover - machine validation forbids this
        raise InvalidMachineError(f"unknown instruction {instr!r}")
    return successors


def machine_step(
    machine: PopulationMachine,
    config: MachineConfiguration,
    rng: random.Random,
    detect_true_probability: float = 0.75,
    *,
    observer: Optional[Observer] = None,
    step: int = 0,
) -> bool:
    """Execute one instruction *in place*; returns False when the machine
    hangs (no proper successor exists).

    ``observer`` (already normalised by the caller — see
    :func:`repro.observability.observer.live`) receives instruction
    dispatch and detect-outcome events tagged with ``step``.
    """
    instr = machine.instruction_at(config.ip)
    if isinstance(instr, MoveInstr):
        src = config.resolve(instr.x)
        dst = config.resolve(instr.y)
        if src == dst:
            raise InvalidMachineError(
                "register map aliased a move's operands (corrupt lowering)"
            )
        if config.registers[src] == 0 or config.ip >= machine.length:
            if observer is not None and config.registers[src] == 0:
                observer.on_hang(step, LAYER_MACHINE, src)
            return False
        config.registers[src] -= 1
        config.registers[dst] += 1
        config.pointers[IP] = config.ip + 1
        if observer is not None:
            observer.on_instruction(step, config.ip - 1, "move")
        return True
    if isinstance(instr, DetectInstr):
        if config.ip >= machine.length:
            return False
        register = config.resolve(instr.x)
        actual = config.registers[register] > 0
        answer = actual and rng.random() < detect_true_probability
        config.pointers[CF] = answer
        config.pointers[IP] = config.ip + 1
        if observer is not None:
            observer.on_instruction(step, config.ip - 1, "detect")
            observer.on_detect(step, register, actual, answer, LAYER_MACHINE)
        return True
    if isinstance(instr, AssignInstr):
        value = instr.mapping[config.pointers[instr.source]]
        if instr.target == IP:
            if observer is not None:
                observer.on_instruction(step, config.ip, "assign")
            config.pointers[IP] = value
            return True
        if config.ip >= machine.length:
            return False
        config.pointers[instr.target] = value
        config.pointers[IP] = config.ip + 1
        if observer is not None:
            observer.on_instruction(step, config.ip - 1, "assign")
        return True
    raise InvalidMachineError(f"unknown instruction {instr!r}")


@dataclass
class MachineRunResult:
    """Observable outcome of a sampled machine run prefix."""

    config: MachineConfiguration
    output: bool
    steps: int
    restarts: int
    hung: bool
    quiet_steps: int
    of_trace: List[Tuple[int, bool]] = field(default_factory=list)


def run_machine(
    machine: PopulationMachine,
    register_values: Mapping[str, int],
    *,
    seed: Optional[int] = None,
    rng: Optional[random.Random] = None,
    detect_true_probability: float = 0.75,
    max_steps: int = 1_000_000,
    quiet_window: Optional[int] = None,
    initial: Optional[MachineConfiguration] = None,
    observer: Optional[Observer] = None,
) -> MachineRunResult:
    """Sample a run from an initial configuration (or ``initial``).

    When a span tracer is active the run is wrapped in a ``machine`` span
    (a single contextvar read otherwise); see :func:`_run_machine` for
    the full contract — every argument is forwarded verbatim.
    """
    with _spans.span("machine", machine=machine.name, seed=seed):
        return _run_machine(
            machine,
            register_values,
            seed=seed,
            rng=rng,
            detect_true_probability=detect_true_probability,
            max_steps=max_steps,
            quiet_window=quiet_window,
            initial=initial,
            observer=observer,
        )


def _run_machine(
    machine: PopulationMachine,
    register_values: Mapping[str, int],
    *,
    seed: Optional[int] = None,
    rng: Optional[random.Random] = None,
    detect_true_probability: float = 0.75,
    max_steps: int = 1_000_000,
    quiet_window: Optional[int] = None,
    initial: Optional[MachineConfiguration] = None,
    observer: Optional[Observer] = None,
) -> MachineRunResult:
    """Sample a run from an initial configuration (or ``initial``).

    Stops on hang, on ``quiet_window`` steps without an output change or a
    pass through the restart helper, or on ``max_steps``.

    ``observer`` receives instruction dispatch, detect outcomes,
    restart-helper entries, output flips and sampled register snapshots;
    it never touches the random stream.
    """
    if rng is None:
        rng = random.Random(seed)
    config = initial.copy() if initial is not None else machine.initial_configuration(
        register_values
    )
    obs = live(observer)
    snapshot_every = obs.snapshot_interval if obs is not None else None
    steps = 0
    restarts = 0
    last_event = 0
    hung = False
    of_trace: List[Tuple[int, bool]] = []
    previous_of = config.output
    if obs is not None:
        obs.on_run_start(
            LAYER_MACHINE,
            machine=machine.name,
            length=machine.length,
            total=sum(config.registers.values()),
            registers=dict(config.registers),
        )
    while steps < max_steps:
        if quiet_window is not None and steps - last_event >= quiet_window:
            break
        if obs is None:
            ok = machine_step(machine, config, rng, detect_true_probability)
        else:
            ok = machine_step(
                machine,
                config,
                rng,
                detect_true_probability,
                observer=obs,
                step=steps + 1,
            )
        if not ok:
            hung = True
            break
        steps += 1
        if obs is not None and snapshot_every and steps % snapshot_every == 0:
            obs.on_snapshot(steps, dict(config.registers), LAYER_MACHINE)
        if config.output != previous_of:
            previous_of = config.output
            of_trace.append((steps, previous_of))
            last_event = steps
            if obs is not None:
                obs.on_output_flip(steps, previous_of, LAYER_MACHINE)
        if machine.restart_entry is not None and config.ip == machine.restart_entry:
            restarts += 1
            last_event = steps
            if obs is not None:
                obs.on_restart(
                    steps, restarts, LAYER_MACHINE, registers=dict(config.registers)
                )
    if obs is not None:
        obs.on_run_end(
            steps,
            LAYER_MACHINE,
            output=config.output,
            restarts=restarts,
            hung=hung,
            quiet_steps=steps - last_event,
            registers=dict(config.registers),
        )
    return MachineRunResult(
        config=config,
        output=config.output,
        steps=steps,
        restarts=restarts,
        hung=hung,
        quiet_steps=steps - last_event,
        of_trace=of_trace,
    )


def decide_machine(
    machine: PopulationMachine,
    register_values: Mapping[str, int],
    *,
    seed: Optional[int] = None,
    detect_true_probability: float = 0.75,
    quiet_window: int = 100_000,
    max_steps: int = 20_000_000,
    strict: bool = True,
    observer: Optional[Observer] = None,
) -> bool:
    """Quiet-period decision, mirroring
    :func:`repro.programs.interpreter.decide_program`."""
    result = run_machine(
        machine,
        register_values,
        seed=seed,
        detect_true_probability=detect_true_probability,
        max_steps=max_steps,
        quiet_window=quiet_window,
        observer=observer,
    )
    if result.hung or result.quiet_steps >= quiet_window:
        return result.output
    if strict:
        raise NonConvergenceError(
            f"machine did not reach a quiet period within {max_steps} steps"
        )
    return result.output
