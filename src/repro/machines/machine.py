"""Population machines (Definition 6) and their semantics (Definition 13).

A population machine ``A = (Q, F, 𝓕, 𝓘)`` has

* registers ``Q`` with values in ℕ,
* pointers ``F``, each with a finite domain ``𝓕_X``; three are special:
  the output flag ``OF`` and condition flag ``CF`` (domains
  ``{false, true}``) and the instruction pointer ``IP`` (domain
  ``{1, …, L}``); additionally each register ``x`` (and the temporary
  ``□``) has a register-map pointer ``V_x`` with ``x ∈ 𝓕_{V_x} ⊆ Q``,
* a sequence of instructions of three kinds: ``x ↦ y``,
  ``detect x > 0``, and the pointer assignment ``X := f(Y)``.

Size is ``|Q| + |F| + Σ_X |𝓕_X| + |𝓘|``.

Semantics (Definition 13): ``move`` and ``detect`` address registers
*through the register map* (``C(V_x)``); ``detect`` sets ``CF``
nondeterministically to ``false`` or to the actual nonzero-ness; a
configuration with no proper successor (a move from an empty register, or
stepping past the last instruction) self-loops, i.e. the machine *hangs*.
"""

from __future__ import annotations

from dataclasses import dataclass
from types import MappingProxyType
from typing import Dict, Mapping, Optional, Tuple, Union

from repro.core.errors import InvalidMachineError

OF = "OF"
CF = "CF"
IP = "IP"
BOX = "#"  # the paper's □ (temporary used by swap lowering)


def register_map_pointer(register: str) -> str:
    """The pointer ``V_x`` holding the register ``x`` currently refers to."""
    return f"V[{register}]"


@dataclass(frozen=True)
class MoveInstr:
    """``x ↦ y`` — move one unit from ``C(V_x)`` to ``C(V_y)``."""

    x: str
    y: str

    def __str__(self) -> str:
        return f"{self.x} -> {self.y}"


@dataclass(frozen=True)
class DetectInstr:
    """``detect x > 0`` — set ``CF`` to ``false`` or to ``C(C(V_x)) > 0``."""

    x: str

    def __str__(self) -> str:
        return f"detect {self.x} > 0"


@dataclass(frozen=True)
class AssignInstr:
    """``X := f(Y)`` — general pointer assignment; implements all control
    flow.  ``mapping`` tabulates ``f`` over ``𝓕_Y``."""

    target: str
    source: str
    mapping: Mapping[object, object]

    def __post_init__(self):
        object.__setattr__(self, "mapping", MappingProxyType(dict(self.mapping)))

    def __str__(self) -> str:
        if len(set(self.mapping.values())) == 1:
            value = next(iter(self.mapping.values()))
            return f"{self.target} := {value!r}"
        return f"{self.target} := f({self.source})"

    def __hash__(self):
        return hash((self.target, self.source, tuple(sorted(self.mapping.items(), key=repr))))

    def __reduce__(self):
        # The mapping proxy is not picklable; rebuild through __init__,
        # which re-wraps a plain dict (needed to ship compiled pipelines
        # across process/disk boundaries in repro.runtime).
        return (AssignInstr, (self.target, self.source, dict(self.mapping)))


Instruction = Union[MoveInstr, DetectInstr, AssignInstr]

BOOL_DOMAIN = (False, True)


@dataclass
class PopulationMachine:
    """A population machine per Definition 6.

    ``pointer_domains`` must include OF, CF, IP and one register-map
    pointer per register plus the temporary ``V[#]``.  ``instructions``
    are 1-indexed through pointer values (``instructions[0]`` is
    instruction 1).  ``restart_entry`` is compiler metadata: the address of
    the restart helper, used by drivers to count restarts (it does not
    affect semantics).
    """

    registers: Tuple[str, ...]
    pointer_domains: Dict[str, Tuple[object, ...]]
    instructions: Tuple[Instruction, ...]
    restart_entry: Optional[int] = None
    name: str = "machine"

    def __post_init__(self) -> None:
        self.registers = tuple(self.registers)
        self.instructions = tuple(self.instructions)
        self.pointer_domains = {
            pointer: tuple(domain)
            for pointer, domain in self.pointer_domains.items()
        }
        self._validate()

    # ------------------------------------------------------------------
    def _validate(self) -> None:
        L = len(self.instructions)
        if L == 0:
            raise InvalidMachineError("a machine needs at least one instruction")
        domains = self.pointer_domains
        for special, expected in ((OF, BOOL_DOMAIN), (CF, BOOL_DOMAIN)):
            if tuple(domains.get(special, ())) != expected:
                raise InvalidMachineError(f"{special} must have domain {expected}")
        if tuple(domains.get(IP, ())) != tuple(range(1, L + 1)):
            raise InvalidMachineError("IP domain must be {1, …, L}")
        for reg in self.registers + (BOX,):
            pointer = register_map_pointer(reg)
            domain = domains.get(pointer)
            if domain is None:
                raise InvalidMachineError(f"missing register-map pointer {pointer}")
            if not set(domain) <= set(self.registers):
                raise InvalidMachineError(f"{pointer} domain must be ⊆ Q")
            if reg != BOX and reg not in domain:
                raise InvalidMachineError(f"{reg!r} must be in the domain of {pointer}")
        for pointer, domain in domains.items():
            if not domain:
                raise InvalidMachineError(f"empty domain for pointer {pointer}")
        for index, instr in enumerate(self.instructions, start=1):
            if isinstance(instr, MoveInstr):
                if instr.x == instr.y:
                    raise InvalidMachineError(f"{index}: move with x = y")
                for reg in (instr.x, instr.y):
                    if reg not in self.registers:
                        raise InvalidMachineError(
                            f"{index}: unknown register {reg!r}"
                        )
            elif isinstance(instr, DetectInstr):
                if instr.x not in self.registers:
                    raise InvalidMachineError(f"{index}: unknown register {instr.x!r}")
            elif isinstance(instr, AssignInstr):
                if instr.target not in domains or instr.source not in domains:
                    raise InvalidMachineError(f"{index}: unknown pointer in {instr}")
                source_domain = set(domains[instr.source])
                target_domain = set(domains[instr.target])
                if set(instr.mapping) != source_domain:
                    raise InvalidMachineError(
                        f"{index}: mapping keys must equal the source domain"
                    )
                if not set(instr.mapping.values()) <= target_domain:
                    raise InvalidMachineError(
                        f"{index}: mapping values outside the target domain"
                    )
            else:
                raise InvalidMachineError(f"{index}: unknown instruction {instr!r}")

    # ------------------------------------------------------------------
    @property
    def pointers(self) -> Tuple[str, ...]:
        return tuple(self.pointer_domains)

    @property
    def length(self) -> int:
        """``L`` — number of instructions."""
        return len(self.instructions)

    def instruction_at(self, address: int) -> Instruction:
        return self.instructions[address - 1]

    def size(self) -> int:
        """Definition 6: ``|Q| + |F| + Σ_X |𝓕_X| + |𝓘|``."""
        return (
            len(self.registers)
            + len(self.pointer_domains)
            + sum(len(domain) for domain in self.pointer_domains.values())
            + len(self.instructions)
        )

    # ------------------------------------------------------------------
    def initial_configuration(
        self, register_values: Mapping[str, int]
    ) -> "MachineConfiguration":
        """An initial configuration (Definition 13): ``IP = 1``, identity
        register map; other pointers take their first domain value (the
        model allows any — see :meth:`arbitrary_configuration`)."""
        pointers: Dict[str, object] = {}
        for pointer, domain in self.pointer_domains.items():
            pointers[pointer] = domain[0]
        pointers[IP] = 1
        pointers[OF] = False
        pointers[CF] = False
        for reg in self.registers:
            pointers[register_map_pointer(reg)] = reg
        registers = {reg: 0 for reg in self.registers}
        for reg, value in register_values.items():
            if reg not in registers:
                raise InvalidMachineError(f"unknown register {reg!r}")
            if value < 0:
                raise InvalidMachineError("register values must be nonnegative")
            registers[reg] = value
        return MachineConfiguration(registers=registers, pointers=pointers)


@dataclass
class MachineConfiguration:
    """A machine configuration: register values plus pointer values."""

    registers: Dict[str, int]
    pointers: Dict[str, object]

    @property
    def ip(self) -> int:
        return self.pointers[IP]

    @property
    def output(self) -> bool:
        return self.pointers[OF]

    @property
    def total(self) -> int:
        return sum(self.registers.values())

    def resolve(self, register: str) -> str:
        """The actual register the name refers to via the register map."""
        return self.pointers[register_map_pointer(register)]

    def copy(self) -> "MachineConfiguration":
        return MachineConfiguration(dict(self.registers), dict(self.pointers))

    def freeze(self) -> Tuple[frozenset, frozenset]:
        return (
            frozenset(self.registers.items()),
            frozenset(self.pointers.items()),
        )


def pretty_print(machine: PopulationMachine) -> str:
    """A human-readable disassembly of the instruction sequence."""
    lines = [f"machine {machine.name}: |Q|={len(machine.registers)}, "
             f"L={machine.length}, size={machine.size()}"]
    for index, instr in enumerate(machine.instructions, start=1):
        marker = " <- restart helper" if index == machine.restart_entry else ""
        lines.append(f"{index:4d}: {instr}{marker}")
    return "\n".join(lines)
