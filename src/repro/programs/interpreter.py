"""A randomized fair interpreter for population programs (Section 4).

The paper's semantics are nondeterministic; correctness quantifies over
*fair* runs.  This interpreter samples runs by resolving each
nondeterministic choice randomly:

* ``detect x > 0`` answers *false* when ``x = 0``; when ``x > 0`` it
  answers *true* with probability ``detect_true_probability`` (so it may
  answer *false* spuriously — the defining weakness of the primitive — but
  not forever, giving fairness with probability 1);
* ``restart`` draws the new register configuration from a pluggable
  :class:`~repro.programs.restart.RestartPolicy`.

Stabilisation of an infinite run is approximated by a *quiet period*: once
no restart and no output-flag change has occurred for a long stretch of
primitive steps, the run is (for the constructions in this repository,
provably — see Lemma 4) locked into its final output.  The drivers report
the quiet-period evidence so callers can judge the verdict.

Hanging (a ``move`` from an empty register) is detected and reported: per
the semantics the configuration then never changes again, so a hung run
*stabilises* to its current output flag.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from time import monotonic
from typing import Callable, Dict, List, Mapping, Optional, Tuple

from repro.core.errors import (
    InvalidProgramError,
    NonConvergenceError,
)
from repro.programs.ast import (
    And,
    CallExpr,
    CallStmt,
    Condition,
    Const,
    Detect,
    If,
    Move,
    Not,
    Or,
    PopulationProgram,
    Restart,
    Return,
    SetOutput,
    Statement,
    Swap,
    While,
)
from repro.observability import spans as _spans
from repro.observability.events import LAYER_PROGRAM
from repro.observability.observer import Observer, live
from repro.programs.restart import RestartPolicy, UniformRestart


class _RestartSignal(Exception):
    """Internal: unwinds the call stack on ``restart``."""


class _HangSignal(Exception):
    """Internal: a move from an empty register — the run hangs forever."""


class _StopSignal(Exception):
    """Internal: budget exhausted or the caller's stop condition fired."""


@dataclass
class _ReturnBox:
    value: Optional[bool]


@dataclass
class RunResult:
    """Observable outcome of a sampled (finite prefix of a) run."""

    registers: Dict[str, int]
    output: bool
    steps: int
    restarts: int
    hung: bool
    main_returned: bool
    quiet_steps: int
    of_trace: List[Tuple[int, bool]] = field(default_factory=list)
    restart_steps: List[int] = field(default_factory=list)
    #: True when the run stopped because a wall-clock ``deadline`` passed.
    deadline_exceeded: bool = False

    @property
    def total(self) -> int:
        return sum(self.registers.values())


class ProgramInterpreter:
    """Sample runs of a population program.

    One interpreter instance may be reused across runs; all mutable run
    state lives in locals of :meth:`run`.
    """

    def __init__(
        self,
        program: PopulationProgram,
        *,
        detect_true_probability: float = 0.75,
        restart_policy: Optional[RestartPolicy] = None,
    ):
        if not 0.0 < detect_true_probability <= 1.0:
            raise ValueError("detect_true_probability must be in (0, 1]")
        self.program = program
        self.detect_true_probability = detect_true_probability
        self.restart_policy = restart_policy or UniformRestart()

    # ------------------------------------------------------------------
    # Run driver
    # ------------------------------------------------------------------
    def run(
        self,
        initial_registers: Mapping[str, int],
        *,
        seed: Optional[int] = None,
        rng: Optional[random.Random] = None,
        max_steps: int = 1_000_000,
        stop_condition: Optional[Callable[["_RunState"], bool]] = None,
        observer: Optional[Observer] = None,
        faults=None,
        deadline: Optional[float] = None,
    ) -> RunResult:
        """Execute from the given register configuration (missing registers
        default to 0; per the model they may hold *any* value).

        ``observer`` receives statement dispatch, detect outcomes,
        restarts, output flips, hangs and sampled register snapshots (see
        :mod:`repro.observability`); it never touches the random stream.

        ``faults`` takes a :class:`~repro.resilience.FaultPlan` (or bound
        injector) whose corrupt/reset records perturb the register
        configuration at their trigger steps — transient faults in the
        self-stabilisation sense.  Interaction-level records (drop,
        duplicate, unfair) have no program-layer meaning and are inert.
        ``deadline`` bounds the run in wall-clock seconds
        (``REPRO_DEADLINE`` supplies a default); an expired run stops with
        ``deadline_exceeded`` set.
        """
        if rng is None:
            rng = random.Random(seed)
        from repro.core.simulation import resolve_deadline
        from repro.resilience.faults import resolve_injector

        injector = resolve_injector(faults, seed)
        if injector is not None and injector.exhausted() and not injector.plan:
            injector = None
        deadline = resolve_deadline(deadline)
        registers = {name: 0 for name in self.program.registers}
        for name, value in initial_registers.items():
            if name not in registers:
                raise InvalidProgramError(f"unknown register {name!r}")
            if value < 0:
                raise InvalidProgramError("register values must be nonnegative")
            registers[name] = value

        obs = live(observer)
        state = _RunState(
            registers=registers,
            rng=rng,
            max_steps=max_steps,
            stop_condition=stop_condition,
            detect_true_probability=self.detect_true_probability,
            obs=obs,
            obs_snapshot=obs.snapshot_interval if obs is not None else None,
            faults=injector,
            deadline_at=(
                monotonic() + deadline if deadline is not None else None
            ),
        )
        total = sum(registers.values())
        hung = False
        main_returned = False
        if obs is not None:
            obs.on_run_start(
                LAYER_PROGRAM,
                total=total,
                registers=dict(registers),
                restart_policy=type(self.restart_policy).__name__,
            )
        while True:
            try:
                self._call(self.program.main, state)
                main_returned = True
                break
            except _RestartSignal:
                state.restarts += 1
                state.restart_steps.append(state.steps)
                state.last_event_step = state.steps
                # Resample at the *live* total: register faults preserve
                # it, but churn faults (joins/leaves) resize the run, and
                # a restart must redistribute the population that exists
                # now, not the one the run started with.  Bit-identical
                # to the old captured total when no churn occurred.
                state.registers = self.restart_policy.sample(
                    sum(state.registers.values()),
                    self.program.registers,
                    state.rng,
                )
                if obs is not None:
                    obs.on_restart(
                        state.steps,
                        state.restarts,
                        LAYER_PROGRAM,
                        registers=dict(state.registers),
                    )
                continue
            except _HangSignal:
                hung = True
                break
            except _StopSignal:
                break
        if obs is not None:
            obs.on_run_end(
                state.steps,
                LAYER_PROGRAM,
                output=state.output,
                restarts=state.restarts,
                hung=hung,
                main_returned=main_returned,
                quiet_steps=state.steps - state.last_event_step,
                registers=dict(state.registers),
            )
        return RunResult(
            registers=dict(state.registers),
            output=state.output,
            steps=state.steps,
            restarts=state.restarts,
            hung=hung,
            main_returned=main_returned,
            quiet_steps=state.steps - state.last_event_step,
            of_trace=state.of_trace,
            restart_steps=state.restart_steps,
            deadline_exceeded=state.deadline_exceeded,
        )

    # ------------------------------------------------------------------
    # Statement execution
    # ------------------------------------------------------------------
    def _call(self, name: str, state: "_RunState") -> Optional[bool]:
        proc = self.program.procedure(name)
        box = _ReturnBox(None)
        finished = self._exec_block(proc.body, state, box)
        if not finished:
            return box.value
        return box.value

    def _exec_block(
        self,
        body: Tuple[Statement, ...],
        state: "_RunState",
        box: _ReturnBox,
    ) -> bool:
        """Execute a body; returns False when a Return was executed."""
        for stmt in body:
            if not self._exec_stmt(stmt, state, box):
                return False
        return True

    def _exec_stmt(
        self, stmt: Statement, state: "_RunState", box: _ReturnBox
    ) -> bool:
        obs = state.obs
        if isinstance(stmt, Move):
            state.tick()
            if state.registers[stmt.src] == 0:
                if obs is not None:
                    obs.on_hang(state.steps, LAYER_PROGRAM, stmt.src)
                raise _HangSignal()
            state.registers[stmt.src] -= 1
            state.registers[stmt.dst] += 1
            if obs is not None:
                obs.on_statement(state.steps, "move", f"{stmt.src}->{stmt.dst}")
            return True
        if isinstance(stmt, Swap):
            state.tick()
            state.registers[stmt.a], state.registers[stmt.b] = (
                state.registers[stmt.b],
                state.registers[stmt.a],
            )
            if obs is not None:
                obs.on_statement(state.steps, "swap", f"{stmt.a}<->{stmt.b}")
            return True
        if isinstance(stmt, SetOutput):
            state.tick()
            if obs is not None:
                obs.on_statement(state.steps, "set_output", str(stmt.value))
            if state.output != stmt.value:
                state.output = stmt.value
                state.of_trace.append((state.steps, stmt.value))
                state.last_event_step = state.steps
                if obs is not None:
                    obs.on_output_flip(state.steps, stmt.value, LAYER_PROGRAM)
            return True
        if isinstance(stmt, Restart):
            state.tick()
            if obs is not None:
                obs.on_statement(state.steps, "restart")
            raise _RestartSignal()
        if isinstance(stmt, Return):
            state.tick()
            if obs is not None:
                obs.on_statement(state.steps, "return", str(stmt.value))
            box.value = stmt.value
            return False
        if isinstance(stmt, CallStmt):
            state.tick()
            if obs is not None:
                obs.on_statement(state.steps, "call", stmt.procedure)
            self._call(stmt.procedure, state)
            return True
        if isinstance(stmt, If):
            if self._eval(stmt.condition, state):
                return self._exec_block(stmt.then_body, state, box)
            return self._exec_block(stmt.else_body, state, box)
        if isinstance(stmt, While):
            while self._eval(stmt.condition, state):
                if not self._exec_block(stmt.body, state, box):
                    return False
            return True
        raise InvalidProgramError(f"unknown statement {stmt!r}")

    # ------------------------------------------------------------------
    # Condition evaluation (short-circuit)
    # ------------------------------------------------------------------
    def _eval(self, condition: Condition, state: "_RunState") -> bool:
        if isinstance(condition, Const):
            # Constants tick so that `while true` loops with empty bodies
            # still make observable progress (and respect step budgets).
            state.tick()
            return condition.value
        if isinstance(condition, Detect):
            state.tick()
            if state.registers[condition.register] == 0:
                if state.obs is not None:
                    state.obs.on_detect(
                        state.steps, condition.register, False, False, LAYER_PROGRAM
                    )
                return False
            answer = state.rng.random() < state.detect_true_probability
            if state.obs is not None:
                state.obs.on_detect(
                    state.steps, condition.register, True, answer, LAYER_PROGRAM
                )
            return answer
        if isinstance(condition, CallExpr):
            state.tick()
            value = self._call(condition.procedure, state)
            if value is None:
                raise InvalidProgramError(
                    f"procedure {condition.procedure!r} returned no value"
                )
            return value
        if isinstance(condition, Not):
            return not self._eval(condition.inner, state)
        if isinstance(condition, And):
            return self._eval(condition.left, state) and self._eval(
                condition.right, state
            )
        if isinstance(condition, Or):
            return self._eval(condition.left, state) or self._eval(
                condition.right, state
            )
        raise InvalidProgramError(f"unknown condition {condition!r}")


@dataclass
class _RunState:
    registers: Dict[str, int]
    rng: random.Random
    max_steps: int
    stop_condition: Optional[Callable[["_RunState"], bool]]
    detect_true_probability: float
    obs: Optional[Observer] = None
    obs_snapshot: Optional[int] = None
    faults: Optional[object] = None
    deadline_at: Optional[float] = None
    deadline_exceeded: bool = False
    steps: int = 0
    restarts: int = 0
    output: bool = False
    last_event_step: int = 0
    of_trace: List[Tuple[int, bool]] = field(default_factory=list)
    restart_steps: List[int] = field(default_factory=list)

    def tick(self) -> None:
        self.steps += 1
        if self.faults is not None and self.steps >= self.faults.next_at:
            # A fresh view each firing: `registers` is replaced wholesale
            # on restart, so a cached one could alias a dead dict.
            from repro.resilience.faults import RegisterView

            self.faults.fire(
                self.steps, RegisterView(self.registers), self.obs, LAYER_PROGRAM
            )
            # A perturbation is an event: the quiet window measures
            # recovery *after* the fault, not stability before it.
            self.last_event_step = self.steps
        if (
            self.obs_snapshot is not None
            and self.steps % self.obs_snapshot == 0
        ):
            self.obs.on_snapshot(self.steps, dict(self.registers), LAYER_PROGRAM)
        if self.steps >= self.max_steps:
            raise _StopSignal()
        if (
            self.deadline_at is not None
            and not self.steps & 255
            and monotonic() >= self.deadline_at
        ):
            self.deadline_exceeded = True
            raise _StopSignal()
        if self.stop_condition is not None and self.stop_condition(self):
            raise _StopSignal()

    @property
    def quiet_steps(self) -> int:
        return self.steps - self.last_event_step


@dataclass
class ProcedureOutcome:
    """Result of executing a single procedure (see
    :meth:`ProgramInterpreter.call_procedure`).

    Exactly one of the terminal conditions holds: the procedure returned
    (``value`` is its return value, or None for plain returns /
    fall-through), ``restarted``, ``hung``, or the step budget ran out
    (``exhausted``).
    """

    registers: Dict[str, int]
    value: Optional[bool]
    restarted: bool
    hung: bool
    exhausted: bool
    steps: int

    @property
    def returned(self) -> bool:
        return not (self.restarted or self.hung or self.exhausted)


def call_procedure(
    program: PopulationProgram,
    name: str,
    initial_registers: Mapping[str, int],
    *,
    seed: Optional[int] = None,
    rng: Optional[random.Random] = None,
    detect_true_probability: float = 0.75,
    max_steps: int = 1_000_000,
) -> ProcedureOutcome:
    """Execute one procedure on a register configuration and observe the
    outcome — the executable counterpart of the paper's
    ``C, f → C', b`` notation (Section 4, *Notation*).

    Used by the test suite to check the per-procedure lemmas (8–12)
    directly against their specifications.
    """
    if rng is None:
        rng = random.Random(seed)
    interp = ProgramInterpreter(
        program, detect_true_probability=detect_true_probability
    )
    registers = {reg: 0 for reg in program.registers}
    for reg, value in initial_registers.items():
        if reg not in registers:
            raise InvalidProgramError(f"unknown register {reg!r}")
        registers[reg] = value
    state = _RunState(
        registers=registers,
        rng=rng,
        max_steps=max_steps,
        stop_condition=None,
        detect_true_probability=detect_true_probability,
    )
    restarted = hung = exhausted = False
    value: Optional[bool] = None
    try:
        value = interp._call(name, state)
    except _RestartSignal:
        restarted = True
    except _HangSignal:
        hung = True
    except _StopSignal:
        exhausted = True
    return ProcedureOutcome(
        registers=dict(state.registers),
        value=value,
        restarted=restarted,
        hung=hung,
        exhausted=exhausted,
        steps=state.steps,
    )


def run_program(
    program: PopulationProgram,
    initial_registers: Mapping[str, int],
    *,
    seed: Optional[int] = None,
    restart_policy: Optional[RestartPolicy] = None,
    detect_true_probability: float = 0.75,
    max_steps: int = 1_000_000,
    stop_condition: Optional[Callable] = None,
    observer: Optional[Observer] = None,
    faults=None,
    deadline: Optional[float] = None,
) -> RunResult:
    """One-shot convenience wrapper around :class:`ProgramInterpreter`.

    When a span tracer is active the run is wrapped in a ``program`` span
    (a single contextvar read otherwise).
    """
    interp = ProgramInterpreter(
        program,
        detect_true_probability=detect_true_probability,
        restart_policy=restart_policy,
    )
    with _spans.span("program", seed=seed):
        return interp.run(
            initial_registers,
            seed=seed,
            max_steps=max_steps,
            stop_condition=stop_condition,
            observer=observer,
            faults=faults,
            deadline=deadline,
        )


def decide_program(
    program: PopulationProgram,
    initial_registers: Mapping[str, int],
    *,
    seed: Optional[int] = None,
    restart_policy: Optional[RestartPolicy] = None,
    detect_true_probability: float = 0.75,
    quiet_window: int = 50_000,
    max_steps: int = 5_000_000,
    strict: bool = True,
    observer: Optional[Observer] = None,
    faults=None,
    deadline: Optional[float] = None,
) -> bool:
    """Sample a run until it is *quiet* (no restart / output change for
    ``quiet_window`` steps) and return the stabilised output flag.

    A hung run also yields a verdict (its output never changes again).
    With ``strict`` (default) a run that exhausts ``max_steps`` without a
    quiet period raises :class:`NonConvergenceError`; otherwise the current
    output flag is returned as a best guess.

    ``faults`` injects transient register perturbations mid-run (each one
    re-opens the quiet window, so the verdict certifies recovery *after*
    the last fault); ``deadline`` bounds the call in wall-clock seconds
    and, with ``strict``, raises a "deadline exceeded"
    :class:`NonConvergenceError` when it passes first.
    """

    def stop(state: _RunState) -> bool:
        return state.quiet_steps >= quiet_window

    result = run_program(
        program,
        initial_registers,
        seed=seed,
        restart_policy=restart_policy,
        detect_true_probability=detect_true_probability,
        max_steps=max_steps,
        stop_condition=stop,
        observer=observer,
        faults=faults,
        deadline=deadline,
    )
    if result.hung or result.quiet_steps >= quiet_window or result.main_returned:
        return result.output
    if strict:
        if result.deadline_exceeded:
            raise NonConvergenceError(
                f"program did not reach a quiet period before the "
                f"wall-clock deadline (steps: {result.steps}, "
                f"restarts: {result.restarts}): deadline exceeded"
            )
        raise NonConvergenceError(
            f"program did not reach a quiet period within {max_steps} steps "
            f"(restarts: {result.restarts})"
        )
    return result.output
