"""Render population programs back to paper-style pseudocode.

Produces listings in the style of the paper's figures (Figure 1, the
Section 6 algorithm boxes): one procedure per block, two-space indents,
``detect x > 0`` conditions and ``x -> y`` moves.  Useful for inspecting
generated constructions and for documentation.
"""

from __future__ import annotations

from typing import List

from repro.core.errors import InvalidProgramError
from repro.programs.ast import (
    And,
    CallExpr,
    CallStmt,
    Condition,
    Const,
    Detect,
    If,
    Move,
    Not,
    Or,
    PopulationProgram,
    Procedure,
    Restart,
    Return,
    SetOutput,
    Statement,
    Swap,
    While,
)


def render_condition(condition: Condition) -> str:
    if isinstance(condition, (Detect, CallExpr, Const)):
        return str(condition)
    if isinstance(condition, Not):
        return f"not {render_condition(condition.inner)}"
    if isinstance(condition, And):
        return (
            f"({render_condition(condition.left)} and "
            f"{render_condition(condition.right)})"
        )
    if isinstance(condition, Or):
        return (
            f"({render_condition(condition.left)} or "
            f"{render_condition(condition.right)})"
        )
    raise InvalidProgramError(f"unknown condition {condition!r}")


def _render_block(body, indent: int, lines: List[str]) -> None:
    pad = "  " * indent
    if not body:
        lines.append(f"{pad}pass")
        return
    for stmt in body:
        _render_statement(stmt, indent, lines)


def _render_statement(stmt: Statement, indent: int, lines: List[str]) -> None:
    pad = "  " * indent
    if isinstance(stmt, (Move, Swap, SetOutput, Restart, Return, CallStmt)):
        lines.append(f"{pad}{stmt}")
    elif isinstance(stmt, If):
        lines.append(f"{pad}if {render_condition(stmt.condition)}:")
        _render_block(stmt.then_body, indent + 1, lines)
        if stmt.else_body:
            lines.append(f"{pad}else:")
            _render_block(stmt.else_body, indent + 1, lines)
    elif isinstance(stmt, While):
        lines.append(f"{pad}while {render_condition(stmt.condition)}:")
        _render_block(stmt.body, indent + 1, lines)
    else:
        raise InvalidProgramError(f"unknown statement {stmt!r}")


def render_procedure(procedure: Procedure) -> str:
    suffix = "  # returns bool" if procedure.returns_value else ""
    lines = [f"procedure {procedure.name}:{suffix}"]
    _render_block(procedure.body, 1, lines)
    return "\n".join(lines)


def render_program(program: PopulationProgram) -> str:
    """The whole program as paper-style pseudocode (Main first)."""
    order = [program.main] + sorted(
        name for name in program.procedures if name != program.main
    )
    blocks = [f"registers: {', '.join(program.registers)}"]
    blocks.extend(render_procedure(program.procedures[name]) for name in order)
    return "\n\n".join(blocks)
