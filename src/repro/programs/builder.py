"""Convenience constructors for building population-program ASTs.

The AST node constructors in :mod:`repro.programs.ast` are usable directly;
this module adds the small amount of sugar that makes transcribing the
paper's pseudocode pleasant:

* :func:`for_loop` — the paper's for-loops are macros expanding into copies
  of the body (Section 4, "Loops and branches");
* :func:`while_true` — infinite loops;
* :func:`seq` — flatten nested statement sequences into one body tuple;
* :func:`program` — assemble and immediately validate a program.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Sequence, Tuple, Union

from repro.programs.ast import (
    Const,
    PopulationProgram,
    Procedure,
    Statement,
    While,
)

Body = Union[Statement, Sequence["Body"]]


def seq(*parts: Body) -> Tuple[Statement, ...]:
    """Flatten statements and (nested) sequences into a single body tuple."""
    out: List[Statement] = []
    for part in parts:
        if isinstance(part, (list, tuple)):
            out.extend(seq(*part))
        else:
            out.append(part)
    return tuple(out)


def for_loop(count: int, make_body: Callable[[int], Body]) -> Tuple[Statement, ...]:
    """Expand ``for j = 1, …, count do body(j)`` into ``count`` copies.

    Mirrors the paper's definition of for-loops as macros.  ``make_body``
    receives the 1-based iteration index, so parameterised bodies (like
    Figure 1's ``Test(i)``) are easy to express.
    """
    if count < 0:
        raise ValueError("for-loop count must be nonnegative")
    out: List[Statement] = []
    for j in range(1, count + 1):
        out.extend(seq(make_body(j)))
    return tuple(out)


def while_true(*body: Body) -> While:
    """``while true do …``"""
    return While(Const(True), seq(*body))


def procedure(name: str, *body: Body, returns_value: bool = False) -> Procedure:
    return Procedure(name=name, body=seq(*body), returns_value=returns_value)


def program(
    registers: Iterable[str],
    procedures: Iterable[Procedure],
    main: str = "Main",
    validate: bool = True,
) -> PopulationProgram:
    """Assemble a :class:`PopulationProgram` and validate it (Section 4
    rules: acyclic calls, defined procedures, known registers)."""
    table: Dict[str, Procedure] = {}
    for proc in procedures:
        if proc.name in table:
            raise ValueError(f"duplicate procedure {proc.name!r}")
        table[proc.name] = proc
    prog = PopulationProgram(
        registers=tuple(registers), procedures=table, main=main
    )
    if validate:
        from repro.programs.validate import validate_program

        validate_program(prog)
    return prog
