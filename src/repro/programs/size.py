"""The size metric of population programs (Section 4).

``size(P) = |Q| + L + S`` where

* ``|Q|`` is the number of registers,
* ``L`` is the number of instructions.  We count every primitive operation
  site: moves, swaps, output-flag assignments, restarts, returns, call
  statements, and each atomic condition (``detect`` or boolean call) —
  i.e. exactly the sites that lower to population-machine instructions.
  Control-flow nodes themselves are free (they lower to constant-size jump
  glue around their condition's atoms);
* ``S`` is the *swap-size*: the number of ordered pairs ``(x, y)`` that can
  syntactically end up swapped through any sequence of swap instructions.
  This is computed as the transitive closure of the swap relation: each
  connected component of the swap graph with ``c ≥ 2`` registers
  contributes ``c·(c−1)`` ordered pairs.  (Paper footnote 1: without this
  accounting, swaps would cause a quadratic state blow-up in the protocol
  conversion.)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.programs.ast import (
    CallExpr,
    CallStmt,
    Const,
    Detect,
    If,
    Move,
    PopulationProgram,
    Restart,
    Return,
    SetOutput,
    Swap,
    While,
    condition_atoms,
    iter_statements,
)


@dataclass(frozen=True)
class ProgramSize:
    """Size decomposition ``|Q| + L + S``."""

    registers: int
    instructions: int
    swap_size: int

    @property
    def total(self) -> int:
        return self.registers + self.instructions + self.swap_size


def instruction_count(program: PopulationProgram) -> int:
    """``L`` — the number of primitive instruction sites in the program."""
    count = 0
    for proc in program.procedures.values():
        for stmt in iter_statements(proc.body):
            if isinstance(stmt, (Move, Swap, SetOutput, Restart, Return, CallStmt)):
                count += 1
            elif isinstance(stmt, (If, While)):
                for atom in condition_atoms(stmt.condition):
                    if isinstance(atom, (Detect, CallExpr)):
                        count += 1
                    elif isinstance(atom, Const):
                        pass  # constants evaluate to jumps, no instruction
    return count


class _UnionFind:
    def __init__(self) -> None:
        self.parent: Dict[str, str] = {}

    def find(self, item: str) -> str:
        self.parent.setdefault(item, item)
        root = item
        while self.parent[root] != root:
            root = self.parent[root]
        while self.parent[item] != root:
            self.parent[item], item = root, self.parent[item]
        return root

    def union(self, a: str, b: str) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self.parent[rb] = ra


def swap_components(program: PopulationProgram) -> Dict[str, Tuple[str, ...]]:
    """Connected components of the swap graph, keyed by representative."""
    uf = _UnionFind()
    for proc in program.procedures.values():
        for stmt in iter_statements(proc.body):
            if isinstance(stmt, Swap):
                uf.union(stmt.a, stmt.b)
    groups: Dict[str, list] = {}
    for reg in uf.parent:
        groups.setdefault(uf.find(reg), []).append(reg)
    return {root: tuple(sorted(members)) for root, members in groups.items()}


def swap_size(program: PopulationProgram) -> int:
    """``S`` — ordered pairs of registers that are transitively swappable."""
    total = 0
    for members in swap_components(program).values():
        c = len(members)
        if c >= 2:
            total += c * (c - 1)
    return total


def program_size(program: PopulationProgram) -> ProgramSize:
    """The paper's size metric ``|Q| + L + S`` with its decomposition."""
    return ProgramSize(
        registers=len(program.registers),
        instructions=instruction_count(program),
        swap_size=swap_size(program),
    )
