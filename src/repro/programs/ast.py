"""Abstract syntax for population programs (Section 4 of the paper).

A population program is a pair ``P = (Q, Proc)`` of registers and
procedures.  Procedures contain (possibly nested) while-loops,
if-statements and the primitive instructions

* ``move`` (``x ↦ y``) — move one unit; hangs if ``x`` is empty,
* ``detect x > 0`` — nondeterministic nonzero check (may always answer
  *false*; an answer of *true* certifies ``x > 0``),
* ``swap x, y`` — exchange register values,
* ``OF := b`` — set the output flag,
* ``restart`` — restart at Main with a nondeterministically chosen register
  configuration of the same total,
* procedure calls (acyclic, no arguments; parameterised *copies* of a
  procedure are distinct procedures, e.g. ``Test(4)`` and ``Test(7)``),
* ``return`` / ``return b`` — leave the current procedure.

Conditions of ``while``/``if`` are boolean expressions over ``detect`` and
boolean-returning calls, combined with short-circuit ``¬``, ``∧``, ``∨``.
The paper treats for-loops as macros that expand into copies of their body;
:func:`repro.programs.builder.for_loop` performs that expansion, so the AST
itself has no for-node.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, Optional, Tuple, Union

from repro.core.errors import InvalidProgramError

# ---------------------------------------------------------------------------
# Conditions (boolean expressions)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Detect:
    """``detect x > 0`` used as a condition."""

    register: str

    def __str__(self) -> str:
        return f"detect {self.register} > 0"


@dataclass(frozen=True)
class CallExpr:
    """A call to a boolean-returning procedure, used as a condition."""

    procedure: str

    def __str__(self) -> str:
        return f"{self.procedure}()"


@dataclass(frozen=True)
class Const:
    """A boolean literal (``while true`` loops use ``Const(True)``)."""

    value: bool

    def __str__(self) -> str:
        return "true" if self.value else "false"


@dataclass(frozen=True)
class Not:
    inner: "Condition"

    def __str__(self) -> str:
        return f"not ({self.inner})"


@dataclass(frozen=True)
class And:
    """Short-circuit conjunction."""

    left: "Condition"
    right: "Condition"

    def __str__(self) -> str:
        return f"({self.left}) and ({self.right})"


@dataclass(frozen=True)
class Or:
    """Short-circuit disjunction."""

    left: "Condition"
    right: "Condition"

    def __str__(self) -> str:
        return f"({self.left}) or ({self.right})"


Condition = Union[Detect, CallExpr, Const, Not, And, Or]

# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Move:
    """``src ↦ dst``: move one unit; hangs if ``src`` is empty."""

    src: str
    dst: str

    def __str__(self) -> str:
        return f"{self.src} -> {self.dst}"


@dataclass(frozen=True)
class Swap:
    """``swap a, b``: exchange the values of two registers."""

    a: str
    b: str

    def __str__(self) -> str:
        return f"swap {self.a}, {self.b}"


@dataclass(frozen=True)
class SetOutput:
    """``OF := value``."""

    value: bool

    def __str__(self) -> str:
        return f"OF := {'true' if self.value else 'false'}"


@dataclass(frozen=True)
class Restart:
    """Restart the computation with a fresh initial configuration."""

    def __str__(self) -> str:
        return "restart"


@dataclass(frozen=True)
class Return:
    """Leave the current procedure, optionally with a boolean value."""

    value: Optional[bool] = None

    def __str__(self) -> str:
        if self.value is None:
            return "return"
        return f"return {'true' if self.value else 'false'}"


@dataclass(frozen=True)
class CallStmt:
    """Call a procedure for its effect, discarding any return value."""

    procedure: str

    def __str__(self) -> str:
        return f"{self.procedure}()"


@dataclass(frozen=True)
class If:
    condition: Condition
    then_body: Tuple["Statement", ...]
    else_body: Tuple["Statement", ...] = ()


@dataclass(frozen=True)
class While:
    condition: Condition
    body: Tuple["Statement", ...]


Statement = Union[Move, Swap, SetOutput, Restart, Return, CallStmt, If, While]

# ---------------------------------------------------------------------------
# Procedures and programs
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Procedure:
    """A named procedure.  ``returns_value`` records whether calls to it may
    be used as boolean expressions."""

    name: str
    body: Tuple[Statement, ...]
    returns_value: bool = False


@dataclass
class PopulationProgram:
    """A population program ``(Q, Proc)`` with a designated Main procedure."""

    registers: Tuple[str, ...]
    procedures: Dict[str, Procedure]
    main: str = "Main"

    def __post_init__(self) -> None:
        if len(set(self.registers)) != len(self.registers):
            raise InvalidProgramError("duplicate register names")
        if self.main not in self.procedures:
            raise InvalidProgramError(f"missing main procedure {self.main!r}")

    def procedure(self, name: str) -> Procedure:
        try:
            return self.procedures[name]
        except KeyError:
            raise InvalidProgramError(f"undefined procedure {name!r}") from None


# ---------------------------------------------------------------------------
# Traversal helpers
# ---------------------------------------------------------------------------


def iter_statements(body: Tuple[Statement, ...]) -> Iterator[Statement]:
    """Depth-first iteration over all statements in a body (incl. nested)."""
    for stmt in body:
        yield stmt
        if isinstance(stmt, If):
            yield from iter_statements(stmt.then_body)
            yield from iter_statements(stmt.else_body)
        elif isinstance(stmt, While):
            yield from iter_statements(stmt.body)


def iter_conditions(body: Tuple[Statement, ...]) -> Iterator[Condition]:
    """All conditions appearing in a body, in evaluation-site order."""
    for stmt in iter_statements(body):
        if isinstance(stmt, (If, While)):
            yield stmt.condition


def condition_atoms(condition: Condition) -> Iterator[Union[Detect, CallExpr, Const]]:
    """The atomic sub-conditions of a boolean expression."""
    if isinstance(condition, (Detect, CallExpr, Const)):
        yield condition
    elif isinstance(condition, Not):
        yield from condition_atoms(condition.inner)
    elif isinstance(condition, (And, Or)):
        yield from condition_atoms(condition.left)
        yield from condition_atoms(condition.right)
    else:
        raise InvalidProgramError(f"unknown condition node {condition!r}")


def called_procedures(procedure: Procedure) -> Iterator[str]:
    """Names of procedures invoked (as statements or conditions) by
    ``procedure``, with duplicates."""
    for stmt in iter_statements(procedure.body):
        if isinstance(stmt, CallStmt):
            yield stmt.procedure
        elif isinstance(stmt, (If, While)):
            for atom in condition_atoms(stmt.condition):
                if isinstance(atom, CallExpr):
                    yield atom.procedure
