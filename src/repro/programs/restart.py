"""Restart policies: how ``restart`` resolves its nondeterminism.

The ``restart`` instruction nondeterministically picks *any* register
configuration with the same total (Section 4).  An executable interpreter
must turn that into a sampling rule.  Runs sampled with any policy that
assigns positive probability to every configuration are fair with
probability 1; policies that steer towards specific configurations sample
*particular* runs, which is exactly what the paper's existence proofs do
("it is *possible* that the procedure enters a state where it cannot
restart", Section 5.2).

* :class:`UniformRestart` — uniform over all compositions of the total.
* :class:`CanonicalRestart` — jump to a caller-supplied "good"
  configuration (e.g. the C_m of Theorem 3's proof); the canonical choice
  is one of the legal nondeterministic outcomes.
* :class:`MixtureRestart` — with probability ``p`` use one policy, else
  another (e.g. mostly uniform, occasionally canonical: fair *and*
  convergent).
* :class:`AdversarialRestart` — cycle through a fixed list of
  configurations (for robustness and failure-injection tests).
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Mapping, Sequence, Tuple


RegisterConfig = Dict[str, int]


class RestartPolicy:
    """Interface: produce the register configuration after a restart."""

    def sample(
        self,
        total: int,
        registers: Tuple[str, ...],
        rng: random.Random,
    ) -> RegisterConfig:
        raise NotImplementedError


def uniform_composition(
    total: int, parts: Sequence[str], rng: random.Random
) -> RegisterConfig:
    """A uniformly random composition of ``total`` over ``parts``
    (stars-and-bars sampling; works for bignum totals)."""
    k = len(parts)
    if k == 0:
        if total:
            raise ValueError("cannot distribute units over zero registers")
        return {}
    if k == 1:
        return {parts[0]: total}
    # rng.sample cannot handle bignum ranges; rejection-sample the k-1
    # distinct divider positions instead (k is tiny, totals may be huge).
    positions = set()
    while len(positions) < k - 1:
        positions.add(rng.randrange(total + k - 1))
    dividers = sorted(positions)
    config: RegisterConfig = {}
    previous = -1
    for name, divider in zip(parts, dividers):
        config[name] = divider - previous - 1
        previous = divider
    config[parts[-1]] = total + k - 2 - previous
    return config


class UniformRestart(RestartPolicy):
    """Uniform over all register configurations with the given total."""

    def sample(self, total, registers, rng):
        return uniform_composition(total, registers, rng)


class CanonicalRestart(RestartPolicy):
    """Restart directly to ``chooser(total)`` — a designated configuration.

    ``chooser`` must return a dict summing to ``total`` over the program's
    registers (missing registers default to 0).
    """

    def __init__(self, chooser: Callable[[int], Mapping[str, int]]):
        self.chooser = chooser

    def sample(self, total, registers, rng):
        config = dict(self.chooser(total))
        missing = set(config) - set(registers)
        if missing:
            raise ValueError(f"canonical restart uses unknown registers {missing}")
        if sum(config.values()) != total:
            raise ValueError(
                "canonical restart configuration does not preserve the total"
            )
        full = {name: 0 for name in registers}
        full.update(config)
        return full


class MixtureRestart(RestartPolicy):
    """With probability ``p_first`` sample from ``first``, else ``second``."""

    def __init__(self, first: RestartPolicy, second: RestartPolicy, p_first: float):
        if not 0.0 <= p_first <= 1.0:
            raise ValueError("p_first must be a probability")
        self.first = first
        self.second = second
        self.p_first = p_first

    def sample(self, total, registers, rng):
        policy = self.first if rng.random() < self.p_first else self.second
        return policy.sample(total, registers, rng)


class AdversarialRestart(RestartPolicy):
    """Cycle deterministically through a list of configurations (each must
    sum to the run's total); used to inject hostile restarts in tests."""

    def __init__(self, configurations: Sequence[Mapping[str, int]]):
        if not configurations:
            raise ValueError("need at least one configuration")
        self.configurations: List[Mapping[str, int]] = list(configurations)
        self._index = 0

    def sample(self, total, registers, rng):
        config = dict(self.configurations[self._index % len(self.configurations)])
        self._index += 1
        if sum(config.values()) != total:
            raise ValueError("adversarial restart configuration has wrong total")
        full = {name: 0 for name in registers}
        full.update(config)
        return full
