"""Population programs (Section 4 of the paper)."""

from repro.programs.ast import (
    And,
    CallExpr,
    CallStmt,
    Condition,
    Const,
    Detect,
    If,
    Move,
    Not,
    Or,
    PopulationProgram,
    Procedure,
    Restart,
    Return,
    SetOutput,
    Statement,
    Swap,
    While,
)
from repro.programs.builder import for_loop, procedure, program, seq, while_true
from repro.programs.examples import (
    figure1_predicate,
    figure1_program,
    interval_program,
    simple_threshold_predicate,
    simple_threshold_program,
)
from repro.programs.interpreter import (
    ProcedureOutcome,
    ProgramInterpreter,
    RunResult,
    call_procedure,
    decide_program,
    run_program,
)
from repro.programs.restart import (
    AdversarialRestart,
    CanonicalRestart,
    MixtureRestart,
    RestartPolicy,
    UniformRestart,
    uniform_composition,
)
from repro.programs.pretty import (
    render_condition,
    render_procedure,
    render_program,
)
from repro.programs.size import (
    ProgramSize,
    instruction_count,
    program_size,
    swap_components,
    swap_size,
)
from repro.programs.validate import (
    call_graph,
    topological_order,
    validate_diagnostics,
    validate_program,
)

__all__ = [
    # AST
    "PopulationProgram",
    "Procedure",
    "Statement",
    "Condition",
    "Move",
    "Swap",
    "SetOutput",
    "Restart",
    "Return",
    "CallStmt",
    "If",
    "While",
    "Detect",
    "CallExpr",
    "Const",
    "Not",
    "And",
    "Or",
    # Builder
    "program",
    "procedure",
    "seq",
    "for_loop",
    "while_true",
    # Size
    "ProgramSize",
    "program_size",
    "instruction_count",
    "swap_size",
    "swap_components",
    # Validation
    "validate_program",
    "validate_diagnostics",
    "call_graph",
    "topological_order",
    # Interpreter
    "ProgramInterpreter",
    "RunResult",
    "run_program",
    "decide_program",
    "call_procedure",
    "ProcedureOutcome",
    # Restart policies
    "RestartPolicy",
    "UniformRestart",
    "CanonicalRestart",
    "MixtureRestart",
    "AdversarialRestart",
    "uniform_composition",
    "render_program",
    "render_procedure",
    "render_condition",
    # Examples
    "figure1_program",
    "figure1_predicate",
    "interval_program",
    "simple_threshold_program",
    "simple_threshold_predicate",
]
