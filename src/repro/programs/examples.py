"""Example population programs, including Figure 1 of the paper.

* :func:`figure1_program` — the paper's worked example deciding
  ``φ(x) ⇔ 4 ≤ x < 7`` with registers ``x, y, z`` and procedures
  ``Main``, ``Test(4)``, ``Test(7)``, ``Clean``.
* :func:`interval_program` — the same construction for arbitrary bounds.
* :func:`simple_threshold_program` — the one-sided variant deciding
  ``x ≥ k`` (the smallest interesting program; handy for end-to-end tests
  of the program → machine → protocol pipeline).

Population programs decide predicates of the *total* number of units
``m = |C|`` across all registers (Section 4), so "``x``" in the predicates
refers to that total.
"""

from __future__ import annotations

from repro.core.predicates import Interval, Threshold
from repro.programs.ast import (
    CallExpr,
    Detect,
    If,
    Move,
    Not,
    PopulationProgram,
    Restart,
    Return,
    SetOutput,
    Swap,
    While,
)
from repro.programs.builder import for_loop, procedure, program, seq, while_true


def _test_procedure(name: str, count: int, src: str, dst: str):
    """``Test(i)``: try to move ``count`` units from ``src`` to ``dst``;
    report whether all moves succeeded (Figure 1, middle column)."""
    return procedure(
        name,
        for_loop(
            count,
            lambda _j: If(
                Detect(src),
                then_body=seq(Move(src, dst)),
                else_body=seq(Return(False)),
            ),
        ),
        Return(True),
        returns_value=True,
    )


def _clean_procedure(src_back: str, dst_back: str, noise: str, include_swap: bool):
    """``Clean``: restart if the noise register is nonempty, then move some
    number of units from ``dst_back`` to ``src_back`` (Figure 1, right
    column).  The swap is superfluous, as the paper notes; we keep it to
    match the figure verbatim (and to exercise swap lowering)."""
    body = [If(Detect(noise), then_body=seq(Restart()))]
    if include_swap:
        body.append(Swap(src_back, dst_back))
    body.append(While(Detect(dst_back), seq(Move(dst_back, src_back))))
    return procedure("Clean", *body)


def interval_program(
    lo: int, hi: int, *, include_noise_register: bool = True, include_swap: bool = True
) -> PopulationProgram:
    """A population program deciding ``lo ≤ m < hi`` in Figure 1's style."""
    if not 0 < lo < hi:
        raise ValueError("need 0 < lo < hi")
    registers = ["x", "y"] + (["z"] if include_noise_register else [])
    noise = "z" if include_noise_register else None
    test_lo = f"Test({lo})"
    test_hi = f"Test({hi})"

    clean_body = []
    if noise is not None:
        clean_body.append(If(Detect(noise), then_body=seq(Restart())))
    if include_swap:
        clean_body.append(Swap("x", "y"))
    clean_body.append(While(Detect("y"), seq(Move("y", "x"))))

    main = procedure(
        "Main",
        SetOutput(False),
        While(Not(CallExpr(test_lo)), seq(procedure_call("Clean"))),
        SetOutput(True),
        While(Not(CallExpr(test_hi)), seq(procedure_call("Clean"))),
        SetOutput(False),
        while_true(procedure_call("Clean")),
    )
    procedures = [
        main,
        _test_procedure(test_lo, lo, "x", "y"),
        _test_procedure(test_hi, hi, "x", "y"),
        procedure("Clean", *clean_body),
    ]
    return program(registers, procedures)


def figure1_program() -> PopulationProgram:
    """The exact program of Figure 1: ``φ(x) ⇔ 4 ≤ x < 7``, registers
    ``x, y, z``, procedures Main, Test(4), Test(7), Clean."""
    return interval_program(4, 7)


def figure1_predicate() -> Interval:
    return Interval(4, 7)


def simple_threshold_program(k: int, *, include_noise_register: bool = False) -> PopulationProgram:
    """A one-sided Figure 1 variant deciding ``m ≥ k``."""
    if k < 1:
        raise ValueError("threshold must be at least 1")
    registers = ["x", "y"] + (["z"] if include_noise_register else [])
    test = f"Test({k})"
    clean_body = []
    if include_noise_register:
        clean_body.append(If(Detect("z"), then_body=seq(Restart())))
    clean_body.append(While(Detect("y"), seq(Move("y", "x"))))
    main = procedure(
        "Main",
        SetOutput(False),
        While(Not(CallExpr(test)), seq(procedure_call("Clean"))),
        SetOutput(True),
        while_true(procedure_call("Clean")),
    )
    procedures = [
        main,
        _test_procedure(test, k, "x", "y"),
        procedure("Clean", *clean_body),
    ]
    return program(registers, procedures)


def simple_threshold_predicate(k: int) -> Threshold:
    return Threshold(k)


def procedure_call(name: str):
    """Alias for a call statement — reads better inside program listings."""
    from repro.programs.ast import CallStmt

    return CallStmt(name)
