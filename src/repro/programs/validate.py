"""Static validation of population programs (Section 4 well-formedness).

Checks:

* every called procedure is defined (``PRG001``);
* the call graph is acyclic (``PRG002``; no recursion, bounded stack — a
  hard model requirement, since the conversion stores return addresses in
  pointers);
* every register mentioned by an instruction is declared (``PRG003``) and
  moves have distinct source and target (``PRG004``);
* ``return b`` with a value only occurs in procedures marked as returning
  one (``PRG005``), and calls used as conditions target value-returning
  procedures (``PRG006``);
* Main does not return a value (its "output" is the output flag,
  ``PRG007``).

Two entry points share one engine: :func:`validate_diagnostics` collects
*every* violation as :class:`~repro.core.diagnostics.Diagnostic` records
(the static checker's interface), while :func:`validate_program` keeps
the historical raise-on-first-error contract for the lowering pipeline
and the builder.  The deeper structural checks (unreachable statements,
register liveness, dead procedures) live in
:mod:`repro.analysis.statics.program_checks` on top of this engine.
"""

from __future__ import annotations

from typing import Dict, List, Set

from repro.core.diagnostics import Diagnostic, ERROR
from repro.core.errors import InvalidProgramError
from repro.programs.ast import (
    CallExpr,
    CallStmt,
    Detect,
    If,
    Move,
    PopulationProgram,
    Procedure,
    Return,
    Swap,
    While,
    called_procedures,
    condition_atoms,
    iter_statements,
)


def call_graph(program: PopulationProgram) -> Dict[str, Set[str]]:
    """Map each procedure name to the set of procedures it calls."""
    return {
        name: set(called_procedures(proc))
        for name, proc in program.procedures.items()
    }


def topological_order(program: PopulationProgram) -> List[str]:
    """Procedures ordered callees-first; raises on cyclic calls."""
    graph = call_graph(program)
    order: List[str] = []
    state: Dict[str, int] = {}  # 0 = visiting, 1 = done

    def visit(name: str, trail: List[str]) -> None:
        if name not in program.procedures:
            raise InvalidProgramError(f"call to undefined procedure {name!r}")
        mark = state.get(name)
        if mark == 1:
            return
        if mark == 0:
            cycle = " -> ".join(trail + [name])
            raise InvalidProgramError(f"cyclic procedure calls: {cycle}")
        state[name] = 0
        for callee in sorted(graph[name]):
            visit(callee, trail + [name])
        state[name] = 1
        order.append(name)

    for name in sorted(program.procedures):
        visit(name, [])
    return order


def _error(code: str, message: str, location: str = "") -> Diagnostic:
    return Diagnostic(code=code, severity=ERROR, message=message, location=location)


def _graph_diagnostics(program: PopulationProgram) -> List[Diagnostic]:
    """PRG001/PRG002 — the collect-all twin of :func:`topological_order`,
    visiting in the same order so the first finding carries the same
    message the raising path would."""
    graph = call_graph(program)
    out: List[Diagnostic] = []
    state: Dict[str, int] = {}

    def visit(name: str, trail: List[str]) -> None:
        if name not in program.procedures:
            out.append(
                _error(
                    "PRG001",
                    f"call to undefined procedure {name!r}",
                    location=trail[-1] if trail else "",
                )
            )
            return
        mark = state.get(name)
        if mark == 1:
            return
        if mark == 0:
            cycle = " -> ".join(trail + [name])
            out.append(_error("PRG002", f"cyclic procedure calls: {cycle}", name))
            return
        state[name] = 0
        for callee in sorted(graph[name]):
            visit(callee, trail + [name])
        state[name] = 1

    for name in sorted(program.procedures):
        visit(name, [])
    return out


def _register_diagnostics(
    program: PopulationProgram, proc: Procedure
) -> List[Diagnostic]:
    known = set(program.registers)
    out: List[Diagnostic] = []
    for stmt in iter_statements(proc.body):
        if isinstance(stmt, Move):
            for reg in (stmt.src, stmt.dst):
                if reg not in known:
                    out.append(
                        _error(
                            "PRG003",
                            f"{proc.name}: move uses unknown register {reg!r}",
                            proc.name,
                        )
                    )
            if stmt.src == stmt.dst:
                out.append(
                    _error(
                        "PRG004",
                        f"{proc.name}: move with identical source and target "
                        f"{stmt.src!r}",
                        proc.name,
                    )
                )
        elif isinstance(stmt, Swap):
            for reg in (stmt.a, stmt.b):
                if reg not in known:
                    out.append(
                        _error(
                            "PRG003",
                            f"{proc.name}: swap uses unknown register {reg!r}",
                            proc.name,
                        )
                    )
        elif isinstance(stmt, (If, While)):
            for atom in condition_atoms(stmt.condition):
                if isinstance(atom, Detect) and atom.register not in known:
                    out.append(
                        _error(
                            "PRG003",
                            f"{proc.name}: detect uses unknown register "
                            f"{atom.register!r}",
                            proc.name,
                        )
                    )
    return out


def _return_diagnostics(
    program: PopulationProgram, proc: Procedure
) -> List[Diagnostic]:
    out: List[Diagnostic] = []
    for stmt in iter_statements(proc.body):
        if isinstance(stmt, Return) and stmt.value is not None:
            if not proc.returns_value:
                out.append(
                    _error(
                        "PRG005",
                        f"{proc.name}: returns a value but is not declared "
                        "value-returning",
                        proc.name,
                    )
                )
        if isinstance(stmt, (If, While)):
            for atom in condition_atoms(stmt.condition):
                if isinstance(atom, CallExpr):
                    callee = program.procedures.get(atom.procedure)
                    if callee is None:
                        out.append(
                            _error(
                                "PRG001",
                                f"undefined procedure {atom.procedure!r}",
                                proc.name,
                            )
                        )
                    elif not callee.returns_value:
                        out.append(
                            _error(
                                "PRG006",
                                f"{proc.name}: condition calls {callee.name!r} "
                                "which returns no value",
                                proc.name,
                            )
                        )
        if isinstance(stmt, CallStmt) and stmt.procedure not in program.procedures:
            out.append(
                _error(
                    "PRG001",
                    f"undefined procedure {stmt.procedure!r}",
                    proc.name,
                )
            )
    return out


def validate_diagnostics(program: PopulationProgram) -> List[Diagnostic]:
    """Run all well-formedness checks, collecting *every* violation.

    Findings appear in the order the raising validator would hit them, so
    ``validate_program`` (which raises the first one) stays message-for-
    message compatible with its pre-diagnostics behaviour.
    """
    out = _graph_diagnostics(program)
    main = program.procedures.get(program.main)
    if main is None:
        out.append(_error("PRG001", f"undefined procedure {program.main!r}"))
    elif main.returns_value:
        out.append(_error("PRG007", "Main must not return a value", program.main))
    for proc in program.procedures.values():
        out.extend(_register_diagnostics(program, proc))
        out.extend(_return_diagnostics(program, proc))
    return out


def validate_program(program: PopulationProgram) -> None:
    """Run all static checks; raises :class:`InvalidProgramError` on the
    first violation (backward-compatible wrapper over
    :func:`validate_diagnostics`)."""
    diagnostics = validate_diagnostics(program)
    if diagnostics:
        raise InvalidProgramError(diagnostics[0].message)
