"""Static validation of population programs (Section 4 well-formedness).

Checks:

* every called procedure is defined;
* the call graph is acyclic (no recursion, bounded stack — a hard model
  requirement, since the conversion stores return addresses in pointers);
* every register mentioned by an instruction is declared;
* ``return b`` with a value only occurs in procedures marked as returning
  one, and calls used as conditions target value-returning procedures;
* Main does not return a value (its "output" is the output flag).
"""

from __future__ import annotations

from typing import Dict, List, Set

from repro.core.errors import InvalidProgramError
from repro.programs.ast import (
    CallExpr,
    CallStmt,
    Detect,
    If,
    Move,
    PopulationProgram,
    Procedure,
    Return,
    Swap,
    While,
    called_procedures,
    condition_atoms,
    iter_statements,
)


def call_graph(program: PopulationProgram) -> Dict[str, Set[str]]:
    """Map each procedure name to the set of procedures it calls."""
    return {
        name: set(called_procedures(proc))
        for name, proc in program.procedures.items()
    }


def topological_order(program: PopulationProgram) -> List[str]:
    """Procedures ordered callees-first; raises on cyclic calls."""
    graph = call_graph(program)
    order: List[str] = []
    state: Dict[str, int] = {}  # 0 = visiting, 1 = done

    def visit(name: str, trail: List[str]) -> None:
        if name not in program.procedures:
            raise InvalidProgramError(f"call to undefined procedure {name!r}")
        mark = state.get(name)
        if mark == 1:
            return
        if mark == 0:
            cycle = " -> ".join(trail + [name])
            raise InvalidProgramError(f"cyclic procedure calls: {cycle}")
        state[name] = 0
        for callee in sorted(graph[name]):
            visit(callee, trail + [name])
        state[name] = 1
        order.append(name)

    for name in sorted(program.procedures):
        visit(name, [])
    return order


def _check_registers(program: PopulationProgram, proc: Procedure) -> None:
    known = set(program.registers)
    for stmt in iter_statements(proc.body):
        if isinstance(stmt, Move):
            for reg in (stmt.src, stmt.dst):
                if reg not in known:
                    raise InvalidProgramError(
                        f"{proc.name}: move uses unknown register {reg!r}"
                    )
            if stmt.src == stmt.dst:
                raise InvalidProgramError(
                    f"{proc.name}: move with identical source and target {stmt.src!r}"
                )
        elif isinstance(stmt, Swap):
            for reg in (stmt.a, stmt.b):
                if reg not in known:
                    raise InvalidProgramError(
                        f"{proc.name}: swap uses unknown register {reg!r}"
                    )
        elif isinstance(stmt, (If, While)):
            for atom in condition_atoms(stmt.condition):
                if isinstance(atom, Detect) and atom.register not in known:
                    raise InvalidProgramError(
                        f"{proc.name}: detect uses unknown register "
                        f"{atom.register!r}"
                    )


def _check_returns(program: PopulationProgram, proc: Procedure) -> None:
    for stmt in iter_statements(proc.body):
        if isinstance(stmt, Return) and stmt.value is not None:
            if not proc.returns_value:
                raise InvalidProgramError(
                    f"{proc.name}: returns a value but is not declared "
                    "value-returning"
                )
        if isinstance(stmt, (If, While)):
            for atom in condition_atoms(stmt.condition):
                if isinstance(atom, CallExpr):
                    callee = program.procedure(atom.procedure)
                    if not callee.returns_value:
                        raise InvalidProgramError(
                            f"{proc.name}: condition calls {callee.name!r} "
                            "which returns no value"
                        )
        if isinstance(stmt, CallStmt):
            program.procedure(stmt.procedure)  # existence check


def validate_program(program: PopulationProgram) -> None:
    """Run all static checks; raises :class:`InvalidProgramError` on the
    first violation."""
    topological_order(program)  # also checks acyclicity + existence
    main = program.procedure(program.main)
    if main.returns_value:
        raise InvalidProgramError("Main must not return a value")
    for proc in program.procedures.values():
        _check_registers(program, proc)
        _check_returns(program, proc)
