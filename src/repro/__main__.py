"""Command-line entry point: regenerate the paper's tables and figures,
and observe instrumented runs.

Usage::

    python -m repro                 # quick sweep (structural experiments)
    python -m repro --full          # include the behavioural experiments
    python -m repro table1 figure2  # run selected experiments by id
    python -m repro --full --jobs 4 # fan Monte Carlo drivers across a pool

    python -m repro trace theorem3 --n 2       # JSONL trace + run digest
    python -m repro stats theorem3 --n 2       # metrics digest only
    python -m repro trace --list               # list traceable targets

    python -m repro bench                      # run the simulator bench suite
    python -m repro bench --out BENCH.json     # write the metrics elsewhere
    python -m repro bench --check              # fail on throughput regression
    python -m repro bench --suite batched      # batched-engine throughput

    python -m repro --engine batched ...       # bulk multinomial engine
    python -m repro trace protocol --engine legacy  # bit-exact replay engine

    python -m repro check baselines            # static checks on named targets
    python -m repro check all --json           # machine-readable diagnostics
    python -m repro check --list               # list check targets
    python -m repro lint                       # determinism/fork-safety lint

    python -m repro chaos                      # X4 transient-fault experiment
    python -m repro chaos --smoke              # quick resilience smoke check
    python -m repro chaos --churn              # X5 churn-recovery experiment
    python -m repro chaos --churn --smoke      # quick churn smoke check

    python -m repro serve decide --port 9100   # run with live HTTP telemetry
    python -m repro serve decide --smoke       # CI: probe endpoints, exit
    python -m repro top http://127.0.0.1:9100  # live span-tree terminal view

    python -m repro coordinate --workers 2 lemma4   # distributed experiment run
    python -m repro worker --connect HOST:PORT      # join a coordinator
    python -m repro --jobs HOST:PORT ...            # dispatch any driver remotely

``trace``/``stats``/``serve`` targets are the observed reference
workloads of :mod:`repro.observability.runners` (the Theorem 3 program,
a baseline protocol simulation, the lowered machine, the compilation
pipeline).  ``trace`` additionally writes the run's span tree
(``*.spans.json``) and provenance manifest (``*.manifest.json``) next to
the JSONL; ``serve`` exposes the live registry as Prometheus
(``/metrics``) plus an SSE event stream (``/events``) while the workload
runs, and ``top`` renders a refreshing span tree against such a server.
``bench`` drives the pytest-benchmark suites under ``benchmarks/`` and,
with ``--check``, compares every ``*.ops_per_second`` gauge of the fresh
run against a baseline JSON (default: the committed
``BENCH_simulator.json``), failing if any regressed by more than the
tolerance (``--tolerance`` / ``REPRO_BENCH_TOLERANCE``, default 30%).

``check`` runs the static verification layer
(:mod:`repro.analysis.statics`) over named artifact targets and ``lint``
runs the determinism/fork-safety source lint (:mod:`repro.lint`) over
``src/repro``.  Both share the exit-code contract **0** = clean at the
chosen severity threshold, **1** = findings, **2** = usage error, and
both emit JSON with ``--json`` (diagnostics list + severity summary).
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import time
from pathlib import Path
from typing import Callable, Dict, Tuple


def _table1() -> str:
    from repro.experiments import run_table1

    report = run_table1(6)
    return report.render() + f"\nasymptotic ordering holds: {report.ordering_holds()}"


def _theorem1() -> str:
    from repro.experiments import run_theorem1_sizes

    report = run_theorem1_sizes(8)
    return (
        report.render()
        + f"\nlinear states: {report.linear_states()}"
        + f"\ndouble-exponential thresholds: {report.double_exponential()}"
    )


def _theorem3() -> str:
    from repro.experiments import run_theorem3_sizes

    return run_theorem3_sizes(8).render()


def _theorem3_decisions() -> str:
    from repro.experiments import run_theorem3_decisions

    lines = []
    for n in (1, 2):
        trials = run_theorem3_decisions(n)
        status = "OK" if all(t.correct for t in trials) else "MISMATCH"
        lines.append(f"n={n}: {[(t.total, t.got) for t in trials]} -> {status}")
    return "\n".join(lines)


def _theorem5() -> str:
    from repro.experiments import conversion_rows, render_conversion

    return render_conversion(conversion_rows())


def _theorem2() -> str:
    from repro.experiments import run_program_selfstab

    report = run_program_selfstab(2, trials_per_total=2)
    return report.render() + f"\ncorrect: {report.correct}/{report.total}"


def _lemma4() -> str:
    from repro.experiments import run_lemma4

    lines = []
    for total in (1, 2, 3):
        report = run_lemma4(1, total)
        lines.append(
            f"n=1 m={total}: {report.consistent}/{len(report.trials)} consistent"
        )
    return "\n".join(lines)


def _lemma15() -> str:
    from repro.experiments import run_lemma15

    report = run_lemma15()
    return report.render() + f"\nrecovered: {report.recovered}/{len(report.trials)}"


def _figure1() -> str:
    from repro.experiments import run_figure1

    report = run_figure1()
    return report.render() + f"\ncorrect: {report.correct}/{len(report.trials)}"


def _figure2() -> str:
    from repro.experiments import run_figure2

    report = run_figure2()
    return report.render() + f"\nall match: {report.all_match}"


def _figures_lowering() -> str:
    from repro.experiments import run_figures_lowering

    lines = []
    for g in run_figures_lowering():
        lines.append(
            f"{g.name}: L={g.length} detects={g.detects} moves={g.moves} "
            f"map-assigns={g.register_map_assignments} "
            f"restart-helper={'yes' if g.restart_entry else 'no'}"
        )
    return "\n".join(lines)


def _figure4() -> str:
    from repro.experiments import run_figure4

    report = run_figure4()
    lines = [f"transitions per instruction: {report.per_instruction_counts}"]
    lines += [f"{name}: {value}" for name, value in report.facts.items()]
    return "\n".join(lines)


def _awareness() -> str:
    from repro.experiments import run_awareness

    report = run_awareness(poison_state_count=3)
    return (
        f"baselines 1-aware: {report.baselines_are_aware}\n"
        f"unary poisonable: {report.baseline_poisonable}\n"
        f"construction resists poisoning: {report.construction_resists_poisoning}"
    )


def _ablation() -> str:
    from repro.experiments import run_ablation

    report = run_ablation(2, trials_per_total=2)
    return report.render() + f"\nerror checking helps: {report.checks_help}"


def _convergence() -> str:
    from repro.experiments import run_convergence

    report = run_convergence(3, trials=2)
    return report.render()


QUICK: Dict[str, Callable[[], str]] = {
    "table1": _table1,
    "theorem1": _theorem1,
    "theorem3": _theorem3,
    "theorem5": _theorem5,
    "figure2": _figure2,
    "figures-lowering": _figures_lowering,
    "figure4": _figure4,
}

FULL: Dict[str, Callable[[], str]] = {
    **QUICK,
    "theorem3-decisions": _theorem3_decisions,
    "theorem2": _theorem2,
    "lemma4": _lemma4,
    "lemma15": _lemma15,
    "figure1": _figure1,
    "awareness": _awareness,
    "ablation": _ablation,
    "convergence": _convergence,
}


def _jobs_value(text: str):
    """Argparse type for ``--jobs``: an integer pool width, or a
    ``host:port`` distributed-coordinator address."""
    if ":" in text:
        return text
    try:
        return int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected an integer or 'host:port', got {text!r}"
        )


def _run_worker(argv: Tuple[str, ...]) -> int:
    """``python -m repro worker`` — join a distributed coordinator and
    execute sharded tasks until dismissed."""
    parser = argparse.ArgumentParser(
        prog="python -m repro worker",
        description="Connect to a repro coordinator and execute tasks.",
    )
    parser.add_argument(
        "--connect",
        required=True,
        metavar="HOST:PORT",
        help="coordinator address to join",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="shared artifact-cache directory (sets REPRO_CACHE_DIR so "
        "compiled artifacts warm from disk instead of recompiling)",
    )
    parser.add_argument(
        "--heartbeat",
        type=float,
        default=2.0,
        help="seconds between busy heartbeats (default: 2)",
    )
    parser.add_argument(
        "--max-tasks",
        type=int,
        default=None,
        help="exit after this many tasks (default: until dismissed)",
    )
    parser.add_argument(
        "--connect-retry",
        type=float,
        default=10.0,
        help="seconds to keep retrying the initial connect (default: 10)",
    )
    args = parser.parse_args(argv)
    if args.cache_dir:
        os.environ["REPRO_CACHE_DIR"] = args.cache_dir

    from repro.runtime.distributed import run_worker

    executed = run_worker(
        args.connect,
        heartbeat=args.heartbeat,
        max_tasks=args.max_tasks,
        connect_retry=args.connect_retry,
    )
    print(f"worker: executed {executed} task(s)")
    return 0


def _run_coordinate(argv: Tuple[str, ...]) -> int:
    """``python -m repro coordinate`` — run experiments on a distributed
    cluster: bind a coordinator, optionally spawn loopback workers, point
    ``REPRO_JOBS`` at the cluster, and run the experiment loop."""
    parser = argparse.ArgumentParser(
        prog="python -m repro coordinate",
        description="Run experiments sharded across distributed workers.",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        help=f"experiment ids to run (default: quick set); known: "
        f"{', '.join(sorted(FULL))}",
    )
    parser.add_argument(
        "--bind",
        default="127.0.0.1:0",
        metavar="HOST:PORT",
        help="coordinator bind address (default: 127.0.0.1:0, ephemeral port)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=2,
        help="loopback worker subprocesses to spawn (default: 2; 0 = none — "
        "wait for remote `repro worker --connect` joins instead)",
    )
    parser.add_argument(
        "--full", action="store_true", help="run the behavioural experiments too"
    )
    parser.add_argument(
        "--ledger-dir",
        default=None,
        help="journal completed tasks here (sets REPRO_LEDGER_DIR) so an "
        "interrupted run resumes without redoing finished work",
    )
    parser.add_argument(
        "--deadline",
        type=float,
        default=None,
        help="wall-clock budget in seconds per simulation/program run "
        "(sets REPRO_DEADLINE)",
    )
    parser.add_argument(
        "--engine",
        choices=("auto", "legacy", "fast", "batched"),
        default=None,
        help="simulation engine family (sets REPRO_ENGINE; default: auto)",
    )
    args = parser.parse_args(argv)

    if args.experiments:
        unknown = [e for e in args.experiments if e not in FULL]
        if unknown:
            parser.error(f"unknown experiments: {unknown}")
        selected = {name: FULL[name] for name in args.experiments}
    else:
        selected = FULL if args.full else QUICK

    if args.ledger_dir:
        os.environ["REPRO_LEDGER_DIR"] = args.ledger_dir
    if args.engine is not None:
        os.environ["REPRO_ENGINE"] = args.engine
    if args.deadline is not None:
        os.environ["REPRO_DEADLINE"] = str(args.deadline)

    from repro.runtime.distributed import get_cluster, spawn_loopback_worker

    coordinator = get_cluster(args.bind)
    print(f"coordinator listening on {coordinator.address}")
    procs = [
        spawn_loopback_worker(coordinator.address) for _ in range(args.workers)
    ]
    if procs:
        print(f"spawned {len(procs)} loopback worker(s)")
    os.environ["REPRO_JOBS"] = coordinator.address
    try:
        for name, runner in selected.items():
            print(f"\n=== {name} " + "=" * max(0, 60 - len(name)))
            start = time.time()
            print(runner())
            print(
                f"--- {name} done in {time.time() - start:.1f}s "
                f"({coordinator.workers_alive()} worker(s) alive)"
            )
    finally:
        coordinator.close()
        for proc in procs:
            try:
                proc.wait(timeout=5)
            except subprocess.TimeoutExpired:
                proc.terminate()
    return 0


def _run_chaos(argv: Tuple[str, ...]) -> int:
    """X4/X5 — fault and churn recovery (``python -m repro chaos``).

    Default mode runs the transient-fault experiment (X4) end-to-end: the
    Theorem 3 program with and without §5.2 error checks under mid-run
    register corruption, plus the protocol-level scheduler-family probe.
    ``--churn`` switches to the dynamic-population experiment (X5): agents
    join and leave mid-run via a seeded ChurnProcess, and recovery is
    judged against the *post-churn* population.  Headline rates are merged
    into the bench metrics JSON as ``chaos.*`` / ``churn.*`` gauges
    (read-modify-write, so the throughput gauges recorded by ``bench``
    survive).
    """
    repo_root = Path(__file__).resolve().parents[2]
    parser = argparse.ArgumentParser(
        prog="python -m repro chaos",
        description="Transient-fault (X4) / churn-recovery (X5) experiments.",
    )
    parser.add_argument("--n", type=int, default=2, help="construction levels n")
    parser.add_argument(
        "--trials", type=int, default=3, help="trials per boundary total"
    )
    parser.add_argument("--seed", type=int, default=0, help="rng seed")
    parser.add_argument(
        "--churn",
        action="store_true",
        help="run the churn-recovery experiment (X5: dynamic population) "
        "instead of transient faults",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="quick mode: fewer trials, no metrics JSON update (CI smoke)",
    )
    parser.add_argument(
        "--no-probe",
        action="store_true",
        help="skip the protocol-level scheduler/engine-family probe",
    )
    parser.add_argument(
        "--jobs",
        type=_jobs_value,
        default=None,
        help="process-pool width for the trial fan-out (0 = all cores, "
        "host:port = distributed cluster)",
    )
    parser.add_argument(
        "--out",
        default=None,
        help="metrics JSON to merge the chaos.*/churn.* gauges into "
        "(default: BENCH_simulator.json at the repo root; smoke skips this)",
    )
    args = parser.parse_args(argv)

    from repro.experiments import run_churn_recovery, run_transient_faults

    trials = 1 if args.smoke else args.trials
    start = time.time()
    if args.churn:
        report = run_churn_recovery(
            args.n,
            trials_per_total=trials,
            seed=args.seed,
            jobs=args.jobs,
            probe=not args.no_probe,
        )
        regime = "churn"
    else:
        report = run_transient_faults(
            args.n,
            trials_per_total=trials,
            seed=args.seed,
            jobs=args.jobs,
            probe=not args.no_probe,
        )
        regime = "transient faults"
    elapsed = time.time() - start
    print(report.render())
    print(
        f"\nwith checks: {report.with_checks_correct}/{report.with_checks_total}"
        f"  without: {report.without_checks_correct}/{report.without_checks_total}"
        f"  gap: {report.with_checks_rate - report.without_checks_rate:+.3f}"
    )
    print(f"error checking helps under {regime}: {report.checks_help}")
    print(f"done in {elapsed:.1f}s")

    if not args.smoke:
        out = Path(args.out) if args.out else repo_root / "BENCH_simulator.json"
        payload = {}
        if out.exists():
            try:
                payload = json.loads(out.read_text(encoding="utf-8"))
            except (OSError, ValueError):
                print(f"chaos: could not parse {out}; rewriting", file=sys.stderr)
        gauges = payload.setdefault("gauges", {})
        if args.churn:
            gauges["churn.recovery.with_checks_rate"] = report.with_checks_rate
            gauges["churn.recovery.without_checks_rate"] = (
                report.without_checks_rate
            )
            gauges["churn.recovery_gap"] = report.recovery_gap
        else:
            gauges["chaos.transient.with_checks_rate"] = report.with_checks_rate
            gauges["chaos.transient.without_checks_rate"] = (
                report.without_checks_rate
            )
            gauges["chaos.transient.rate_gap"] = (
                report.with_checks_rate - report.without_checks_rate
            )
        out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        kind = "churn.*" if args.churn else "chaos.*"
        print(f"merged {kind} gauges into {out}")

    # Smoke is a health check: insist the resilience signal is present.
    if report.checks_help or report.with_checks_correct == report.with_checks_total:
        return 0
    print("chaos: error-checked variant did not outperform the bare one",
          file=sys.stderr)
    return 1


def _observe_parser(command: str) -> argparse.ArgumentParser:
    from repro.observability.runners import TARGETS

    parser = argparse.ArgumentParser(
        prog=f"python -m repro {command}",
        description=(
            "Trace an instrumented run as JSONL + digest"
            if command == "trace"
            else "Collect metrics for an instrumented run"
        ),
    )
    parser.add_argument(
        "target",
        nargs="?",
        choices=sorted(TARGETS),
        help="workload to observe",
    )
    parser.add_argument("--list", action="store_true", help="list targets and exit")
    parser.add_argument("--n", type=int, default=None, help="construction levels n")
    parser.add_argument(
        "--total", type=int, default=None, help="input total m (register x1 / agents)"
    )
    parser.add_argument("--seed", type=int, default=None, help="rng seed")
    parser.add_argument(
        "--max-steps", type=int, default=None, help="step/interaction budget"
    )
    parser.add_argument(
        "--snapshot-every",
        type=int,
        default=2_000,
        help="sampled configuration history interval (trace only)",
    )
    parser.add_argument(
        "--max-events",
        type=int,
        default=2_000_000,
        help="cap on stored trace events (trace only)",
    )
    parser.add_argument(
        "--no-hot-events",
        action="store_true",
        help="drop per-step interaction/statement/instruction events",
    )
    parser.add_argument(
        "--out",
        default=None,
        help="output path (trace: JSONL, default trace_<target>.jsonl; "
        "stats: metrics JSON, printed digest otherwise)",
    )
    parser.add_argument(
        "--jobs",
        type=_jobs_value,
        default=None,
        help="process-pool width for parallelisable targets (sets "
        "REPRO_JOBS; 0 = all cores, default 1 = sequential, "
        "host:port = distributed cluster)",
    )
    parser.add_argument(
        "--deadline",
        type=float,
        default=None,
        help="wall-clock budget in seconds per simulation/program run "
        "(sets REPRO_DEADLINE; runs report deadline_exceeded instead of "
        "spinning forever)",
    )
    parser.add_argument(
        "--engine",
        choices=("auto", "legacy", "fast", "batched"),
        default=None,
        help="simulation engine family for protocol-level runs (sets "
        "REPRO_ENGINE; default: auto — fast below the population "
        "crossover, batched above)",
    )
    return parser


def _run_observe(command: str, argv: Tuple[str, ...]) -> int:
    from repro.observability import ALL_KINDS, HOT_KINDS, TraceRecorder
    from repro.observability.metrics import MetricsObserver
    from repro.observability.spans import SpanTracer, activate

    from repro.observability.runners import TARGETS

    parser = _observe_parser(command)
    args = parser.parse_args(argv)
    if args.list or args.target is None:
        for name, fn in sorted(TARGETS.items()):
            doc = (fn.__doc__ or "").strip().splitlines()[0]
            print(f"{name:<10} {doc}")
        return 0

    if args.jobs is not None:
        os.environ["REPRO_JOBS"] = str(args.jobs)
    if args.deadline is not None:
        os.environ["REPRO_DEADLINE"] = str(args.deadline)
    if args.engine is not None:
        os.environ["REPRO_ENGINE"] = args.engine

    kwargs = {}
    for key in ("n", "total", "seed", "max_steps"):
        value = getattr(args, key)
        if value is not None:
            kwargs[key] = value

    recorder = None
    if command == "trace":
        recorder = TraceRecorder(
            snapshot_every=args.snapshot_every,
            max_events=args.max_events,
            kinds=(ALL_KINDS - HOT_KINDS) if args.no_hot_events else None,
        )
    metrics = MetricsObserver()
    tracer = SpanTracer(metrics=metrics.metrics)
    start = time.time()
    with activate(tracer):
        run = TARGETS[args.target](recorder=recorder, metrics=metrics, **kwargs)
    elapsed = time.time() - start

    print(run.outcome)
    print(run.digest())
    if command == "trace":
        out = args.out or f"trace_{args.target}.jsonl"
        path = recorder.write_jsonl(out)
        print(f"\nwrote {len(recorder.events)} events to {path} in {elapsed:.1f}s")
        spans_path = tracer.write_json(Path(path).with_suffix(".spans.json"))
        print(f"wrote {len(tracer)} spans to {spans_path}")
        if run.manifest is not None:
            manifest_path = run.manifest.write_json(
                Path(path).with_suffix(".manifest.json")
            )
            print(f"wrote provenance manifest to {manifest_path}")
    elif args.out:
        path = metrics.metrics.write_json(args.out, extra={"target": args.target})
        print(f"\nwrote metrics to {path} in {elapsed:.1f}s")
    return 0


def _run_serve(argv: Tuple[str, ...]) -> int:
    """``python -m repro serve`` — run a workload with live telemetry.

    Starts a :class:`~repro.observability.live.TelemetryServer`, wires a
    span tracer + metrics registry + event bus into the chosen workload,
    runs it, then keeps serving the final snapshot (``--linger`` bounds
    that; ``--smoke`` instead probes every endpoint once and exits, as a
    CI health check).
    """
    from repro.observability.live import (
        EventBus,
        LiveObserver,
        TelemetryServer,
        fetch_json,
        fetch_text,
        run_top,
    )
    from repro.observability.metrics import MetricsObserver
    from repro.observability.observer import CompositeObserver
    from repro.observability.profile import ProfilingObserver
    from repro.observability.report import summarize
    from repro.observability.runners import TARGETS
    from repro.observability.spans import SpanTracer, activate

    parser = argparse.ArgumentParser(
        prog="python -m repro serve",
        description="Run an observed workload with a live telemetry server "
        "(Prometheus /metrics, SSE /events, JSON /spans + /manifest).",
    )
    parser.add_argument(
        "target",
        nargs="?",
        default="decide",
        choices=sorted(TARGETS),
        help="workload to run (default: decide)",
    )
    parser.add_argument("--n", type=int, default=None, help="construction levels n")
    parser.add_argument(
        "--total", type=int, default=None, help="input total m (register x1 / agents)"
    )
    parser.add_argument("--seed", type=int, default=None, help="rng seed")
    parser.add_argument(
        "--max-steps", type=int, default=None, help="step/interaction budget"
    )
    parser.add_argument("--host", default="127.0.0.1", help="bind address")
    parser.add_argument(
        "--port", type=int, default=0, help="bind port (0 = ephemeral)"
    )
    parser.add_argument(
        "--jobs",
        type=_jobs_value,
        default=None,
        help="process-pool width for parallelisable targets (sets REPRO_JOBS; "
        "host:port = distributed cluster)",
    )
    parser.add_argument(
        "--linger",
        type=float,
        default=None,
        help="seconds to keep serving after the run (default: until Ctrl-C)",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="probe /healthz /metrics /spans /events once after the run, "
        "render one top frame, then exit (CI health check)",
    )
    args = parser.parse_args(argv)

    if args.jobs is not None:
        os.environ["REPRO_JOBS"] = str(args.jobs)
    kwargs = {}
    for key in ("n", "total", "seed", "max_steps"):
        value = getattr(args, key)
        if value is not None:
            kwargs[key] = value

    metrics = MetricsObserver()
    bus = EventBus()
    tracer = SpanTracer(metrics=metrics.metrics, listener=bus.publish_span)
    from repro.runtime.distributed import active_cluster

    server = TelemetryServer(
        metrics=metrics.metrics,
        tracer=tracer,
        bus=bus,
        cluster=active_cluster,
        host=args.host,
        port=args.port,
    )
    # The live/profiling observers ride along in the target's ``recorder``
    # slot — it is composed, never written to disk, so any Observer fits.
    extra = CompositeObserver(ProfilingObserver(metrics.metrics), LiveObserver(bus))
    server.start()
    try:
        print(
            f"serving telemetry at {server.url} "
            "(/metrics /spans /events /manifest /healthz)"
        )
        start = time.time()
        with activate(tracer):
            run = TARGETS[args.target](recorder=extra, metrics=metrics, **kwargs)
        server.manifest = run.manifest
        print(run.outcome)
        print(summarize(metrics))
        print(f"run finished in {time.time() - start:.1f}s; snapshot still served")

        if args.smoke:
            failures = []
            health = fetch_text(f"{server.url}/healthz").splitlines()
            if not health or health[0].strip() != "ok":
                failures.append("/healthz")
            if "repro_interactions_total" not in fetch_text(f"{server.url}/metrics"):
                failures.append("/metrics")
            if not fetch_json(f"{server.url}/spans").get("children"):
                failures.append("/spans")
            if run.manifest is not None and not fetch_json(
                f"{server.url}/manifest"
            ).get("target"):
                failures.append("/manifest")
            if run_top(server.url, frames=1, plain=True) != 1:
                failures.append("top")
            if failures:
                print(f"serve smoke FAILED: {failures}", file=sys.stderr)
                return 1
            print("serve smoke ok (healthz, metrics, spans, manifest, top)")
            return 0

        if args.linger is not None:
            time.sleep(args.linger)
        else:
            try:
                while True:
                    time.sleep(1.0)
            except KeyboardInterrupt:
                print("\nstopping")
        return 0
    finally:
        server.stop()


def _run_top(argv: Tuple[str, ...]) -> int:
    """``python -m repro top`` — live span-tree view of a telemetry server."""
    from repro.observability.live import run_top

    parser = argparse.ArgumentParser(
        prog="python -m repro top",
        description="Render the live span tree of a `repro serve` endpoint.",
    )
    parser.add_argument(
        "url",
        nargs="?",
        default="http://127.0.0.1:9100",
        help="telemetry server base URL (default: http://127.0.0.1:9100)",
    )
    parser.add_argument(
        "--frames",
        type=int,
        default=None,
        help="number of refreshes (default: until the server goes away)",
    )
    parser.add_argument(
        "--interval", type=float, default=1.0, help="seconds between refreshes"
    )
    parser.add_argument(
        "--plain",
        action="store_true",
        help="no ANSI clear-screen between frames (log-friendly)",
    )
    args = parser.parse_args(argv)
    try:
        rendered = run_top(
            args.url, frames=args.frames, interval=args.interval, plain=args.plain
        )
    except KeyboardInterrupt:
        return 0
    return 0 if rendered else 1


def _emit_diagnostics(diagnostics, *, as_json: bool, fail_on: str, **extra) -> int:
    """Shared tail of ``check``/``lint``: print findings (text or JSON)
    and map them to the exit-code contract — 0 when nothing at or above
    ``fail_on`` severity, 1 otherwise."""
    from repro.core.diagnostics import (
        at_or_above,
        count_by_severity,
        diagnostics_to_json,
        render_diagnostics,
    )

    failing = at_or_above(diagnostics, fail_on)
    if as_json:
        print(diagnostics_to_json(diagnostics, fail_on=fail_on, **extra))
    else:
        if diagnostics:
            print(render_diagnostics(diagnostics))
        counts = count_by_severity(diagnostics)
        print(
            f"{'clean' if not failing else 'FINDINGS'}: "
            f"{counts['error']} error(s), {counts['warning']} warning(s), "
            f"{counts['info']} info (failing at or above: {fail_on})"
        )
    return 1 if failing else 0


def _run_check(argv: Tuple[str, ...]) -> int:
    """``python -m repro check`` — static verification of named targets.

    Exit codes: 0 = no diagnostic at or above ``--fail-on`` severity,
    1 = findings, 2 = usage error (argparse or unknown target).
    """
    parser = argparse.ArgumentParser(
        prog="python -m repro check",
        description="Run the static verification layer over named "
        "protocol/program/machine targets.",
    )
    parser.add_argument(
        "targets",
        nargs="*",
        help="check targets (see --list); 'all' runs every registered one",
    )
    parser.add_argument("--list", action="store_true", help="list targets and exit")
    parser.add_argument(
        "--json", action="store_true", help="emit diagnostics as JSON"
    )
    parser.add_argument(
        "--fail-on",
        choices=("info", "warning", "error"),
        default="warning",
        help="lowest severity that makes the exit status 1 (default: warning)",
    )
    args = parser.parse_args(argv)

    from repro.analysis.statics import TARGETS as CHECK_TARGETS
    from repro.analysis.statics import run_target

    if args.list or not args.targets:
        for name, (description, _runner) in sorted(CHECK_TARGETS.items()):
            print(f"{name:<10} {description}")
        print(f"{'all':<10} every target above")
        return 0

    unknown = [t for t in args.targets if t != "all" and t not in CHECK_TARGETS]
    if unknown:
        parser.error(f"unknown check targets: {unknown}")

    diagnostics = []
    for target in args.targets:
        diagnostics.extend(run_target(target))
    return _emit_diagnostics(
        diagnostics,
        as_json=args.json,
        fail_on=args.fail_on,
        targets=list(args.targets),
    )


def _run_lint(argv: Tuple[str, ...]) -> int:
    """``python -m repro lint`` — determinism & fork-safety source lint.

    Exit codes: 0 = no finding at or above ``--fail-on`` (default: any
    warning), 1 = findings, 2 = usage error.
    """
    repo_root = Path(__file__).resolve().parents[2]
    parser = argparse.ArgumentParser(
        prog="python -m repro lint",
        description="Lint the source tree for determinism and fork-safety "
        "invariants (LNT001-LNT007; waive a line with `# lint-ok: CODE`).",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: the repro package)",
    )
    parser.add_argument(
        "--json", action="store_true", help="emit diagnostics as JSON"
    )
    parser.add_argument(
        "--fail-on",
        choices=("info", "warning", "error"),
        default="warning",
        help="lowest severity that makes the exit status 1 (default: warning)",
    )
    args = parser.parse_args(argv)

    from repro.lint import lint_paths

    paths = [Path(p) for p in args.paths] if args.paths else [repo_root / "src" / "repro"]
    missing = [str(p) for p in paths if not p.exists()]
    if missing:
        parser.error(f"no such file or directory: {missing}")
    diagnostics = lint_paths(paths)
    return _emit_diagnostics(
        diagnostics,
        as_json=args.json,
        fail_on=args.fail_on,
        paths=[str(p) for p in paths],
    )


#: Benchmark suites runnable via ``python -m repro bench --suite NAME``.
#: Each entry is the list of paths (relative to ``benchmarks/``) pytest
#: collects; ``core`` is what CI gates on — the simulator micro-benchmarks
#: plus the parallel-runtime multi-run suite, written into one JSON.
BENCH_SUITES: Dict[str, Tuple[str, ...]] = {
    "simulator": ("bench_simulator_performance.py",),
    "parallel": ("bench_parallel_runtime.py",),
    "chaos": ("bench_transient_faults.py",),
    "churn": ("bench_churn_recovery.py",),
    "observability": ("bench_observability.py",),
    "batched": ("bench_batched_engine.py",),
    "distributed": ("bench_distributed.py",),
    "statics": ("bench_statics.py",),
    "core": (
        "bench_simulator_performance.py",
        "bench_parallel_runtime.py",
        "bench_batched_engine.py",
        "bench_distributed.py",
        "bench_statics.py",
        "bench_churn_recovery.py",
    ),
    "all": (".",),
}


def _compare_bench(new_path: Path, baseline_path: Path, tolerance: float) -> int:
    """Exit status of the regression gate: compare every
    ``*.ops_per_second`` gauge in ``new_path`` against ``baseline_path``.

    A gauge fails when the fresh value drops below ``baseline × (1 −
    tolerance)``; a gauge present in the baseline but missing from the
    fresh run also fails (a silently skipped benchmark must not read as a
    pass).  Gauges new in the fresh run are reported but never fail.
    """
    new = json.loads(new_path.read_text(encoding="utf-8")).get("gauges", {})
    base = json.loads(baseline_path.read_text(encoding="utf-8")).get("gauges", {})
    failures = []
    for name in sorted(base):
        if not name.endswith(".ops_per_second") or base[name] in (None, 0):
            continue
        fresh = new.get(name)
        if fresh is None:
            failures.append(f"{name}: missing from fresh run")
            print(f"FAIL {name}: baseline {base[name]:.1f}, missing from fresh run")
            continue
        ratio = fresh / base[name]
        status = "ok" if ratio >= 1.0 - tolerance else "FAIL"
        print(
            f"{status:>4} {name}: {fresh:.1f} vs baseline {base[name]:.1f} "
            f"({ratio:+.1%} of baseline)"
        )
        if status == "FAIL":
            failures.append(f"{name}: {ratio:.1%} of baseline")
    for name in sorted(set(new) - set(base)):
        if name.endswith(".ops_per_second") and new[name] is not None:
            print(f" new {name}: {new[name]:.1f} (no baseline)")
    if failures:
        print(
            f"\nbench check FAILED ({len(failures)} gauge(s) regressed beyond "
            f"{tolerance:.0%} tolerance)"
        )
        return 1
    print(f"\nbench check passed (tolerance {tolerance:.0%})")
    return 0


def _run_bench(argv: Tuple[str, ...]) -> int:
    repo_root = Path(__file__).resolve().parents[2]
    parser = argparse.ArgumentParser(
        prog="python -m repro bench",
        description="Run a pytest-benchmark suite and record BENCH_*.json.",
    )
    parser.add_argument(
        "--suite",
        default="simulator",
        choices=sorted(BENCH_SUITES),
        help="benchmark suite to run (default: simulator)",
    )
    parser.add_argument(
        "--out",
        default=None,
        help="metrics JSON output path (default: BENCH_simulator.json at the "
        "repo root, i.e. the committed baseline is overwritten in place)",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="after running, compare *.ops_per_second gauges against the "
        "baseline and exit non-zero on regression",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        help="baseline JSON for --check (default: BENCH_simulator.json)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=float(os.environ.get("REPRO_BENCH_TOLERANCE", "0.30")),
        help="allowed fractional throughput drop before --check fails "
        "(default: 0.30, or REPRO_BENCH_TOLERANCE)",
    )
    parser.add_argument(
        "--pytest-args",
        default="",
        help="extra arguments passed through to pytest (one string)",
    )
    parser.add_argument(
        "--jobs",
        type=_jobs_value,
        default=None,
        help="process-pool width for the parallel-runtime benchmarks "
        "(sets REPRO_JOBS in the pytest subprocess; 0 = all cores, "
        "host:port = distributed cluster)",
    )
    parser.add_argument(
        "--deadline",
        type=float,
        default=None,
        help="wall-clock budget in seconds per simulation/program run "
        "(sets REPRO_DEADLINE in the pytest subprocess)",
    )
    parser.add_argument(
        "--engine",
        choices=("auto", "legacy", "fast", "batched"),
        default=None,
        help="simulation engine family for protocol-level runs (sets "
        "REPRO_ENGINE in the pytest subprocess)",
    )
    args = parser.parse_args(argv)

    baseline = Path(args.baseline) if args.baseline else repo_root / "BENCH_simulator.json"
    out = Path(args.out) if args.out else repo_root / "BENCH_simulator.json"
    if args.check and not baseline.exists():
        print(f"bench: baseline {baseline} does not exist", file=sys.stderr)
        return 2
    if args.check and out.resolve() == baseline.resolve():
        print(
            "bench: --check needs --out different from the baseline "
            "(the fresh run would overwrite what it is compared against)",
            file=sys.stderr,
        )
        return 2

    targets = [str(repo_root / "benchmarks" / name) for name in BENCH_SUITES[args.suite]]
    cmd = [sys.executable, "-m", "pytest", *targets, "-q"]
    if args.pytest_args:
        cmd += args.pytest_args.split()
    env = dict(os.environ)
    env["REPRO_BENCH_OUT"] = str(out)
    if args.jobs is not None:
        env["REPRO_JOBS"] = str(args.jobs)
    if args.engine is not None:
        env["REPRO_ENGINE"] = args.engine
    if args.deadline is not None:
        env["REPRO_DEADLINE"] = str(args.deadline)
    src = str(repo_root / "src")
    env["PYTHONPATH"] = (
        src + os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else src
    )
    status = subprocess.call(cmd, cwd=repo_root, env=env)
    if status != 0:
        return status
    if not out.exists():
        print(f"bench: suite wrote no metrics to {out}", file=sys.stderr)
        return 2
    print(f"\nwrote {out}")
    if args.check:
        return _compare_bench(out, baseline, args.tolerance)
    return 0


def main(argv: Tuple[str, ...] = tuple(sys.argv[1:])) -> int:
    if argv and argv[0] in ("trace", "stats"):
        return _run_observe(argv[0], tuple(argv[1:]))
    if argv and argv[0] == "bench":
        return _run_bench(tuple(argv[1:]))
    if argv and argv[0] == "check":
        return _run_check(tuple(argv[1:]))
    if argv and argv[0] == "lint":
        return _run_lint(tuple(argv[1:]))
    if argv and argv[0] == "chaos":
        return _run_chaos(tuple(argv[1:]))
    if argv and argv[0] == "serve":
        return _run_serve(tuple(argv[1:]))
    if argv and argv[0] == "top":
        return _run_top(tuple(argv[1:]))
    if argv and argv[0] == "worker":
        return _run_worker(tuple(argv[1:]))
    if argv and argv[0] == "coordinate":
        return _run_coordinate(tuple(argv[1:]))
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        help=f"experiment ids to run (default: quick set); known: "
        f"{', '.join(sorted(FULL))}",
    )
    parser.add_argument(
        "--full", action="store_true", help="run the behavioural experiments too"
    )
    parser.add_argument(
        "--jobs",
        type=_jobs_value,
        default=None,
        help="process-pool width for parallelisable experiments (sets "
        "REPRO_JOBS; 0 = all cores, default 1 = sequential, "
        "host:port = distributed cluster)",
    )
    parser.add_argument(
        "--deadline",
        type=float,
        default=None,
        help="wall-clock budget in seconds per simulation/program run "
        "(sets REPRO_DEADLINE)",
    )
    parser.add_argument(
        "--engine",
        choices=("auto", "legacy", "fast", "batched"),
        default=None,
        help="simulation engine family for protocol-level runs (sets "
        "REPRO_ENGINE; default: auto — fast below the population "
        "crossover, batched above)",
    )
    args = parser.parse_args(argv)

    if args.jobs is not None:
        os.environ["REPRO_JOBS"] = str(args.jobs)
    if args.engine is not None:
        os.environ["REPRO_ENGINE"] = args.engine
    if args.deadline is not None:
        os.environ["REPRO_DEADLINE"] = str(args.deadline)

    if args.experiments:
        unknown = [e for e in args.experiments if e not in FULL]
        if unknown:
            parser.error(f"unknown experiments: {unknown}")
        selected = {name: FULL[name] for name in args.experiments}
    else:
        selected = FULL if args.full else QUICK

    for name, runner in selected.items():
        print(f"\n=== {name} " + "=" * max(0, 60 - len(name)))
        start = time.time()
        print(runner())
        print(f"--- {name} done in {time.time() - start:.1f}s")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
