"""Fast-path simulation engine: incremental scheduling without rescans.

The legacy schedulers rebuild their candidate lists from the full support
on every step, making each interaction cost ``O(|support|² · |δ|)``.  One
interaction changes at most four state counts, so almost all of that work
is recomputation of unchanged weights.  This module rebuilds the hot path
around that observation:

* :class:`TransitionTable` — a per-protocol compilation (cached on the
  protocol instance): states are encoded as dense integers, every ``(q,
  r)`` pair with transitions becomes a *key* with the precomputed data the
  inner loop needs (pair-weight offset, candidate tuples with net deltas
  and output deltas), plus per-state lists of the keys each state touches.
* :class:`EnabledIndex` — the incremental index.  It maintains, per key,
  the ordered-pair weight ``c_q·(c_r − [q=r])`` (times the candidate
  multiplicity in enabled mode) and a dense *active list* of keys with
  positive weight used for weighted sampling by linear scan.  A step's
  repair recomputes just the keys touching the (≤ 4, usually fewer)
  states whose count changed, via static per-state record lists.  The
  index can :meth:`~EnabledIndex.attach` to a :class:`Multiset` and stay
  exact through arbitrary ``inc``/``dec`` calls via the multiset's change
  hooks.
* :func:`run_fast_simulation` — the drop-in driver used by
  :func:`repro.core.simulate` for the fast schedulers.  It adds O(Δ)
  output tracking (an incrementally maintained count of agents in
  accepting states replaces ``protocol.output(current)`` per step),
  geometric null-step skip-ahead for the uniform model (null runs are
  sampled from the exact geometric distribution and jumped in one go,
  preserving interaction counts and parallel time exactly), and a
  run-collapsing batch mode that applies a transition ``k`` times at once
  while it is provably the only enabled choice.

Sampling invariants (why the fast path is distribution-equivalent):

* enabled mode: a key's weight is ``pair_weight × #non-noop candidates``
  and the candidate within the key is chosen uniformly — identical to the
  legacy flat ``rng.choices`` over (candidate, pair_weight) pairs;
* uniform mode: a *matched* step picks a key with probability
  ``pair_weight / M`` (``M`` = total matched weight), the candidate by the
  legacy tie-break rule, and the number of null steps before it follows
  ``Geometric(M/T)`` with ``T = m(m−1)`` — exactly the law of the
  textbook "pick an ordered pair uniformly" process.

The silence predicate is exact, not heuristic: the configuration is
silent iff no key with a configuration-changing candidate has positive
pair weight, which the index answers by scanning the (small) active list.
"""

from __future__ import annotations

import random
from math import log
from time import monotonic
from typing import Dict, List, Optional, Tuple

from repro.core.multiset import Multiset
from repro.core.protocol import PopulationProtocol, Transition
from repro.core.scheduler import EnabledTransitionScheduler, UniformPairScheduler
from repro.observability.events import LAYER_PROTOCOL

#: Above this total weight ``int(random() * total)`` loses low bits; the
#: sampler switches to ``randrange`` (bit-exact, slightly slower).
_FLOAT_SAFE_TOTAL = 1 << 53

#: Convergence threshold sentinel while the output is undefined — an
#: integer ``productive`` counter never reaches it.
_NEVER = float("inf")


class FastEnabledScheduler(EnabledTransitionScheduler):
    """Incremental-index version of :class:`EnabledTransitionScheduler`.

    Samples the same distribution (enabled non-no-op transitions weighted
    by matching pair counts) but lets :func:`repro.core.simulate` run the
    incremental fast path: per-step cost proportional to the *change* per
    interaction instead of the support size.  ``select`` falls back to the
    legacy implementation, so the class is a drop-in replacement; runs are
    distribution-equivalent but not bit-identical to the legacy scheduler
    under the same seed (the random stream is consumed differently).
    """


class FastUniformScheduler(UniformPairScheduler):
    """Incremental-index version of :class:`UniformPairScheduler`.

    Preserves the textbook uniform-pair semantics — interaction counts
    include null steps and parallel time is unchanged — but null runs are
    skipped in one geometric jump and matched pairs are sampled from the
    incremental index.  Distribution-equivalent, not bit-identical, to
    the legacy scheduler under the same seed.
    """


# ----------------------------------------------------------------------
# Per-protocol compiled table
# ----------------------------------------------------------------------
class ModeTable:
    """The compiled key set for one sampling mode (enabled or uniform).

    ``keys[i] = (a, b, off, mult, cands)`` with ``off = 1`` for same-state
    pairs (pair weight ``c·(c−1)``) and ``mult`` the candidate count.
    Candidate records are ``(q, r, q2, r2, changes, accept_delta, deltas,
    transition)`` — state ids, a changed-configuration flag (no-ops *and*
    swaps are changeless), the accepting-count delta, the nonzero
    ``(state_id, net_delta)`` pairs, and the original transition.
    ``hot[i]`` carries just ``(changes, accept_delta, deltas)`` per
    candidate: the inner loops apply the *net* deltas, so a catalyst-style
    transition (one agent unchanged) touches one fewer state than a naive
    4-count update would.  ``srecs[s]`` is the static repair list of state
    ``s`` — one ``(i, partner, off, weight_mult)`` record per key touching
    ``s`` (``weight_mult`` folds ``mult`` into the weight in enabled mode
    and is 1 in uniform mode); ``touch[s]`` lists the keys mentioning
    state ``s``; ``changing[i]`` flags keys with at least one
    configuration-changing candidate.
    """

    __slots__ = ("keys", "touch", "changing", "srecs", "hot")

    def __init__(self, n_states: int, keys: list, fold_mult: bool):
        self.keys = tuple(keys)
        touch: List[List[int]] = [[] for _ in range(n_states)]
        for i, (a, b, _off, _mult, _cands) in enumerate(keys):
            touch[a].append(i)
            if b != a:
                touch[b].append(i)
        self.touch = tuple(tuple(t) for t in touch)
        self.changing = tuple(
            1 if any(c[4] for c in key[4]) else 0 for key in keys
        )
        # Side-specific repair records: from state ``s``'s point of view a
        # key's weight is ``cnt[s]·(cnt[partner] − off)·mult`` (for
        # distinct-state keys ``off = 0`` and the product commutes; for
        # same-state keys the partner is ``s`` itself), so the repair
        # loops can hoist ``cnt[s]`` out of the per-record recomputation.
        # The lists are static — every key touching ``s``, occupied
        # partner or not — which keeps repairs branch-free: a vacated
        # partner just yields weight 0.
        srecs: List[List[tuple]] = [[] for _ in range(n_states)]
        for i, (a, b, off, mult, _cands) in enumerate(keys):
            m_eff = mult if fold_mult else 1
            srecs[a].append((i, b, off, m_eff))
            if b != a:
                srecs[b].append((i, a, off, m_eff))
        self.srecs = tuple(tuple(r) for r in srecs)
        self.hot = tuple(tuple((c[4], c[5], c[6]) for c in key[4]) for key in keys)


class TransitionTable:
    """Dense-integer compilation of a protocol's transition structure."""

    __slots__ = ("states", "sid", "accepting", "enabled", "uniform")

    def __init__(self, protocol: PopulationProtocol):
        # Sorted by repr for a deterministic encoding across runs.
        self.states: Tuple[object, ...] = tuple(sorted(protocol.states, key=repr))
        self.sid: Dict[object, int] = {s: i for i, s in enumerate(self.states)}
        self.accepting: Tuple[bool, ...] = tuple(
            s in protocol.accepting_states for s in self.states
        )

        def cand_record(t: Transition):
            net: Dict[int, int] = {}
            for s, d in ((t.q, -1), (t.r, -1), (t.q2, 1), (t.r2, 1)):
                i = self.sid[s]
                net[i] = net.get(i, 0) + d
            deltas = tuple((i, d) for i, d in net.items() if d)
            accept_delta = (
                int(t.q2 in protocol.accepting_states)
                + int(t.r2 in protocol.accepting_states)
                - int(t.q in protocol.accepting_states)
                - int(t.r in protocol.accepting_states)
            )
            return (
                self.sid[t.q],
                self.sid[t.r],
                self.sid[t.q2],
                self.sid[t.r2],
                1 if deltas else 0,
                accept_delta,
                deltas,
                t,
            )

        def build_keys(candidate_filter):
            keys = []
            for (q, r), ts in sorted(protocol._index.items(), key=repr):
                cands = [t for t in ts if candidate_filter(t)]
                if not cands:
                    continue
                keys.append(
                    (
                        self.sid[q],
                        self.sid[r],
                        1 if q == r else 0,
                        len(cands),
                        tuple(cand_record(t) for t in cands),
                    )
                )
            return keys

        # Enabled mode samples only non-no-op transitions (the legacy
        # EnabledTransitionScheduler's candidate set); uniform mode needs
        # every matched pair, no-ops included.
        n = len(self.states)
        self.enabled = ModeTable(
            n, build_keys(lambda t: not t.is_noop()), fold_mult=True
        )
        self.uniform = ModeTable(n, build_keys(lambda t: True), fold_mult=False)


def get_table(protocol: PopulationProtocol) -> TransitionTable:
    """The protocol's compiled :class:`TransitionTable` (built once and
    cached on the protocol instance)."""
    table = getattr(protocol, "_fastpath_table", None)
    if table is None:
        table = TransitionTable(protocol)
        protocol._fastpath_table = table
    return table


# ----------------------------------------------------------------------
# Incremental index
# ----------------------------------------------------------------------
class EnabledIndex:
    """Incrementally maintained weights for every transition key.

    Invariant (checked by :meth:`validate`): for every key ``i = (a, b)``,

    * ``w[i] == cnt[a]·(cnt[b] − off) · weight_mult`` (never negative:
      ``off = 1`` only for same-state keys, whose ``c·(c−1)`` is ≥ 0 for
      every integer count);
    * ``active`` lists exactly the keys with ``w[i] > 0`` and ``total``
      is their sum.

    After a count change of state ``s`` the keys whose weight may have
    moved are exactly ``srecs[s]`` — the *static* list of keys touching
    ``s`` — so a repair is a branch-free O(degree of ``s``) recompute
    with no membership bookkeeping.  (An earlier design kept dynamic
    per-state lists restricted to occupied partners; the dict churn of
    maintaining them on support flips cost more than the few extra
    multiply-and-compare no-ops the static lists admit.)
    """

    __slots__ = (
        "table",
        "mode",
        "keys",
        "touch",
        "changing",
        "srecs",
        "hot",
        "cnt",
        "w",
        "active",
        "activepos",
        "total",
        "churn",
        "_watched",
    )

    def __init__(
        self,
        protocol: PopulationProtocol,
        config: Optional[Multiset] = None,
        *,
        mode: str = "enabled",
    ):
        if mode not in ("enabled", "uniform"):
            raise ValueError("mode must be 'enabled' or 'uniform'")
        self.table = get_table(protocol)
        self.mode = mode
        mt = self.table.enabled if mode == "enabled" else self.table.uniform
        self.keys = mt.keys
        self.touch = mt.touch
        self.changing = mt.changing
        self.srecs = mt.srecs
        self.hot = mt.hot
        n_states = len(self.table.states)
        self.cnt: List[int] = [0] * n_states
        self.w: List[int] = [0] * len(self.keys)
        self.active: List[int] = []
        self.activepos: Dict[int, int] = {}
        self.total = 0
        self.churn = 0
        self._watched: Optional[Multiset] = None
        if config is not None:
            self.rebuild(config)

    # -- construction / sync -------------------------------------------
    def rebuild(self, config: Multiset) -> None:
        """Reset all incremental state from a configuration snapshot."""
        sid = self.table.sid
        n_states = len(self.table.states)
        self.cnt = [0] * n_states
        for state, count in config.items():
            self.cnt[sid[state]] = count
        self.w = [0] * len(self.keys)
        self.active = []
        self.activepos = {}
        self.total = 0
        for s in range(n_states):
            self.fix_state(s)

    # -- multiset change hooks -----------------------------------------
    def attach(self, config: Multiset) -> None:
        """Keep the index exact through ``config.inc``/``dec`` calls."""
        if self._watched is not None:
            self.detach()
        self.rebuild(config)
        config.watch(self._on_change)
        self._watched = config

    def detach(self) -> None:
        if self._watched is not None:
            self._watched.unwatch(self._on_change)
            self._watched = None

    def _on_change(self, state, new_count: int) -> None:
        s = self.table.sid.get(state)
        if s is None:  # state foreign to the protocol: no keys touch it
            return
        self.cnt[s] = new_count
        self.fix_state(s)

    # -- incremental repair --------------------------------------------
    def fix_state(self, s: int) -> None:
        """Re-establish the invariant for every key touching state ``s``.

        Idempotent and correct regardless of how ``cnt[s]`` got to its
        current value, so it serves the watcher path and the bulk count
        updates of the batch mode alike.

        ``churn`` counts active-set membership changes made here (batch
        apply, fault repair, attach/rebuild).  The single-step loops keep
        their own inlined copy of this repair and deliberately do *not*
        count — the hot path stays branch-free for the null-observer
        overhead budget — so the counter measures index turnover on the
        repair path, not per-interaction flips.
        """
        cnt = self.cnt
        w = self.w
        active = self.active
        activepos = self.activepos
        c_s = cnt[s]
        for i, partner, off, m_eff in self.srecs[s]:
            v = c_s * (cnt[partner] - off) * m_eff
            old = w[i]
            if v != old:
                self.total += v - old
                w[i] = v
                if not old:
                    activepos[i] = len(active)
                    active.append(i)
                    self.churn += 1
                elif not v:
                    pos = activepos.pop(i)
                    last = active.pop()
                    if last != i:
                        active[pos] = last
                        activepos[last] = pos
                    self.churn += 1

    # -- dynamic population --------------------------------------------
    def grow(self, s: int, k: int = 1) -> None:
        """Add ``k`` agents in state id ``s`` and repair the invariant —
        the join half of dynamic-population support.  ``fix_state`` is
        idempotent and count-driven, so a resize is indistinguishable
        from any other count change to the index."""
        self.cnt[s] += k
        self.fix_state(s)

    def shrink(self, s: int, k: int = 1) -> None:
        """Remove ``k`` agents from state id ``s`` (the leave half);
        raises ``ValueError`` rather than driving a count negative."""
        if self.cnt[s] < k:
            raise ValueError(
                f"cannot remove {k} agents from state "
                f"{self.table.states[s]!r} (count {self.cnt[s]})"
            )
        self.cnt[s] -= k
        self.fix_state(s)

    @property
    def population(self) -> int:
        """Current number of agents (live sum of the count vector —
        never cached by callers that outlive a fault fire)."""
        return sum(self.cnt)

    # -- queries --------------------------------------------------------
    def weight(self, q, r) -> int:
        """Current sampling weight of the ordered key ``(q, r)``."""
        sid = self.table.sid
        a, b = sid.get(q), sid.get(r)
        if a is None or b is None:
            return 0
        for i, (ka, kb, _off, _mult, _cands) in enumerate(self.keys):
            if ka == a and kb == b:
                return self.w[i]
        return 0

    def enabled_weights(self) -> Dict[Tuple[object, object], int]:
        """``{(q, r): weight}`` for every key with positive weight."""
        states = self.table.states
        return {
            (states[self.keys[i][0]], states[self.keys[i][1]]): self.w[i]
            for i in self.active
        }

    def is_silent_now(self) -> bool:
        """Exact silence: no configuration-changing candidate is enabled."""
        changing = self.changing
        return not any(changing[i] for i in self.active)

    def sample_key(self, rng: random.Random) -> Optional[int]:
        """A key index drawn with probability ``w[i] / total`` (``None``
        when no key is enabled)."""
        total = self.total
        if total <= 0:
            return None
        if total > _FLOAT_SAFE_TOTAL:
            x = rng.randrange(total)
        else:
            x = int(rng.random() * total)
            if x >= total:
                x = total - 1
        acc = 0
        i = self.active[0]
        for i in self.active:
            acc += self.w[i]
            if acc > x:
                break
        return i

    def validate(self, config: Multiset) -> None:
        """Brute-force check of the index invariant against ``config``
        (test hook; raises ``AssertionError`` on any divergence)."""
        sid = self.table.sid
        for state, count in config.items():
            assert self.cnt[sid[state]] == count, (state, count)
        expected_total = 0
        for i, (a, b, off, mult, _cands) in enumerate(self.keys):
            m_eff = mult if self.mode == "enabled" else 1
            pair = self.cnt[a] * (self.cnt[b] - off)
            v = max(pair, 0) * m_eff
            assert self.w[i] == v, (i, self.w[i], v)
            expected_total += v
            assert (i in self.activepos) == (v > 0)
        assert self.total == expected_total
        assert sorted(self.active) == sorted(self.activepos)


# ----------------------------------------------------------------------
# Batch-mode bound computation
# ----------------------------------------------------------------------
def _first_reach(c: int, d: int, lo: int) -> Optional[int]:
    """Smallest ``j ≥ 0`` with ``c + j·d ≥ lo`` (``None`` if never)."""
    if c >= lo:
        return 0
    if d <= 0:
        return None
    return (lo - c + d - 1) // d


def _last_reach(c: int, d: int, lo: int) -> Optional[int]:
    """Largest ``j`` with ``c + j·d ≥ lo`` (``None`` = forever), assuming
    ``c ≥ lo`` holds at ``j = 0``; returns -1 if it fails immediately."""
    if c < lo:
        return -1
    if d >= 0:
        return None
    return (c - lo) // (-d)


def _first_positive_weight(key, cnt, delta_map) -> Optional[int]:
    """The first ``j ≥ 0`` at which ``key``'s pair weight is positive
    while counts evolve as ``cnt[s] + j·delta[s]`` (``None`` if never:
    some factor never reaches its threshold, or the factors' positive
    windows do not overlap)."""
    a, b, off, _mult, _cands = key
    if a == b:
        bounds = ((cnt[a], delta_map.get(a, 0), 2),)
    else:
        bounds = (
            (cnt[a], delta_map.get(a, 0), 1),
            (cnt[b], delta_map.get(b, 0), 1),
        )
    start = 0
    end: Optional[int] = None
    for c, d, lo in bounds:
        first = _first_reach(c, d, lo)
        if first is None:
            return None
        if first > start:
            start = first
        if d < 0:
            last = (c - lo) // (-d) if c >= lo else -1
            if end is None or last < end:
                end = last
    if end is not None and start > end:
        return None
    return start


def _first_output_flip(accept: int, ad: int, m: int, category) -> Optional[int]:
    """Smallest ``j ≥ 1`` at which the output category of ``accept +
    j·ad`` differs from ``category`` (``None`` if it never does)."""
    if ad == 0:
        return None
    if category is False:  # accept == 0 and ad > 0: leaves False at once
        return 1
    if category is True:  # accept == m and ad < 0: leaves True at once
        return 1
    if ad > 0:
        gap = m - accept
        return gap // ad if gap % ad == 0 else None
    gap = accept
    return gap // (-ad) if gap % (-ad) == 0 else None


def _batch_length(
    index: EnabledIndex,
    i: int,
    cand,
    *,
    budget,
    window_left,
    accept,
    m,
    category,
    snapshot_gap,
):
    """How many times the sole enabled candidate may be applied at once.

    While counts evolve linearly (``cnt[s] + j·d_s``), the batch must end
    no later than: the sole key losing its weight, any other key gaining
    weight (the choice would stop being deterministic), the interaction
    budget, the convergence window completing, the output category
    changing, or the next snapshot point.  All bounds are exact integer
    solutions of the linear threshold inequalities, so the collapsed run
    is step-for-step identical to executing the transition ``k`` times.
    """
    _q, _r, _q2, _r2, _ch, ad, deltas, _t = cand
    cnt = index.cnt
    keys = index.keys
    k = budget
    if window_left is not None and window_left < k:
        k = window_left
    if snapshot_gap is not None and snapshot_gap < k:
        k = snapshot_gap
    if k <= 1:
        return k
    delta_map = dict(deltas)

    # The sole key must keep positive weight for steps j = 0..k-1.
    a, b, off, _mult, _cands = keys[i]
    if a == b:
        last = _last_reach(cnt[a], delta_map.get(a, 0), 2)
    else:
        last = _last_reach(cnt[a], delta_map.get(a, 0), 1)
        last_b = _last_reach(cnt[b], delta_map.get(b, 0), 1)
        if last is None or (last_b is not None and last_b < last):
            last = last_b
    if last is not None and last + 1 < k:
        k = last + 1
    if k <= 1:
        return k

    # No other key may become enabled before the batch ends: the first j
    # at which another key's weight turns positive caps k at that j.
    # (Only keys touching a state the batch changes can newly turn on.)
    w = index.w
    touch = index.touch
    seen = set()
    for s, _d in deltas:
        for i2 in touch[s]:
            if i2 == i or w[i2] or i2 in seen:
                continue
            seen.add(i2)
            first = _first_positive_weight(keys[i2], cnt, delta_map)
            if first is not None and first < k:
                k = first
    if k <= 1:
        return k

    # The output category may change only at the batch's final step.
    flip = _first_output_flip(accept, ad, m, category)
    if flip is not None and flip < k:
        k = flip
    return k


# ----------------------------------------------------------------------
# The fast simulation drivers
# ----------------------------------------------------------------------
def run_fast_simulation(
    protocol: PopulationProtocol,
    current: Multiset,
    *,
    population: int,
    rng: random.Random,
    scheduler,
    max_interactions: int,
    convergence_window: int,
    check_silence_every: int,
    obs,
    trace,
    stable_output,
    injector=None,
    deadline_at=None,
):
    """Run the incremental-index hot loop; returns a ``SimulationResult``.

    Called by :func:`repro.core.simulate` after the common prologue
    (validation, rng setup, ``on_run_start``).  ``current`` is the working
    copy of the configuration; the loops operate on the index's flat count
    array and materialise configurations only at observation points and at
    exit, which is what makes per-step cost O(Δ).

    ``injector`` (a bound :class:`repro.resilience.FaultInjector`) routes
    the run through the dedicated fault loops — separate functions, so
    uninjected runs pay nothing and stay bit-identical to previous
    releases.  ``deadline_at`` is an absolute ``time.monotonic()`` bound;
    past it the loops return a verdictless result flagged
    ``deadline_exceeded``.
    """
    if isinstance(scheduler, FastUniformScheduler):
        index = EnabledIndex(protocol, current, mode="uniform")
        if injector is not None:
            return _uniform_fault_loop(
                index,
                population=population,
                rng=rng,
                inj=injector,
                tie_first=scheduler.tie_break == "first",
                max_interactions=max_interactions,
                convergence_window=convergence_window,
                check_silence_every=check_silence_every,
                obs=obs,
                trace=trace,
                stable_output=stable_output,
                deadline_at=deadline_at,
            )
        return _uniform_loop(
            index,
            population=population,
            rng=rng,
            tie_first=scheduler.tie_break == "first",
            max_interactions=max_interactions,
            convergence_window=convergence_window,
            check_silence_every=check_silence_every,
            obs=obs,
            trace=trace,
            stable_output=stable_output,
            deadline_at=deadline_at,
        )
    index = EnabledIndex(protocol, current, mode="enabled")
    if injector is not None:
        return _enabled_fault_loop(
            index,
            population=population,
            rng=rng,
            inj=injector,
            max_interactions=max_interactions,
            convergence_window=convergence_window,
            obs=obs,
            trace=trace,
            stable_output=stable_output,
            deadline_at=deadline_at,
        )
    return _enabled_loop(
        index,
        population=population,
        rng=rng,
        max_interactions=max_interactions,
        convergence_window=convergence_window,
        obs=obs,
        trace=trace,
        stable_output=stable_output,
        deadline_at=deadline_at,
    )


def _snapshot_dict(states, cnt):
    return {states[s]: c for s, c in enumerate(cnt) if c}


def _result(
    index,
    interactions,
    productive,
    population,
    trace,
    verdict,
    silent,
    obs,
    deadline_exceeded=False,
    joined=0,
    departed=0,
):
    from repro.core.simulation import SimulationResult  # late: avoids cycle

    if obs is not None:
        obs.on_run_end(
            interactions,
            LAYER_PROTOCOL,
            verdict=verdict,
            silent=silent,
            interactions=interactions,
            productive=productive,
            population=population,
            deadline_exceeded=deadline_exceeded,
            enabled_keys=len(index.active),
            index_churn=index.churn,
            joined=joined,
            departed=departed,
        )
    return SimulationResult(
        final=Multiset(_snapshot_dict(index.table.states, index.cnt)),
        verdict=verdict,
        silent=silent,
        interactions=interactions,
        productive=productive,
        population=population,
        output_trace=trace,
        deadline_exceeded=deadline_exceeded,
        joined=joined,
        departed=departed,
    )


def _enabled_loop(
    index: EnabledIndex,
    *,
    population,
    rng,
    max_interactions,
    convergence_window,
    obs,
    trace,
    stable_output,
    deadline_at=None,
):
    states = index.table.states
    accepting = index.table.accepting
    cnt = index.cnt
    w = index.w
    srecs = index.srecs
    active = index.active
    activepos = index.activepos
    hot = index.hot
    kcands = tuple(key[4] for key in index.keys)
    kmult = tuple(key[3] for key in index.keys)
    # Single-candidate keys (the common case) skip the tie-break draw and
    # the length check entirely.
    hot1 = tuple(h[0] if len(h) == 1 else None for h in index.hot)
    changing = index.changing
    fix_state = index.fix_state
    rnd = rng.random
    randrange = rng.randrange

    snapshot_every = obs.snapshot_interval if obs is not None else None
    interactions = 0
    productive = 0
    stable_since = 0
    accept = sum(cnt[s] for s in range(len(states)) if accepting[s])
    m = population
    out = stable_output
    conv_at = stable_since + convergence_window if out is not None else _NEVER
    total = index.total
    ticks = 0

    while interactions < max_interactions:
        if deadline_at is not None:
            ticks += 1
            if not ticks & 255 and monotonic() >= deadline_at:
                index.total = total
                return _result(
                    index, interactions, productive, population, trace,
                    None, False, obs, deadline_exceeded=True,
                )
        if total <= 0:
            # No productive transition enabled: provably silent, matching
            # the legacy enabled scheduler's single null step + break.
            interactions += 1
            if obs is not None:
                obs.on_scheduler_select(
                    interactions,
                    scheduler="fast_enabled",
                    null=True,
                    candidates=0,
                    weight=0,
                )
                obs.on_interaction(interactions, None, None, False)
                obs.on_silence_check(interactions, True)
            break

        # ---- run-collapsing batch mode -------------------------------
        if len(active) == 1:
            i = active[0]
            cands = kcands[i]
            if len(cands) == 1:
                cand = cands[0]
                ch = cand[4]
                index.total = total
                k = _batch_length(
                    index,
                    i,
                    cand,
                    budget=max_interactions - interactions,
                    window_left=(
                        convergence_window - (productive - stable_since)
                        if (out is not None and ch)
                        else None
                    ),
                    accept=accept,
                    m=m,
                    category=out,
                    snapshot_gap=(
                        snapshot_every - interactions % snapshot_every
                        if snapshot_every
                        else None
                    ),
                )
                if k > 1:
                    ad = cand[5]
                    interactions += k
                    for s, d in cand[6]:
                        cnt[s] += d * k
                    for s, _d in cand[6]:
                        fix_state(s)
                    total = index.total
                    if ch:
                        productive += k
                    accept += ad * k
                    if obs is not None:
                        obs.on_batch(
                            interactions,
                            kind="collapse",
                            count=k,
                            transition=cand[7],
                            productive=k if ch else 0,
                        )
                        if snapshot_every and interactions % snapshot_every == 0:
                            obs.on_snapshot(
                                interactions,
                                _snapshot_dict(states, cnt),
                                LAYER_PROTOCOL,
                            )
                    if ad:
                        new_out = (
                            True
                            if accept == m
                            else (False if accept == 0 else None)
                        )
                        if new_out != out:
                            out = new_out
                            stable_since = productive
                            conv_at = (
                                stable_since + convergence_window
                                if out is not None
                                else _NEVER
                            )
                            trace.append((interactions, out))
                            if obs is not None:
                                obs.on_output_flip(
                                    interactions, out, LAYER_PROTOCOL
                                )
                    if productive >= conv_at:
                        index.total = total
                        return _result(
                            index, interactions, productive, population,
                            trace, out, False, obs,
                        )
                    continue

        # ---- one sampled step ----------------------------------------
        interactions += 1
        if total <= _FLOAT_SAFE_TOTAL:
            x = int(rnd() * total)
            if x >= total:
                x = total - 1
        else:
            x = randrange(total)
        acc = 0
        for i in active:
            acc += w[i]
            if acc > x:
                break
        hc = hot1[i]
        j = 0
        if hc is None:
            hcands = hot[i]
            j = int(rnd() * len(hcands))
            hc = hcands[j]
        ch, ad, deltas = hc

        if obs is not None:
            ncand = 0
            for k2 in active:
                ncand += kmult[k2]
            obs.on_scheduler_select(
                interactions,
                scheduler="fast_enabled",
                null=False,
                candidates=ncand,
                weight=total,
            )

        # Enabled-mode candidates are non-no-ops but may still be
        # changeless (swaps); those leave every count untouched.  Only the
        # keys touching a state with a nonzero net delta can move, and
        # the recompute is idempotent, so a key shared by two changed
        # states is just a no-op the second time.
        if ch:
            productive += 1
            for s, d in deltas:
                cnt[s] += d
            for s, _d in deltas:
                c_s = cnt[s]
                for i2, partner, off, m_eff in srecs[s]:
                    v = c_s * (cnt[partner] - off) * m_eff
                    old = w[i2]
                    if v != old:
                        total += v - old
                        w[i2] = v
                        if not old:
                            activepos[i2] = len(active)
                            active.append(i2)
                        elif not v:
                            pos = activepos.pop(i2)
                            last = active.pop()
                            if last != i2:
                                active[pos] = last
                                activepos[last] = pos

        if obs is not None:
            t = kcands[i][j][7]
            obs.on_interaction(interactions, t, (t.q, t.r), bool(ch))
            if snapshot_every and interactions % snapshot_every == 0:
                obs.on_snapshot(
                    interactions, _snapshot_dict(states, cnt), LAYER_PROTOCOL
                )

        if ad:
            accept += ad
            new_out = True if accept == m else (False if accept == 0 else None)
            if new_out != out:
                out = new_out
                stable_since = productive
                conv_at = (
                    stable_since + convergence_window
                    if out is not None
                    else _NEVER
                )
                trace.append((interactions, out))
                if obs is not None:
                    obs.on_output_flip(interactions, out, LAYER_PROTOCOL)
        if productive >= conv_at:
            index.total = total
            return _result(
                index, interactions, productive, population, trace, out,
                False, obs,
            )

    index.total = total
    silent = not any(changing[j2] for j2 in active)
    return _result(
        index, interactions, productive, population, trace,
        out if silent else None, silent, obs,
    )


def _enabled_fault_loop(
    index: EnabledIndex,
    *,
    population,
    rng,
    inj,
    max_interactions,
    convergence_window,
    obs,
    trace,
    stable_output,
    deadline_at=None,
):
    """Enabled-mode driver with fault injection.

    A separate function rather than branches in :func:`_enabled_loop`:
    uninjected runs keep their hot loop byte-for-byte (no perf or golden-
    trace risk), and this loop can afford clarity over micro-optimisation
    — it skips batch collapse and always works through ``index.total`` so
    the :class:`EnabledIndex` invariant (checkable via ``validate``)
    holds at *every* step boundary, including immediately after a fault.

    Fault semantics (identical in the uniform twin below):

    * due faults fire at the top of the step, through an
      :class:`~repro.resilience.IndexView` whose ``accept_delta`` keeps
      the O(Δ) output tracking exact;
    * a provably silent configuration with pending triggers fast-forwards
      to the next trigger instead of terminating — a corruption can
      re-enable transitions, so silence is only final once the plan is
      drained;
    * inside an unfair window the sampler is bypassed: the lowest-indexed
      active key with a configuration-changing candidate (first such
      candidate) is played deterministically, consuming no randomness —
      so the window's length never shifts the downstream random stream
      relative to a run whose window differs only in adversarial choices;
    * join/leave faults resize the population: the view repairs the index
      (``grow``/``shrink`` + ``fix_state``) and reports ``size_delta``,
      from which the loop refreshes its cached ``m`` (and ``T = m(m-1)``
      in the uniform twin) — the only two places the fast path ever
      captured the population size;
    * inside an adversarial-scheduler window the worst-case enabled pick
      (:func:`repro.resilience.churn.adversarial_index_pick`) replaces
      fair sampling, except on the fairness-budget steps the injector's
      ``take_adversarial`` yields back; like the unfair window, the
      adversarial choice consumes no randomness.
    """
    from repro.resilience.churn import adversarial_index_pick
    from repro.resilience.faults import IndexView

    states = index.table.states
    accepting = index.table.accepting
    cnt = index.cnt
    w = index.w
    active = index.active
    hot = index.hot
    kcands = tuple(key[4] for key in index.keys)
    kmult = tuple(key[3] for key in index.keys)
    changing = index.changing
    fix_state = index.fix_state
    rnd = rng.random
    randrange = rng.randrange

    snapshot_every = obs.snapshot_interval if obs is not None else None
    interactions = 0
    productive = 0
    stable_since = 0
    accept = sum(cnt[s] for s in range(len(states)) if accepting[s])
    m = population
    out = stable_output
    conv_at = stable_since + convergence_window if out is not None else _NEVER
    view = IndexView(index)
    ticks = 0

    while interactions < max_interactions:
        if deadline_at is not None:
            ticks += 1
            if not ticks & 255 and monotonic() >= deadline_at:
                return _result(
                    index, interactions, productive, m, trace,
                    None, False, obs, deadline_exceeded=True,
                    joined=inj.joined, departed=inj.departed,
                )

        # ---- due faults ----------------------------------------------
        if interactions >= inj.next_at:
            view.accept_delta = 0
            inj.fire(interactions, view, obs)
            if view.accept_delta:
                accept += view.accept_delta
            if view.size_delta:
                m += view.size_delta
                view.size_delta = 0
            # m == 0 leaves the output undefined (an empty configuration
            # has no agents to agree on anything).
            new_out = (
                (True if accept == m else (False if accept == 0 else None))
                if m
                else None
            )
            if new_out != out:
                out = new_out
                stable_since = productive
                conv_at = (
                    stable_since + convergence_window
                    if out is not None
                    else _NEVER
                )
                trace.append((interactions, out))
                if obs is not None:
                    obs.on_output_flip(interactions, out, LAYER_PROTOCOL)

        if index.total <= 0:
            if inj.next_at <= max_interactions:
                # Silent *for now*: a pending fault may revive the run.
                # fire() leaves next_at strictly beyond the fired step, so
                # the jump always advances.
                nxt = int(inj.next_at)
                if obs is not None:
                    obs.on_batch(nxt, kind="null_skip", count=nxt - interactions)
                interactions = nxt
                continue
            interactions += 1
            if obs is not None:
                obs.on_scheduler_select(
                    interactions,
                    scheduler="fast_enabled",
                    null=True,
                    candidates=0,
                    weight=0,
                )
                obs.on_interaction(interactions, None, None, False)
                obs.on_silence_check(interactions, True)
            break

        # ---- one step ------------------------------------------------
        interactions += 1
        total = index.total
        if interactions <= inj.unfair_until:
            best = -1
            for i2 in active:
                if changing[i2] and (best == -1 or i2 < best):
                    best = i2
            i = best if best != -1 else min(active)
            hcands = hot[i]
            j = 0
            for j2, c in enumerate(hcands):
                if c[0]:
                    j = j2
                    break
            if obs is not None:
                obs.on_scheduler_select(
                    interactions,
                    scheduler="unfair",
                    null=False,
                    candidates=1,
                    weight=total,
                )
        elif interactions <= inj.adv_until and inj.take_adversarial():
            i, j = adversarial_index_pick(index, accept, m, out)
            hcands = hot[i]
            if obs is not None:
                obs.on_scheduler_select(
                    interactions,
                    scheduler="adversarial",
                    null=False,
                    candidates=1,
                    weight=total,
                )
        else:
            if total <= _FLOAT_SAFE_TOTAL:
                x = int(rnd() * total)
                if x >= total:
                    x = total - 1
            else:
                x = randrange(total)
            acc = 0
            for i in active:
                acc += w[i]
                if acc > x:
                    break
            hcands = hot[i]
            j = 0
            if len(hcands) > 1:
                j = int(rnd() * len(hcands))
            if obs is not None:
                ncand = 0
                for k2 in active:
                    ncand += kmult[k2]
                obs.on_scheduler_select(
                    interactions,
                    scheduler="fast_enabled",
                    null=False,
                    candidates=ncand,
                    weight=total,
                )
        ch, ad, deltas = hcands[j]

        if inj.drop_left and inj.take_drop():
            if obs is not None:
                t = kcands[i][j][7]
                obs.on_fault(
                    interactions, "drop", LAYER_PROTOCOL, transition=repr(t)
                )
                obs.on_interaction(interactions, None, (t.q, t.r), False)
            continue

        if ch:
            productive += 1
            for s, d in deltas:
                cnt[s] += d
            for s, _d in deltas:
                fix_state(s)

        if obs is not None:
            t = kcands[i][j][7]
            obs.on_interaction(interactions, t, (t.q, t.r), bool(ch))
            if snapshot_every and interactions % snapshot_every == 0:
                obs.on_snapshot(
                    interactions, _snapshot_dict(states, cnt), LAYER_PROTOCOL
                )

        if ad:
            accept += ad
            new_out = True if accept == m else (False if accept == 0 else None)
            if new_out != out:
                out = new_out
                stable_since = productive
                conv_at = (
                    stable_since + convergence_window
                    if out is not None
                    else _NEVER
                )
                trace.append((interactions, out))
                if obs is not None:
                    obs.on_output_flip(interactions, out, LAYER_PROTOCOL)

        # Re-delivery: apply the same transition once more, when a
        # duplicate token is armed and the key is still enabled.
        if ch and inj.duplicate_left and w[i] > 0 and inj.take_duplicate():
            productive += 1
            for s, d in deltas:
                cnt[s] += d
            for s, _d in deltas:
                fix_state(s)
            if obs is not None:
                t = kcands[i][j][7]
                obs.on_fault(
                    interactions, "duplicate", LAYER_PROTOCOL, transition=repr(t)
                )
            if ad:
                accept += ad
                new_out = (
                    True if accept == m else (False if accept == 0 else None)
                )
                if new_out != out:
                    out = new_out
                    stable_since = productive
                    conv_at = (
                        stable_since + convergence_window
                        if out is not None
                        else _NEVER
                    )
                    trace.append((interactions, out))
                    if obs is not None:
                        obs.on_output_flip(interactions, out, LAYER_PROTOCOL)

        if productive >= conv_at:
            return _result(
                index, interactions, productive, m, trace, out,
                False, obs, joined=inj.joined, departed=inj.departed,
            )

    silent = index.is_silent_now()
    return _result(
        index, interactions, productive, m, trace,
        out if silent else None, silent, obs,
        joined=inj.joined, departed=inj.departed,
    )


def _uniform_fault_loop(
    index: EnabledIndex,
    *,
    population,
    rng,
    inj,
    tie_first,
    max_interactions,
    convergence_window,
    check_silence_every,
    obs,
    trace,
    stable_output,
    deadline_at=None,
):
    """Uniform-mode driver with fault injection — the textbook-semantics
    twin of :func:`_enabled_fault_loop` (see its docstring for the shared
    fault semantics).

    The geometric null-step skip-ahead is kept but *capped at the next
    fault trigger*: a pending fault is a barrier the run may not jump
    over, so a long null run is split at the barrier and the fault fires
    on schedule.  Inside an unfair window null steps do not occur at all
    — the adversary always schedules an interacting pair.
    """
    from repro.resilience.churn import adversarial_index_pick
    from repro.resilience.faults import IndexView

    states = index.table.states
    accepting = index.table.accepting
    cnt = index.cnt
    w = index.w
    active = index.active
    hot = index.hot
    kcands = tuple(key[4] for key in index.keys)
    changing = index.changing
    fix_state = index.fix_state
    rnd = rng.random
    randrange = rng.randrange

    snapshot_every = obs.snapshot_interval if obs is not None else None
    interactions = 0
    productive = 0
    stable_since = 0
    accept = sum(cnt[s] for s in range(len(states)) if accepting[s])
    m = population
    out = stable_output
    conv_at = stable_since + convergence_window if out is not None else _NEVER
    T = m * (m - 1)
    cse = check_silence_every
    view = IndexView(index)
    ticks = 0

    while interactions < max_interactions:
        if deadline_at is not None:
            ticks += 1
            if not ticks & 255 and monotonic() >= deadline_at:
                return _result(
                    index, interactions, productive, m, trace,
                    None, False, obs, deadline_exceeded=True,
                    joined=inj.joined, departed=inj.departed,
                )

        # ---- due faults ----------------------------------------------
        if interactions >= inj.next_at:
            view.accept_delta = 0
            inj.fire(interactions, view, obs)
            if view.accept_delta:
                accept += view.accept_delta
            if view.size_delta:
                m += view.size_delta
                view.size_delta = 0
                T = m * (m - 1)  # the uniform law is over the *live* m
            new_out = (
                (True if accept == m else (False if accept == 0 else None))
                if m
                else None
            )
            if new_out != out:
                out = new_out
                stable_since = productive
                conv_at = (
                    stable_since + convergence_window
                    if out is not None
                    else _NEVER
                )
                trace.append((interactions, out))
                if obs is not None:
                    obs.on_output_flip(interactions, out, LAYER_PROTOCOL)

        total = index.total
        remaining = max_interactions - interactions

        if total <= 0:
            # No matched pair at all — null steps forever unless a
            # pending fault revives the run.
            if inj.next_at <= max_interactions:
                nxt = int(inj.next_at)
                if obs is not None:
                    obs.on_batch(nxt, kind="null_skip", count=nxt - interactions)
                interactions = nxt
                continue
            next_check = interactions - interactions % cse + cse
            if next_check <= max_interactions:
                count = next_check - interactions
                interactions = next_check
                if obs is not None:
                    obs.on_batch(interactions, kind="null_skip", count=count)
                    obs.on_silence_check(interactions, True)
            else:
                if obs is not None and remaining:
                    obs.on_batch(
                        max_interactions, kind="null_skip", count=remaining
                    )
                interactions = max_interactions
            break

        # Inside an unfair or adversarial window the adversary always
        # schedules an interacting pair, so no geometric null run occurs
        # (the fairness-budget steps of an adversarial window are fairly
        # sampled *matched* steps — fairness of choice, not of pacing).
        unfair_next = (
            interactions + 1 <= inj.unfair_until
            or interactions + 1 <= inj.adv_until
        )
        if not unfair_next and total < T:
            # ---- geometric null-step skip-ahead, barrier-capped ------
            u = 1.0 - rnd()
            nulls = int(log(u) / log((T - total) / T))
            if nulls:
                span = remaining if nulls > remaining else nulls
                barrier_gap = inj.next_at - interactions  # inf-safe
                if barrier_gap < span:
                    span = int(barrier_gap)
                    interactions += span
                    if obs is not None:
                        obs.on_batch(interactions, kind="null_skip", count=span)
                    continue
                next_check = interactions - interactions % cse + cse
                if obs is not None and next_check <= interactions + span:
                    check = next_check
                    limit = interactions + span
                    while check <= limit:
                        obs.on_silence_check(check, False)
                        check += cse
                if nulls >= remaining:
                    interactions = max_interactions
                    if obs is not None:
                        obs.on_batch(
                            interactions, kind="null_skip", count=remaining
                        )
                    break
                interactions += nulls
                if obs is not None:
                    obs.on_batch(interactions, kind="null_skip", count=nulls)

        # ---- one matched step ----------------------------------------
        interactions += 1
        if interactions <= inj.unfair_until:
            best = -1
            for i2 in active:
                if changing[i2] and (best == -1 or i2 < best):
                    best = i2
            i = best if best != -1 else min(active)
            hcands = hot[i]
            j = 0
            for j2, c in enumerate(hcands):
                if c[0]:
                    j = j2
                    break
            if obs is not None:
                obs.on_scheduler_select(
                    interactions,
                    scheduler="unfair",
                    null=False,
                    candidates=1,
                    weight=total,
                )
        elif interactions <= inj.adv_until and inj.take_adversarial():
            i, j = adversarial_index_pick(index, accept, m, out)
            hcands = hot[i]
            if obs is not None:
                obs.on_scheduler_select(
                    interactions,
                    scheduler="adversarial",
                    null=False,
                    candidates=1,
                    weight=total,
                )
        else:
            if total <= _FLOAT_SAFE_TOTAL:
                x = int(rnd() * total)
                if x >= total:
                    x = total - 1
            else:
                x = randrange(total)
            acc = 0
            for i in active:
                acc += w[i]
                if acc > x:
                    break
            hcands = hot[i]
            j = 0
            if len(hcands) > 1 and not tie_first:
                j = int(rnd() * len(hcands))
            if obs is not None:
                obs.on_scheduler_select(
                    interactions,
                    scheduler="fast_uniform",
                    null=False,
                    candidates=len(hcands),
                    weight=total,
                )
        ch, ad, deltas = hcands[j]

        if inj.drop_left and inj.take_drop():
            if obs is not None:
                t = kcands[i][j][7]
                obs.on_fault(
                    interactions, "drop", LAYER_PROTOCOL, transition=repr(t)
                )
                obs.on_interaction(interactions, None, (t.q, t.r), False)
            continue

        if ch:
            productive += 1
            for s, d in deltas:
                cnt[s] += d
            for s, _d in deltas:
                fix_state(s)

        if obs is not None:
            t = kcands[i][j][7]
            obs.on_interaction(interactions, t, (t.q, t.r), bool(ch))
            if snapshot_every and interactions % snapshot_every == 0:
                obs.on_snapshot(
                    interactions, _snapshot_dict(states, cnt), LAYER_PROTOCOL
                )

        if ad:
            accept += ad
            new_out = True if accept == m else (False if accept == 0 else None)
            if new_out != out:
                out = new_out
                stable_since = productive
                conv_at = (
                    stable_since + convergence_window
                    if out is not None
                    else _NEVER
                )
                trace.append((interactions, out))
                if obs is not None:
                    obs.on_output_flip(interactions, out, LAYER_PROTOCOL)

        if ch and inj.duplicate_left and w[i] > 0 and inj.take_duplicate():
            productive += 1
            for s, d in deltas:
                cnt[s] += d
            for s, _d in deltas:
                fix_state(s)
            if obs is not None:
                t = kcands[i][j][7]
                obs.on_fault(
                    interactions, "duplicate", LAYER_PROTOCOL, transition=repr(t)
                )
            if ad:
                accept += ad
                new_out = (
                    True if accept == m else (False if accept == 0 else None)
                )
                if new_out != out:
                    out = new_out
                    stable_since = productive
                    conv_at = (
                        stable_since + convergence_window
                        if out is not None
                        else _NEVER
                    )
                    trace.append((interactions, out))
                    if obs is not None:
                        obs.on_output_flip(interactions, out, LAYER_PROTOCOL)

        if productive >= conv_at:
            return _result(
                index, interactions, productive, m, trace, out,
                False, obs, joined=inj.joined, departed=inj.departed,
            )

    silent = index.is_silent_now()
    return _result(
        index, interactions, productive, m, trace,
        out if silent else None, silent, obs,
        joined=inj.joined, departed=inj.departed,
    )


def _uniform_loop(
    index: EnabledIndex,
    *,
    population,
    rng,
    tie_first,
    max_interactions,
    convergence_window,
    check_silence_every,
    obs,
    trace,
    stable_output,
    deadline_at=None,
):
    states = index.table.states
    accepting = index.table.accepting
    cnt = index.cnt
    w = index.w
    srecs = index.srecs
    active = index.active
    activepos = index.activepos
    hot = index.hot
    kcands = tuple(key[4] for key in index.keys)
    hot1 = tuple(h[0] if len(h) == 1 else None for h in index.hot)
    changing = index.changing
    fix_state = index.fix_state
    rnd = rng.random
    randrange = rng.randrange

    snapshot_every = obs.snapshot_interval if obs is not None else None
    interactions = 0
    productive = 0
    stable_since = 0
    accept = sum(cnt[s] for s in range(len(states)) if accepting[s])
    m = population
    out = stable_output
    conv_at = stable_since + convergence_window if out is not None else _NEVER
    total = index.total
    T = m * (m - 1)
    cse = check_silence_every
    ticks = 0

    while interactions < max_interactions:
        if deadline_at is not None:
            ticks += 1
            if not ticks & 255 and monotonic() >= deadline_at:
                index.total = total
                return _result(
                    index, interactions, productive, population, trace,
                    None, False, obs, deadline_exceeded=True,
                )
        if total < T:
            # ---- geometric null-step skip-ahead ----------------------
            # P(null) = 1 − M/T; the null-run length before the next
            # matched pair is Geometric(M/T), sampled exactly by
            # inversion with u ∈ (0, 1] (so nulls = 0 has probability
            # M/T, matching the step-by-step Bernoulli process).
            remaining = max_interactions - interactions
            if total > 0:
                u = 1.0 - rnd()
                nulls = int(log(u) / log((T - total) / T))
            else:
                nulls = remaining + cse  # no matched pair exists at all
            if nulls:
                span = remaining if nulls > remaining else nulls
                next_check = interactions - interactions % cse + cse
                if next_check <= interactions + span:
                    # The null run crosses silence-check points; the
                    # configuration is frozen, so silence is constant
                    # across the whole run and one test settles it.
                    if not any(changing[j2] for j2 in active):
                        count = next_check - interactions
                        interactions = next_check
                        if obs is not None:
                            obs.on_batch(
                                interactions, kind="null_skip", count=count
                            )
                            obs.on_silence_check(interactions, True)
                        break
                    if obs is not None:
                        check = next_check
                        limit = interactions + span
                        while check <= limit:
                            obs.on_silence_check(check, False)
                            check += cse
                if nulls >= remaining:
                    interactions = max_interactions
                    if obs is not None:
                        obs.on_batch(
                            interactions, kind="null_skip", count=remaining
                        )
                    break
                interactions += nulls
                if obs is not None:
                    obs.on_batch(interactions, kind="null_skip", count=nulls)

        # ---- one matched step ----------------------------------------
        interactions += 1
        if total <= _FLOAT_SAFE_TOTAL:
            x = int(rnd() * total)
            if x >= total:
                x = total - 1
        else:
            x = randrange(total)
        acc = 0
        for i in active:
            acc += w[i]
            if acc > x:
                break
        hc = hot1[i]
        j = 0
        if hc is None:
            hcands = hot[i]
            if not tie_first:
                j = int(rnd() * len(hcands))
            hc = hcands[j]
        ch, ad, deltas = hc

        if obs is not None:
            obs.on_scheduler_select(
                interactions,
                scheduler="fast_uniform",
                null=False,
                candidates=len(hot[i]),
                weight=total,
            )

        # Uniform-mode candidates include no-ops; both no-ops and swaps
        # are changeless and leave every count untouched.  Only the keys
        # touching a state with a nonzero net delta can move, and the
        # recompute is idempotent, so a key shared by two changed states
        # is just a no-op the second time.
        if ch:
            productive += 1
            for s, d in deltas:
                cnt[s] += d
            for s, _d in deltas:
                c_s = cnt[s]
                for i2, partner, off, m_eff in srecs[s]:
                    v = c_s * (cnt[partner] - off) * m_eff
                    old = w[i2]
                    if v != old:
                        total += v - old
                        w[i2] = v
                        if not old:
                            activepos[i2] = len(active)
                            active.append(i2)
                        elif not v:
                            pos = activepos.pop(i2)
                            last = active.pop()
                            if last != i2:
                                active[pos] = last
                                activepos[last] = pos

        if obs is not None:
            t = kcands[i][j][7]
            obs.on_interaction(interactions, t, (t.q, t.r), bool(ch))
            if snapshot_every and interactions % snapshot_every == 0:
                obs.on_snapshot(
                    interactions, _snapshot_dict(states, cnt), LAYER_PROTOCOL
                )

        if ad:
            accept += ad
            new_out = True if accept == m else (False if accept == 0 else None)
            if new_out != out:
                out = new_out
                stable_since = productive
                conv_at = (
                    stable_since + convergence_window
                    if out is not None
                    else _NEVER
                )
                trace.append((interactions, out))
                if obs is not None:
                    obs.on_output_flip(interactions, out, LAYER_PROTOCOL)
        if productive >= conv_at:
            index.total = total
            return _result(
                index, interactions, productive, population, trace, out,
                False, obs,
            )

    index.total = total
    silent = not any(changing[j2] for j2 in active)
    return _result(
        index, interactions, productive, population, trace,
        out if silent else None, silent, obs,
    )
