"""Multisets over a finite set of states, with native-bignum multiplicities.

The paper (Section 3) works with multisets ``C ∈ ℕ^Q``.  Thresholds in this
reproduction reach ``2^(2^n)``, so multiplicities must be arbitrary-precision
integers; Python's native ``int`` gives us that for free.

:class:`Multiset` is a thin, explicit wrapper around a ``dict`` that

* never stores zero counts (so ``support`` and equality are canonical),
* validates non-negativity on every construction and mutation,
* offers both *pure* operators (``+``, ``-``, ``<=``) used by the semantics
  and *in-place* mutators (:meth:`inc`, :meth:`dec`) used by the hot loops
  of the schedulers and interpreters.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Iterator, Mapping, Tuple

from repro.core.errors import InvalidConfigurationError

State = Hashable


class Multiset:
    """A finite multiset ``C ∈ ℕ^Q`` with non-negative integer counts.

    >>> c = Multiset({"a": 2, "b": 1})
    >>> c["a"], c["z"]
    (2, 0)
    >>> c.size
    3
    >>> (c + Multiset({"a": 1}))["a"]
    3
    """

    __slots__ = ("_counts", "_size", "_watchers")

    def __init__(self, counts: Mapping[State, int] | Iterable[State] | None = None):
        self._counts: Dict[State, int] = {}
        self._size: int = 0
        self._watchers: list | None = None
        if counts is None:
            return
        if isinstance(counts, Mapping):
            items: Iterable[Tuple[State, int]] = counts.items()
        else:
            items = ((q, 1) for q in counts)
        for state, count in items:
            if count < 0:
                raise InvalidConfigurationError(
                    f"negative multiplicity {count} for state {state!r}"
                )
            if count:
                self._counts[state] = self._counts.get(state, 0) + count
                self._size += count

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __getitem__(self, state: State) -> int:
        return self._counts.get(state, 0)

    def count(self, states: Iterable[State]) -> int:
        """Total count ``C(S)`` over a collection of states (paper notation
        ``C(S) = Σ_{q∈S} C(q)``)."""
        return sum(self._counts.get(q, 0) for q in states)

    @property
    def size(self) -> int:
        """Total number of elements, written ``|C|`` in the paper."""
        return self._size

    def __len__(self) -> int:
        return self._size

    def support(self) -> frozenset:
        """The set of states with strictly positive count."""
        return frozenset(self._counts)

    def items(self) -> Iterator[Tuple[State, int]]:
        return iter(self._counts.items())

    def __iter__(self) -> Iterator[State]:
        return iter(self._counts)

    def __contains__(self, state: State) -> bool:
        return state in self._counts

    def is_empty(self) -> bool:
        return self._size == 0

    def to_dict(self) -> Dict[State, int]:
        """A fresh plain-dict copy of the nonzero counts."""
        return dict(self._counts)

    # ------------------------------------------------------------------
    # Pure operators (paper Section 3)
    # ------------------------------------------------------------------
    def __add__(self, other: "Multiset") -> "Multiset":
        result = dict(self._counts)
        for state, count in other._counts.items():
            result[state] = result.get(state, 0) + count
        return Multiset(result)

    def __sub__(self, other: "Multiset") -> "Multiset":
        """Componentwise difference; defined only when ``other <= self``."""
        if not other <= self:
            raise InvalidConfigurationError("multiset difference would be negative")
        result = dict(self._counts)
        for state, count in other._counts.items():
            remaining = result[state] - count
            if remaining:
                result[state] = remaining
            else:
                del result[state]
        return Multiset(result)

    def __le__(self, other: object) -> bool:
        if not isinstance(other, Multiset):
            return NotImplemented
        return all(count <= other[state] for state, count in self._counts.items())

    def __lt__(self, other: object) -> bool:
        if not isinstance(other, Multiset):
            return NotImplemented
        return self <= other and self != other

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Multiset):
            return NotImplemented
        return self._counts == other._counts

    def __hash__(self) -> int:
        return hash(frozenset(self._counts.items()))

    def scale(self, factor: int) -> "Multiset":
        """The multiset with every count multiplied by ``factor >= 0``."""
        if factor < 0:
            raise InvalidConfigurationError("cannot scale a multiset negatively")
        return Multiset({q: c * factor for q, c in self._counts.items()})

    # ------------------------------------------------------------------
    # In-place mutators (used by simulation hot loops)
    # ------------------------------------------------------------------
    def inc(self, state: State, amount: int = 1) -> None:
        """Add ``amount`` (may be negative) to ``state``'s count, in place."""
        new = self._counts.get(state, 0) + amount
        if new < 0:
            raise InvalidConfigurationError(
                f"count of {state!r} would become negative"
            )
        if new:
            self._counts[state] = new
        else:
            self._counts.pop(state, None)
        self._size += amount
        if self._watchers:
            for callback in self._watchers:
                callback(state, new)

    def dec(self, state: State, amount: int = 1) -> None:
        """Remove ``amount`` from ``state``'s count, in place."""
        self.inc(state, -amount)

    # ------------------------------------------------------------------
    # Change hooks (used by repro.core.fastpath to maintain incremental
    # indexes without rescanning the configuration)
    # ------------------------------------------------------------------
    def watch(self, callback) -> None:
        """Register ``callback(state, new_count)`` to fire after every
        :meth:`inc`/:meth:`dec`.  Watchers are intentionally excluded from
        :meth:`copy` — a copy starts unobserved."""
        if self._watchers is None:
            self._watchers = []
        self._watchers.append(callback)

    def unwatch(self, callback) -> None:
        """Remove a previously registered change callback (no-op if the
        callback is not registered)."""
        if self._watchers:
            try:
                self._watchers.remove(callback)
            except ValueError:
                return
            if not self._watchers:
                self._watchers = None

    def copy(self) -> "Multiset":
        fresh = Multiset()
        fresh._counts = dict(self._counts)
        fresh._size = self._size
        return fresh

    # ------------------------------------------------------------------
    # Pickling (used by repro.runtime to ship configurations to workers)
    # ------------------------------------------------------------------
    def __getstate__(self):
        """Pickle only the counts.  Watchers are process-local callbacks
        into live index structures (:class:`repro.core.fastpath.EnabledIndex`
        change hooks); like :meth:`copy`, a transported multiset starts
        unobserved and any index must re-:meth:`attach` on the other side."""
        return dict(self._counts)

    def __setstate__(self, counts) -> None:
        self._counts = dict(counts)
        self._size = sum(counts.values())
        self._watchers = None

    # ------------------------------------------------------------------
    # Convenience constructors / display
    # ------------------------------------------------------------------
    @classmethod
    def singleton(cls, state: State, count: int = 1) -> "Multiset":
        """The multiset containing ``count`` copies of ``state`` (the paper's
        abuse of notation identifying ``q`` with the multiset ``{q}``)."""
        return cls({state: count})

    def freeze(self) -> frozenset:
        """A hashable canonical snapshot, usable as a dict key."""
        return frozenset(self._counts.items())

    def __repr__(self) -> str:
        inner = ", ".join(
            f"{state!r}: {count}" for state, count in sorted(
                self._counts.items(), key=lambda item: repr(item[0])
            )
        )
        return f"Multiset({{{inner}}})"
