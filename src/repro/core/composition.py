"""Composing population protocols: boolean combinations of predicates.

Population-protocol-decidable predicates are closed under boolean
combinations (Angluin et al. [7]); the standard witnesses are

* **negation** — swap the accepting set: a stable consensus for φ is a
  stable consensus for ¬φ with the outputs flipped;
* **product** — run two protocols "in parallel" on paired agents: states
  ``Q₁ × Q₂``, transitions firing componentwise (one component may idle),
  and acceptance computed from the pair of opinions (∧, ∨, or any boolean
  connective on the components' outputs).

The product requires the two protocols to share the *input interface*: a
common set of input-state labels, paired as ``(i₁, i₂)`` pointwise.

These constructions multiply state counts — exactly the blow-up that
motivates the paper's study of succinctness (a conjunction of two
thresholds via products costs ``|Q₁|·|Q₂|`` states, while a specialised
construction could do far better).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

from repro.core.errors import InvalidProtocolError
from repro.core.protocol import PopulationProtocol, Transition


def negate(protocol: PopulationProtocol) -> PopulationProtocol:
    """The protocol deciding the negation of ``protocol``'s predicate."""
    return PopulationProtocol(
        states=protocol.states,
        transitions=protocol.transitions,
        input_states=protocol.input_states,
        accepting_states=protocol.states - protocol.accepting_states,
        name=f"not({protocol.name})",
    )


def _paired_inputs(
    first: PopulationProtocol,
    second: PopulationProtocol,
    input_pairs: Dict[object, Tuple[object, object]] | None,
) -> Dict[object, Tuple[object, object]]:
    if input_pairs is not None:
        for label, (i1, i2) in input_pairs.items():
            if i1 not in first.input_states or i2 not in second.input_states:
                raise InvalidProtocolError(
                    f"input pair {label!r} does not name input states"
                )
        return input_pairs
    if len(first.input_states) == 1 and len(second.input_states) == 1:
        return {
            "input": (
                next(iter(first.input_states)),
                next(iter(second.input_states)),
            )
        }
    raise InvalidProtocolError(
        "protocols with multiple input states need explicit input_pairs"
    )


def product(
    first: PopulationProtocol,
    second: PopulationProtocol,
    combine: Callable[[bool, bool], bool],
    *,
    input_pairs: Dict[object, Tuple[object, object]] | None = None,
    name: str | None = None,
) -> PopulationProtocol:
    """The product protocol deciding ``combine(φ₁, φ₂)``.

    Each agent simulates one agent of each protocol; an interaction may
    advance either component or both (the standard asynchronous product,
    which preserves fairness componentwise).  ``combine`` maps the two
    component opinions (membership in each accepting set) to the product
    opinion.
    """
    pairs = _paired_inputs(first, second, input_pairs)

    states: List[Tuple[object, object]] = [
        (q1, q2) for q1 in first.states for q2 in second.states
    ]
    transitions: List[Transition] = []
    # First component steps, second idles.
    for t in first.transitions:
        for q2 in second.states:
            for r2 in second.states:
                transitions.append(
                    Transition((t.q, q2), (t.r, r2), (t.q2, q2), (t.r2, r2))
                )
    # Second component steps, first idles.
    for t in second.transitions:
        for q1 in first.states:
            for r1 in first.states:
                transitions.append(
                    Transition((q1, t.q), (r1, t.r), (q1, t.q2), (r1, t.r2))
                )
    # Both components step (needed so neither starves the other when every
    # encounter matters; harmless otherwise).
    for t1 in first.transitions:
        for t2 in second.transitions:
            transitions.append(
                Transition(
                    (t1.q, t2.q), (t1.r, t2.r), (t1.q2, t2.q2), (t1.r2, t2.r2)
                )
            )

    accepting = [
        (q1, q2)
        for q1 in first.states
        for q2 in second.states
        if combine(q1 in first.accepting_states, q2 in second.accepting_states)
    ]
    return PopulationProtocol(
        states=states,
        transitions=transitions,
        input_states=[pair for pair in pairs.values()],
        accepting_states=accepting,
        name=name or f"product({first.name}, {second.name})",
    )


def conjunction(
    first: PopulationProtocol,
    second: PopulationProtocol,
    **kwargs,
) -> PopulationProtocol:
    """Decides ``φ₁ ∧ φ₂``."""
    kwargs.setdefault("name", f"and({first.name}, {second.name})")
    return product(first, second, lambda a, b: a and b, **kwargs)


def disjunction(
    first: PopulationProtocol,
    second: PopulationProtocol,
    **kwargs,
) -> PopulationProtocol:
    """Decides ``φ₁ ∨ φ₂``."""
    kwargs.setdefault("name", f"or({first.name}, {second.name})")
    return product(first, second, lambda a, b: a or b, **kwargs)


def interval_protocol(lo: int, hi: int) -> PopulationProtocol:
    """``lo ≤ x < hi`` as a product of two (binary) threshold protocols —
    the protocol-level counterpart of Figure 1's program."""
    from repro.baselines.binary import binary_threshold_protocol

    if not 0 < lo < hi:
        raise InvalidProtocolError("need 0 < lo < hi")
    at_least_lo = binary_threshold_protocol(lo)
    below_hi = negate(binary_threshold_protocol(hi))
    return conjunction(
        at_least_lo, below_hi, name=f"interval({lo} <= x < {hi})"
    )
