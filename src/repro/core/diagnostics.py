"""Diagnostic records shared by every static checker.

The static verification layer (:mod:`repro.analysis.statics`, the program
validator, and :mod:`repro.lint`) reports findings as uniform
:class:`Diagnostic` records instead of raising on the first problem: a
checker runs to completion, the caller decides what severity is fatal.
This module lives in :mod:`repro.core` — below programs/machines/analysis
in the layering — so every producer can import it without cycles.

A diagnostic has

* a **code** — stable, grep-able identifier (``PRG003``, ``PROT001``,
  ``MCH002``, ``LNT004``, …; the full table lives in DESIGN.md §12),
* a **severity** — ``error`` (the artifact is broken or an engine
  invariant failed), ``warning`` (almost certainly unintended: dead code,
  unwritten registers) or ``info`` (structural facts worth surfacing:
  inert states, swap components),
* a **location** — target name plus a free-form path within it
  (``"Main/stmt[2]"``, ``"transition (a, b -> c, d)"``, ``"pool.py:61"``),
* a **message**, and optional structured ``data`` (JSON-safe).

Everything is JSON-serialisable (:meth:`Diagnostic.to_dict` /
:func:`diagnostics_to_json`) so check results can be cached by content
fingerprint, attached to provenance manifests, and emitted by
``python -m repro check --json``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

#: Severity names in escalation order; index = rank.
SEVERITIES: Tuple[str, ...] = ("info", "warning", "error")

ERROR = "error"
WARNING = "warning"
INFO = "info"


def severity_rank(severity: str) -> int:
    """Rank of a severity for threshold comparisons (unknown → error)."""
    try:
        return SEVERITIES.index(severity)
    except ValueError:
        return len(SEVERITIES) - 1


@dataclass(frozen=True)
class Diagnostic:
    """One finding of a static checker."""

    code: str
    severity: str
    message: str
    #: What was checked (protocol/program/machine/file name).
    target: str = ""
    #: Where inside the target (procedure/statement path, transition
    #: repr, instruction address, ``file:line``).
    location: str = ""
    #: Optional structured payload (must stay JSON-safe).
    data: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.severity not in SEVERITIES:
            raise ValueError(f"unknown severity {self.severity!r}")

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "code": self.code,
            "severity": self.severity,
            "message": self.message,
        }
        if self.target:
            out["target"] = self.target
        if self.location:
            out["location"] = self.location
        if self.data:
            out["data"] = dict(self.data)
        return out

    @classmethod
    def from_dict(cls, raw: Mapping[str, Any]) -> "Diagnostic":
        return cls(
            code=raw["code"],
            severity=raw["severity"],
            message=raw["message"],
            target=raw.get("target", ""),
            location=raw.get("location", ""),
            data=dict(raw.get("data", {})),
        )

    def render(self) -> str:
        """One human-readable line: ``severity CODE target:location message``."""
        where = ":".join(part for part in (self.target, self.location) if part)
        prefix = f"{self.severity:<7} {self.code}"
        return f"{prefix} {where}: {self.message}" if where else f"{prefix} {self.message}"


def max_severity(diagnostics: Iterable[Diagnostic]) -> Optional[str]:
    """The highest severity present, or ``None`` for a clean result."""
    best: Optional[int] = None
    for diag in diagnostics:
        rank = severity_rank(diag.severity)
        if best is None or rank > best:
            best = rank
    return None if best is None else SEVERITIES[best]


def count_by_severity(diagnostics: Iterable[Diagnostic]) -> Dict[str, int]:
    """``{"error": n, "warning": m, "info": k}`` — always all three keys,
    so manifests and JSON output have a stable shape."""
    counts = {severity: 0 for severity in SEVERITIES}
    for diag in diagnostics:
        counts[diag.severity] += 1
    return counts


def at_or_above(
    diagnostics: Iterable[Diagnostic], severity: str
) -> List[Diagnostic]:
    """The findings at or above a severity threshold."""
    floor = severity_rank(severity)
    return [d for d in diagnostics if severity_rank(d.severity) >= floor]


def diagnostics_to_json(diagnostics: Sequence[Diagnostic], **extra: Any) -> str:
    """A deterministic JSON document for a batch of findings."""
    payload: Dict[str, Any] = {
        "diagnostics": [d.to_dict() for d in diagnostics],
        "summary": count_by_severity(diagnostics),
        **extra,
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def render_diagnostics(
    diagnostics: Sequence[Diagnostic], *, limit: Optional[int] = None
) -> str:
    """Render findings one per line, errors first, optionally truncated."""
    ordered = sorted(
        diagnostics, key=lambda d: (-severity_rank(d.severity), d.code, d.target)
    )
    shown = ordered if limit is None else ordered[:limit]
    lines = [d.render() for d in shown]
    if limit is not None and len(ordered) > limit:
        lines.append(f"... and {len(ordered) - limit} more finding(s)")
    return "\n".join(lines)


class DiagnosticError(Exception):
    """Raised by ``raise_on_error`` wrappers; carries the findings."""

    def __init__(self, diagnostics: Sequence[Diagnostic]):
        self.diagnostics = list(diagnostics)
        super().__init__(render_diagnostics(self.diagnostics, limit=10))
