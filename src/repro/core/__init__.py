"""Core population-protocol model (Section 3 of the paper).

Exports the multiset/configuration type, the protocol model, schedulers,
the simulation driver, the exact stable-computation checker and the
predicate encodings.
"""

from repro.core.errors import (
    ExecutionLimitExceeded,
    InvalidConfigurationError,
    InvalidMachineError,
    InvalidProgramError,
    InvalidProtocolError,
    NonConvergenceError,
    ReproError,
)
from repro.core.composition import (
    conjunction,
    disjunction,
    interval_protocol,
    negate,
    product,
)
from repro.core.batched import BatchedScheduler, DenseConfig, numpy_available
from repro.core.fastpath import (
    EnabledIndex,
    FastEnabledScheduler,
    FastUniformScheduler,
)
from repro.core.multiset import Multiset
from repro.core.predicates import (
    Equality,
    Interval,
    Majority,
    Predicate,
    Remainder,
    ShiftedThreshold,
    Threshold,
    binary_length,
)
from repro.core.protocol import PopulationProtocol, Transition
from repro.core.scheduler import (
    EnabledTransitionScheduler,
    SchedulerStep,
    UniformPairScheduler,
)
from repro.core.semantics import (
    apply_transition,
    configuration_graph,
    enabled_transitions,
    is_silent,
    reachable_configurations,
    successors,
    transition_enabled,
)
from repro.core.simulation import (
    SimulationResult,
    decide,
    derive_seed,
    engine_label,
    resolve_engine,
    scheduler_for_engine,
    simulate,
)
from repro.core.stability import (
    initial_configurations,
    stabilisation_verdict,
    strongly_connected_components,
    terminal_sccs,
    verify_decides,
)

__all__ = [
    "ReproError",
    "InvalidProtocolError",
    "InvalidConfigurationError",
    "InvalidProgramError",
    "InvalidMachineError",
    "ExecutionLimitExceeded",
    "NonConvergenceError",
    "Multiset",
    "negate",
    "product",
    "conjunction",
    "disjunction",
    "interval_protocol",
    "PopulationProtocol",
    "Transition",
    "UniformPairScheduler",
    "EnabledTransitionScheduler",
    "FastEnabledScheduler",
    "FastUniformScheduler",
    "BatchedScheduler",
    "DenseConfig",
    "numpy_available",
    "EnabledIndex",
    "SchedulerStep",
    "simulate",
    "decide",
    "derive_seed",
    "engine_label",
    "resolve_engine",
    "scheduler_for_engine",
    "SimulationResult",
    "stabilisation_verdict",
    "verify_decides",
    "initial_configurations",
    "terminal_sccs",
    "strongly_connected_components",
    "transition_enabled",
    "enabled_transitions",
    "apply_transition",
    "successors",
    "reachable_configurations",
    "configuration_graph",
    "is_silent",
    "Predicate",
    "Threshold",
    "Equality",
    "Interval",
    "Remainder",
    "Majority",
    "ShiftedThreshold",
    "binary_length",
]
