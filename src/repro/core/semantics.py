"""Step relation and reachability for population protocols (Section 3).

For configurations ``C, C'`` the paper defines ``C → C'`` iff ``C = C'`` or
there is a transition ``(q, r ↦ q', r') ∈ δ`` with ``C ≥ q + r`` and
``C' = C − q − r + q' + r'``.  This module provides

* :func:`enabled_transitions` — the transitions applicable in ``C``,
* :func:`apply_transition` — one step of the relation (pure),
* :func:`successors` — all distinct one-step successors (for exhaustive
  exploration),
* :func:`reachable_configurations` — BFS over the (finite, since the number
  of agents is invariant) configuration graph.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, FrozenSet, Iterable, Iterator, List, Set, Tuple

from repro.core.errors import InvalidConfigurationError
from repro.core.multiset import Multiset
from repro.core.protocol import PopulationProtocol, Transition


def transition_enabled(config: Multiset, transition: Transition) -> bool:
    """Whether ``config`` contains two (distinct) agents matching the
    transition's ordered precondition."""
    q, r = transition.q, transition.r
    if q == r:
        return config[q] >= 2
    return config[q] >= 1 and config[r] >= 1


def enabled_transitions(
    protocol: PopulationProtocol, config: Multiset
) -> List[Transition]:
    """All transitions of ``protocol`` enabled in ``config``.

    Iterates over ordered pairs of *occupied* states, so the cost is
    ``O(support²)`` rather than ``O(|δ|)`` for sparse configurations.
    """
    support = list(config.support())
    result: List[Transition] = []
    for q in support:
        for r in support:
            for t in protocol.transitions_from(q, r):
                if transition_enabled(config, t):
                    result.append(t)
    return result


def apply_transition(config: Multiset, transition: Transition) -> Multiset:
    """The configuration after executing ``transition`` in ``config``."""
    if not transition_enabled(config, transition):
        raise InvalidConfigurationError(
            f"transition {transition} is not enabled in {config}"
        )
    result = config.copy()
    result.dec(transition.q)
    result.dec(transition.r)
    result.inc(transition.q2)
    result.inc(transition.r2)
    return result


def apply_transition_inplace(config: Multiset, transition: Transition) -> None:
    """Execute ``transition`` on ``config`` in place (hot-loop variant).

    The caller is responsible for having checked enabledness; the multiset
    itself still raises if a count would go negative.
    """
    config.dec(transition.q)
    config.dec(transition.r)
    config.inc(transition.q2)
    config.inc(transition.r2)


def successors(
    protocol: PopulationProtocol, config: Multiset
) -> Iterator[Tuple[Transition, Multiset]]:
    """All distinct ``(transition, successor)`` pairs with a real change."""
    seen: Set[frozenset] = set()
    for t in enabled_transitions(protocol, config):
        if t.is_noop():
            continue
        nxt = apply_transition(config, t)
        key = nxt.freeze()
        if key != config.freeze() and key not in seen:
            seen.add(key)
            yield t, nxt


def reachable_configurations(
    protocol: PopulationProtocol,
    initial: Multiset | Iterable[Multiset],
    max_configurations: int | None = None,
) -> Dict[frozenset, Multiset]:
    """BFS of the configuration graph from one or more configurations.

    Returns a map from frozen snapshots to configurations.  Since agents are
    conserved, the graph is finite; ``max_configurations`` guards against
    accidental blow-ups and raises when exceeded.
    """
    if isinstance(initial, Multiset):
        frontier = deque([initial])
    else:
        frontier = deque(initial)
    seen: Dict[frozenset, Multiset] = {c.freeze(): c for c in frontier}
    while frontier:
        config = frontier.popleft()
        for _t, nxt in successors(protocol, config):
            key = nxt.freeze()
            if key not in seen:
                if max_configurations is not None and len(seen) >= max_configurations:
                    raise InvalidConfigurationError(
                        f"reachability exceeded {max_configurations} configurations"
                    )
                seen[key] = nxt
                frontier.append(nxt)
    return seen


def configuration_graph(
    protocol: PopulationProtocol,
    initial: Multiset | Iterable[Multiset],
    max_configurations: int | None = None,
) -> Tuple[Dict[frozenset, Multiset], Dict[frozenset, FrozenSet[frozenset]]]:
    """The reachable configuration graph as ``(nodes, edges)``.

    ``edges[c]`` is the frozenset of snapshots reachable from ``c`` in one
    *proper* step (i.e. excluding the reflexive steps the paper adds to make
    the relation left-total).
    """
    nodes = reachable_configurations(protocol, initial, max_configurations)
    edges: Dict[frozenset, FrozenSet[frozenset]] = {}
    for key, config in nodes.items():
        edges[key] = frozenset(nxt.freeze() for _t, nxt in successors(protocol, config))
    return nodes, edges


def is_silent(protocol: PopulationProtocol, config: Multiset) -> bool:
    """Whether no enabled transition changes ``config`` (a *silent* or
    terminal configuration)."""
    return next(successors(protocol, config), None) is None
