"""Batched multinomial simulation engine: bulk interactions for huge n.

The fast path of :mod:`repro.core.fastpath` executes one interaction at a
time (plus geometric null-run skip-ahead).  That caps practical runs
around ``n ≈ 10^5`` agents — far below the regime the paper's
double-exponential thresholds are about, where the population is
astronomically larger than the reachable state set.  This module adopts
the ppsim batching algorithm (Berenbrink, Hammer, Kaaser, Meyer,
Penschuck, Tran — arXiv:2005.03584): instead of stepping agents, sample
how an entire *batch* of interactions decomposes over ordered state
pairs, and apply the whole batch as one set of count deltas.

The batch law, exactly
----------------------

Run the textbook uniform-pair scheduler and mark the first interaction in
which an agent participates for the *second* time (the "collision").  The
number ``L`` of interactions strictly before the collision satisfies::

    P(L >= l) = n! / (n - 2l)!  /  (n(n-1))^l          (l >= 1)

because the first ``l`` interactions involve ``2l`` distinct agents.
Conditioned on ``L = l``, those ``2l`` agents are a uniform ordered
sample without replacement from the population, so the initiator/responder
*state* counts of the batch follow nested multivariate hypergeometrics of
the configuration, and pairing is a uniform random matching between them.
Agents are exchangeable and the process is Markov in the configuration,
so after applying the batch (and the one collision interaction, which
reuses exactly one of the ``2l`` touched agents) the engine simply starts
a fresh batch.  Every distributional statement above is exact — the
batched engine samples the *same* law over configuration trajectories as
the per-step uniform scheduler, only aggregated.

Three details worth pinning down:

* **Null interactions consume agents.**  The batch decomposition is by
  agent identity, not by whether a transition exists for a state pair, so
  pairs with no transition still occupy their two slots in the batch (and
  still count as interactions, matching the uniform model).
* **Budget truncation is exact.**  If the sampled ``L`` meets or exceeds
  the remaining interaction budget ``r``, the first ``r`` interactions of
  the batch are ``r`` all-distinct pairs — conditioned on ``L >= r`` they
  are exchangeable — so the engine applies exactly ``r`` of them and
  stops, with no collision step.
* **Bulk application cannot go negative.**  A batch consumes at most the
  sampled initiator+responder counts, which are drawn without replacement
  from the configuration, so intermediate orderings never matter:
  ``DenseConfig`` applies the net deltas in one pass.

Engine selection and fidelity
-----------------------------

:class:`BatchedScheduler` joins the ``Fast*``/legacy scheduler families;
``simulate(..., engine="batched")`` (or ``REPRO_ENGINE=batched``) selects
it.  Per-step engines remain the bit-exact reference: the batched engine
is *distribution*-equivalent (pinned by chi-square tests in
``tests/core/test_batched.py``), not stream-identical.  Output tracking
is batch-granular: the accepting-agent count is updated per batch, so an
output flip that both appears and disappears strictly inside one batch is
not observed — the same character of heuristic as the convergence window
itself.  Silence, by contrast, stays exact and is checked every batch.

numpy is optional (the ``repro[batch]`` extra).  With it, batches are
sampled via ``Generator.multivariate_hypergeometric`` and paired with a
single permutation; without it (or with ``REPRO_NO_NUMPY=1``) a pure
stdlib sampler draws the ``2l`` agents sequentially — same law, lower
throughput.  Both backends layer on the run's ``random.Random`` stream:
the Python rng drives batch lengths and collision draws, and the numpy
generator (when present) is seeded once per run from that stream, so
runs are deterministic per (seed, backend).
"""

from __future__ import annotations

import os
from math import lgamma, log
from time import monotonic
from typing import Dict, List, Optional

from repro.core.errors import InvalidConfigurationError, NonConvergenceError
from repro.core.fastpath import _FLOAT_SAFE_TOTAL, _NEVER, get_table
from repro.core.multiset import Multiset
from repro.core.protocol import PopulationProtocol
from repro.core.scheduler import UniformPairScheduler
from repro.observability import events as ev
from repro.observability.events import LAYER_PROTOCOL

_np = None
_np_checked = False


def _numpy():
    """Import numpy on first use (so ``import repro.core`` stays cheap and
    dependency-free); returns the module or ``None``."""
    global _np, _np_checked
    if not _np_checked:
        _np_checked = True
        try:  # pragma: no cover - exercised via both CI environments
            import numpy

            _np = numpy
        except ImportError:  # pragma: no cover
            _np = None
    return _np


def numpy_available() -> bool:
    """True when the numpy acceleration path is importable *and* not
    disabled via ``REPRO_NO_NUMPY`` (any non-empty value).  Checked per
    run, so tests can pin the pure fallback with ``monkeypatch.setenv``."""
    return _numpy() is not None and not os.environ.get("REPRO_NO_NUMPY")


class BatchedScheduler(UniformPairScheduler):
    """Scheduler marker selecting the batched multinomial engine.

    Semantics are those of :class:`UniformPairScheduler` (null steps
    counted, parallel time unchanged) executed in bulk;
    ``tie_break`` keeps its meaning for multi-candidate pairs.  The
    inherited per-step ``select`` remains as a fallback for ``n < 2``
    populations.  Population-only fault plans (joins/leaves, including
    expanded :class:`~repro.resilience.churn.ChurnProcess` schedules) run
    batched natively — the next trigger is a batch barrier and the
    population resizes strictly *between* batches; plans with any
    per-interaction kind (drops, duplicates, corruption, unfair or
    adversarial windows) still degrade to the per-step fast uniform loop,
    which materialises the granularity they need.
    """


# ----------------------------------------------------------------------
# Dense configuration
# ----------------------------------------------------------------------
class DenseConfig(Multiset):
    """Array-backed configuration over a fixed state universe.

    Behaves exactly like :class:`Multiset` (same equality, iteration,
    watchers, pickling) but additionally maintains ``cnt`` — a dense
    integer vector indexed by ``sid[state]`` — so the batched engine can
    read counts and apply whole batches of deltas without hashing states.
    The universe is fixed at construction: mutating a state outside it is
    an :class:`InvalidConfigurationError` (a plain ``Multiset`` would
    silently grow).
    """

    __slots__ = ("states", "sid", "cnt")

    def __init__(self, states, counts=None):
        self.states = tuple(states)
        self.sid: Dict[object, int] = {s: i for i, s in enumerate(self.states)}
        if len(self.sid) != len(self.states):
            raise InvalidConfigurationError("duplicate states in universe")
        super().__init__(counts)
        self.cnt: List[int] = [0] * len(self.states)
        for state, count in self._counts.items():
            idx = self.sid.get(state)
            if idx is None:
                raise InvalidConfigurationError(
                    f"state {state!r} is not in this DenseConfig's universe"
                )
            self.cnt[idx] = count

    def inc(self, state, amount: int = 1) -> None:
        idx = self.sid.get(state)
        if idx is None:
            raise InvalidConfigurationError(
                f"state {state!r} is not in this DenseConfig's universe"
            )
        super().inc(state, amount)  # validates non-negativity first
        self.cnt[idx] += amount

    def apply_sid_deltas(self, deltas) -> None:
        """Apply ``(state_id, delta)`` pairs as one bulk update.

        Each touched state's watchers fire once with its final count —
        the contract bulk mutation adds over per-step ``inc`` calls.
        Raises (before mutating anything) if any count would go negative.
        """
        counts = self._counts
        cnt = self.cnt
        states = self.states
        for idx, delta in deltas:
            if cnt[idx] + delta < 0:
                raise InvalidConfigurationError(
                    f"count of {states[idx]!r} would become negative"
                )
        for idx, delta in deltas:
            if not delta:
                continue
            state = states[idx]
            new = cnt[idx] + delta
            cnt[idx] = new
            if new:
                counts[state] = new
            else:
                counts.pop(state, None)
            self._size += delta
            if self._watchers:
                for callback in self._watchers:
                    callback(state, new)

    def apply_deltas(self, deltas: Dict[object, int]) -> None:
        """State-keyed convenience wrapper over :meth:`apply_sid_deltas`."""
        sid = self.sid
        try:
            pairs = [(sid[state], delta) for state, delta in deltas.items()]
        except KeyError as exc:
            raise InvalidConfigurationError(
                f"state {exc.args[0]!r} is not in this DenseConfig's universe"
            ) from None
        self.apply_sid_deltas(pairs)

    def copy(self) -> "DenseConfig":
        fresh = DenseConfig.__new__(DenseConfig)
        fresh.states = self.states
        fresh.sid = self.sid
        fresh.cnt = list(self.cnt)
        fresh._counts = dict(self._counts)
        fresh._size = self._size
        fresh._watchers = None
        return fresh

    def __getstate__(self):
        return {"states": self.states, "counts": dict(self._counts)}

    def __setstate__(self, state):
        self.__init__(state["states"], state["counts"])

    def __reduce__(self):
        return (DenseConfig, (self.states, dict(self._counts)))


# ----------------------------------------------------------------------
# Batch samplers
# ----------------------------------------------------------------------
class _SamplerBase:
    """Shared draws that always come from the Python ``random.Random``
    stream, so switching the pairing backend only reorders *backend*
    randomness, never the batch-length/collision stream."""

    def __init__(self, rng, n_states: int, population: int):
        self.rng = rng
        self.S = n_states
        self.set_population(population)

    def set_population(self, m: int) -> None:
        """(Re-)derive the cached batch-length constants for population
        ``m`` — called at construction and whenever churn resizes the
        population between batches.  ``m < 2`` raises a clean
        :class:`~repro.core.errors.NonConvergenceError` (the batch law
        divides by ``m(m-1)``): the driver routes such populations
        through its no-pair handling instead of sampling."""
        if m < 2:
            raise NonConvergenceError(
                f"batched sampling needs a population of at least 2 "
                f"agents, got {m}: no interaction pair exists"
            )
        self.m = m
        if m <= _FLOAT_SAFE_TOTAL:
            # Constants of log P(L >= l); see module docstring.
            self._lgn1 = lgamma(m + 1)
            self._lognn = log(m) + log(m - 1)
        else:  # astronomically large n: collisions are unobservable
            self._lgn1 = None
            self._lognn = None

    # -- batch length --------------------------------------------------
    def batch_length(self) -> int:
        """One draw of ``L`` by inverse transform over the exact tail
        ``P(L >= l)``, via binary search on its (decreasing) logarithm.
        ``L >= 1`` always; the cost is ~``log2(n/2)`` lgamma pairs."""
        m = self.m
        if m < 2:
            raise NonConvergenceError(
                f"batch-length inversion is undefined for population {m}: "
                f"no interaction pair exists"
            )
        if self._lgn1 is None:
            # P(L >= l) ~ 1 for every l within any realistic budget; the
            # caller's budget-truncation rule does the rest, exactly.
            return m // 2
        u = 1.0 - self.rng.random()  # (0, 1]
        logu = log(u)
        lgn1 = self._lgn1
        lognn = self._lognn
        hi = m // 2
        if lgn1 - lgamma(m - 2 * hi + 1) - hi * lognn >= logu:
            return hi
        lo = 1
        while lo < hi:
            mid = (lo + hi + 1) // 2
            if lgn1 - lgamma(m - 2 * mid + 1) - mid * lognn >= logu:
                lo = mid
            else:
                hi = mid - 1
        return lo

    # -- small weighted draws (collision step, pure sampler) -----------
    def _randbelow(self, total: int) -> int:
        if total <= _FLOAT_SAFE_TOTAL:
            x = int(self.rng.random() * total)
            return total - 1 if x >= total else x
        return self.rng.randrange(total)

    def _draw_state(self, vec, total: int) -> int:
        """One state id weighted by the count vector ``vec`` (sum = total)."""
        x = self._randbelow(total)
        acc = 0
        for s, c in enumerate(vec):
            if c:
                acc += c
                if acc > x:
                    return s
        raise AssertionError("weighted draw overran its total")

    def sample_collision(self, upost, fresh, used: int, untouched: int):
        """The collision interaction's ordered state pair.

        The initiator/responder are a uniform ordered agent pair among
        ``(used, used)``, ``(used, fresh)`` and ``(fresh, used)`` —
        weights ``u(u-1)``, ``u·f``, ``f·u`` — i.e. every ordered pair
        except two untouched agents (that would extend the batch).
        ``upost`` holds the post-batch states of the ``used`` agents.
        """
        u, f = used, untouched
        uu = u * (u - 1)
        uf = u * f
        x = self._randbelow(uu + 2 * uf)
        if x < uu:
            a = self._draw_state(upost, u)
            upost[a] -= 1
            b = self._draw_state(upost, u - 1)
            upost[a] += 1
        elif x < uu + uf:
            a = self._draw_state(upost, u)
            b = self._draw_state(fresh, f)
        else:
            a = self._draw_state(fresh, f)
            b = self._draw_state(upost, u)
        return a, b


class _PureSampler(_SamplerBase):
    """Stdlib-only batch sampler: the ``2l`` batch agents are drawn
    sequentially without replacement, pair by pair.  Same law as the
    numpy path, linear in ``l·|support|`` instead of vectorised."""

    backend = "pure"

    def sample_pairs(self, cnt, length: int):
        """Returns ``(pairs, fresh)``: ``pairs`` maps the encoded ordered
        state pair ``a*S + b`` to its interaction count; ``fresh`` is the
        count vector of agents not touched by the batch."""
        S = self.S
        avail = list(cnt)
        rem = self.m
        pairs: Dict[int, int] = {}
        support = [s for s in range(S) if avail[s]]
        rng_random = self.rng.random
        randrange = self.rng.randrange
        float_safe = _FLOAT_SAFE_TOTAL
        for _ in range(length):
            code = 0
            for _side in (0, 1):
                if rem <= float_safe:
                    x = int(rng_random() * rem)
                    if x >= rem:
                        x = rem - 1
                else:
                    x = randrange(rem)
                acc = 0
                for s in support:
                    acc += avail[s]
                    if acc > x:
                        break
                avail[s] -= 1
                rem -= 1
                code = code * S + s
            pairs[code] = pairs.get(code, 0) + 1
        return list(pairs.items()), avail

    def split(self, k: int, ncands: int):
        """Uniform multinomial split of ``k`` tied interactions over
        ``ncands`` candidates."""
        out = [0] * ncands
        rng_random = self.rng.random
        for _ in range(k):
            out[int(rng_random() * ncands)] += 1
        return out


class _NumpySampler(_SamplerBase):
    """numpy batch sampler.

    Initiator counts ``I ~ MVH(C, l)`` and responder counts
    ``R ~ MVH(C - I, l)`` are nested multivariate hypergeometrics over
    the *occupied* states; pairing the two sides is a uniform random
    matching, realised by permuting the responder sequence once and
    bucketing the encoded ``(initiator, responder)`` codes.
    """

    backend = "numpy"

    def __init__(self, rng, n_states: int, population: int):
        super().__init__(rng, n_states, population)
        # One Python-stream draw seeds the backend generator, keeping the
        # run a pure function of (seed, backend).
        self.np_rng = _np.random.default_rng(rng.getrandbits(64))

    def sample_pairs(self, cnt, length: int):
        np_rng = self.np_rng
        colors_full = _np.asarray(cnt, dtype=_np.int64)
        occ = _np.nonzero(colors_full)[0]
        colors = colors_full[occ]
        initiators = np_rng.multivariate_hypergeometric(colors, length)
        responders = np_rng.multivariate_hypergeometric(
            colors - initiators, length
        )
        init_seq = _np.repeat(occ, initiators)
        resp_seq = np_rng.permutation(_np.repeat(occ, responders))
        codes = init_seq * self.S + resp_seq
        uniq, counts = _np.unique(codes, return_counts=True)
        fresh = [0] * self.S
        fresh_occ = (colors - initiators - responders).tolist()
        for pos, s in enumerate(occ.tolist()):
            fresh[s] = fresh_occ[pos]
        return list(zip(uniq.tolist(), counts.tolist())), fresh

    def split(self, k: int, ncands: int):
        return self.np_rng.multinomial(
            k, [1.0 / ncands] * ncands
        ).tolist()


# ----------------------------------------------------------------------
# Vectorised batch application (numpy backend, unobserved runs)
# ----------------------------------------------------------------------
class _VecTables:
    """Per-run dense tables turning a batch's ``(code, count)`` chunks
    into array arithmetic: row ``i`` of ``deltas``/``upost`` holds the
    net configuration deltas and post-state increments of *candidate 0*
    of uniform key ``i``.  Only single-candidate keys (or any key under
    ``tie_break="first"``) take this path; multi-candidate keys and
    transitionless pairs fall back to the scalar loop, as do observed
    runs (event emission is per chunk anyway)."""

    def __init__(self, table, tie_first: bool):
        S = len(table.states)
        keys = table.uniform.keys
        nk = len(keys)
        self.code2key = _np.full(S * S, -1, dtype=_np.int64)
        self.ncand = _np.zeros(nk, dtype=_np.int64)
        self.deltas = _np.zeros((nk, S), dtype=_np.int64)
        self.upost = _np.zeros((nk, S), dtype=_np.int64)
        self.changes = _np.zeros(nk, dtype=_np.int64)
        self.accept_delta = _np.zeros(nk, dtype=_np.int64)
        for i, (a, b, _off, _mult, cands) in enumerate(keys):
            self.code2key[a * S + b] = i
            self.ncand[i] = 1 if tie_first else len(cands)
            _q, _r, q2, r2, ch, ad, deltas, _t = cands[0]
            self.upost[i, q2] += 1
            self.upost[i, r2] += 1
            for s, d in deltas:
                self.deltas[i, s] = d
            self.changes[i] = 1 if ch else 0
            self.accept_delta[i] = ad


#: Above this ``keys × states`` product the dense vectorised tables cost
#: more memory than they are worth; the scalar chunk loop handles it.
_VEC_TABLE_LIMIT = 8_000_000


# ----------------------------------------------------------------------
# Driver
# ----------------------------------------------------------------------
def _per_interaction_recorders(obs):
    """TraceRecorders in the observer tree that would record
    per-interaction events — the granularity a batched run never emits."""
    from repro.observability.observer import CompositeObserver
    from repro.observability.trace import TraceRecorder

    found = []

    def walk(node):
        if node is None:
            return
        if isinstance(node, CompositeObserver):
            for child in node.observers:
                walk(child)
            return
        if isinstance(node, TraceRecorder):
            if node.kinds is None or ev.INTERACTION in node.kinds:
                found.append(node)

    walk(obs)
    return found


def run_batched_simulation(
    protocol: PopulationProtocol,
    current: Multiset,
    *,
    population: int,
    rng,
    scheduler: BatchedScheduler,
    max_interactions: int,
    convergence_window: int,
    check_silence_every: int,  # accepted for signature parity; silence is per batch
    obs,
    trace,
    stable_output: Optional[bool],
    injector=None,
    deadline_at=None,
):
    """Drop-in driver used by :func:`repro.core.simulate` for
    :class:`BatchedScheduler` — same contract as
    :func:`repro.core.fastpath.run_fast_simulation`, batch-granular
    events (``on_batch`` with kinds ``"multinomial"``/``"collision"``),
    and exact silence checked every batch.

    ``injector`` must carry a *population-only* plan (joins/leaves; the
    caller checks ``injector.population_only()``).  Triggers are batch
    barriers: a batch is truncated at the next trigger exactly like at
    the interaction budget — conditioned on ``L >= r`` the first ``r``
    interactions are ``r`` exchangeable all-distinct pairs, and the
    process is Markov in the configuration, so restarting the batch
    schedule at the barrier samples the same law (the module docstring's
    budget-truncation argument, verbatim).  The population therefore
    changes between batches, never mid-batch, and the sampler's cached
    inversion constants are re-derived via ``set_population``."""
    del check_silence_every  # silence is exact and per-batch here
    from repro.core.simulation import SimulationResult  # late: avoids cycle

    table = get_table(protocol)
    states = table.states
    S = len(states)
    dense = DenseConfig(states, current.to_dict())
    cnt = dense.cnt
    accepting = table.accepting
    tie_first = scheduler.tie_break == "first"

    # Ordered-pair candidate map over the *uniform* mode table (it keys
    # every matched pair, no-ops included — exactly a batch's universe).
    pair_cands: Dict[int, tuple] = {}
    for a, b, _off, _mult, cands in table.uniform.keys:
        pair_cands[a * S + b] = cands
    # Exact silence predicate: silent iff no configuration-changing key
    # has positive ordered-pair weight.  Two equivalent ways to decide
    # that, picked per check by whichever scans less: all changing keys
    # (early-exits fast on dense configurations), or all ordered pairs of
    # *occupied* states against a code set (fast when few states are
    # occupied — e.g. small populations under a protocol with hundreds of
    # thousands of transitions, where the key scan is ruinous per batch).
    changing_keys = [
        (key[0], key[1], key[2])
        for key, ch in zip(table.enabled.keys, table.enabled.changing)
        if ch
    ]
    changing_codes = frozenset(a * S + b for a, b, _off in changing_keys)

    use_numpy = numpy_available() and population <= (1 << 62)
    sampler_cls = _NumpySampler if use_numpy else _PureSampler
    sampler = sampler_cls(rng, S, population)
    vec = None
    if use_numpy and len(table.uniform.keys) * S <= _VEC_TABLE_LIMIT:
        vec = _VecTables(table, tie_first)

    if obs is not None:
        for recorder in _per_interaction_recorders(obs):
            recorder.record(
                ev.TRUNCATED,
                0,
                layer=LAYER_PROTOCOL,
                reason=(
                    "batched engine emits batch-granularity events only; "
                    "per-interaction events are not recorded"
                ),
                engine="batched",
            )

    snapshot_every = obs.snapshot_interval if obs is not None else None
    next_snapshot = snapshot_every if snapshot_every else None
    interactions = 0
    productive = 0
    stable_since = 0
    accept = sum(cnt[s] for s in range(S) if accepting[s])
    m = population
    out = stable_output
    conv_at = stable_since + convergence_window if out is not None else _NEVER
    batches = 0
    collisions = 0
    inj = injector
    view = None
    if inj is not None:
        from repro.resilience.faults import DenseView

        view = DenseView(dense, accepting)

    def finish(verdict, silent, deadline_exceeded=False):
        joined = inj.joined if inj is not None else 0
        departed = inj.departed if inj is not None else 0
        if obs is not None:
            obs.on_run_end(
                interactions,
                LAYER_PROTOCOL,
                verdict=verdict,
                silent=silent,
                interactions=interactions,
                productive=productive,
                population=m,
                deadline_exceeded=deadline_exceeded,
                engine="batched",
                batches=batches,
                collisions=collisions,
                joined=joined,
                departed=departed,
            )
        return SimulationResult(
            final=dense,
            verdict=verdict,
            silent=silent,
            interactions=interactions,
            productive=productive,
            population=m,
            output_trace=trace,
            deadline_exceeded=deadline_exceeded,
            joined=joined,
            departed=departed,
        )

    def flip_check(step):
        nonlocal out, stable_since, conv_at
        new_out = (
            (True if accept == m else (False if accept == 0 else None))
            if m
            else None
        )
        if new_out != out:
            out = new_out
            stable_since = productive
            conv_at = (
                stable_since + convergence_window if out is not None else _NEVER
            )
            trace.append((step, out))
            if obs is not None:
                obs.on_output_flip(step, out, LAYER_PROTOCOL)

    def silent_now():
        # The key scan early-exits on the first enabled changing key —
        # usually instant on dense configurations — so the exhaustive
        # occupied-pair scan must be *much* smaller to be worth it.
        occupied = [s for s in range(S) if cnt[s]]
        occ_sq = len(occupied) * len(occupied)
        if occ_sq <= 4096 or occ_sq * 16 <= len(changing_keys):
            for a in occupied:
                solo = cnt[a] < 2
                base = a * S
                for b in occupied:
                    if a == b and solo:
                        continue
                    if base + b in changing_codes:
                        return False
            return True
        for a, b, off in changing_keys:
            if cnt[a] * (cnt[b] - off) > 0:
                return False
        return True

    while interactions < max_interactions:
        if deadline_at is not None and monotonic() >= deadline_at:
            return finish(None, False, deadline_exceeded=True)

        # ---- due faults (fire at batch barriers only) ----------------
        if inj is not None and interactions >= inj.next_at:
            view.accept_delta = 0
            inj.fire(interactions, view, obs)
            if view.accept_delta:
                accept += view.accept_delta
            if view.size_delta:
                m += view.size_delta
                view.size_delta = 0
                if m >= 2:
                    sampler.set_population(m)
            flip_check(interactions)

        if m < 2:
            # One (or zero) agents: no pair will ever interact.  Only a
            # pending join can revive the run — fast-forward to it, or
            # drain the budget as null steps.
            if inj is not None and inj.next_at <= max_interactions:
                nxt = int(inj.next_at)
                if obs is not None:
                    obs.on_batch(
                        nxt, kind="null_skip", count=nxt - interactions
                    )
                interactions = nxt
                continue
            span = max_interactions - interactions
            interactions = max_interactions
            if obs is not None and span:
                obs.on_batch(interactions, kind="null_skip", count=span)
            break

        if silent_now():
            if inj is not None and inj.next_at <= max_interactions:
                # Silent *for now*: a pending join/leave may re-enable
                # transitions, so silence is only final once the plan
                # is drained.
                nxt = int(inj.next_at)
                if obs is not None:
                    obs.on_batch(
                        nxt, kind="null_skip", count=nxt - interactions
                    )
                interactions = nxt
                continue
            if obs is not None:
                obs.on_silence_check(interactions, True)
            return finish(out, True)

        # ---- one batch ----------------------------------------------
        remaining = max_interactions - interactions
        if inj is not None:
            # The next trigger is a barrier no batch may cross; the
            # truncation there is exact (see the driver docstring).
            gap = inj.next_at - interactions  # inf when drained
            if gap < remaining:
                remaining = int(gap)
        length = sampler.batch_length()
        # A collision interaction follows the batch only if it fits the
        # budget; otherwise truncate the (all-distinct) batch exactly.
        collide = length < remaining
        if not collide:
            length = remaining
        pairs, fresh = sampler.sample_pairs(cnt, length)
        end_step = interactions + length

        delta_acc = [0] * S
        upost = [0] * S
        nulls = 0
        batch_productive = 0
        accept_acc = 0

        if vec is not None and obs is None:
            codes = _np.fromiter(
                (code for code, _k in pairs), dtype=_np.int64, count=len(pairs)
            )
            counts = _np.fromiter(
                (k for _code, k in pairs), dtype=_np.int64, count=len(pairs)
            )
            kidx = vec.code2key[codes]
            matched = kidx >= 0
            if not matched.all():
                null_codes = codes[~matched]
                null_counts = counts[~matched]
                nulls = int(null_counts.sum())
                upost_arr = _np.zeros(S, dtype=_np.int64)
                _np.add.at(upost_arr, null_codes // S, null_counts)
                _np.add.at(upost_arr, null_codes % S, null_counts)
                upost = upost_arr.tolist()
            single = matched & (vec.ncand[_np.where(matched, kidx, 0)] == 1)
            rows = kidx[single]
            if rows.size:
                kc = counts[single]
                delta_acc = (vec.deltas[rows] * kc[:, None]).sum(axis=0).tolist()
                upost_vec = (vec.upost[rows] * kc[:, None]).sum(axis=0).tolist()
                upost = [u + v for u, v in zip(upost, upost_vec)]
                batch_productive = int(vec.changes[rows] @ kc)
                accept_acc = int(vec.accept_delta[rows] @ kc)
            multi = matched & ~single
            if multi.any():
                for code, k in zip(
                    codes[multi].tolist(), counts[multi].tolist()
                ):
                    cands = pair_cands[code]
                    for cand, kc in zip(cands, sampler.split(k, len(cands))):
                        if not kc:
                            continue
                        _q, _r, q2, r2, ch, ad, cdeltas, _t = cand
                        upost[q2] += kc
                        upost[r2] += kc
                        for s, d in cdeltas:
                            delta_acc[s] += d * kc
                        if ch:
                            batch_productive += kc
                        accept_acc += ad * kc
        else:
            for code, k in pairs:
                cands = pair_cands.get(code)
                if cands is None:
                    # Null interactions: no transition, but the agents
                    # are still consumed by the batch.
                    a, b = divmod(code, S)
                    upost[a] += k
                    upost[b] += k
                    nulls += k
                    continue
                if len(cands) == 1 or tie_first:
                    chunks = ((cands[0], k),)
                else:
                    chunks = zip(cands, sampler.split(k, len(cands)))
                for cand, kc in chunks:
                    if not kc:
                        continue
                    _q, _r, q2, r2, ch, ad, cdeltas, t = cand
                    upost[q2] += kc
                    upost[r2] += kc
                    for s, d in cdeltas:
                        delta_acc[s] += d * kc
                    if ch:
                        batch_productive += kc
                    accept_acc += ad * kc
                    if obs is not None:
                        obs.on_batch(
                            end_step,
                            kind="multinomial",
                            count=kc,
                            transition=t,
                            productive=kc if ch else 0,
                        )
            if nulls and obs is not None:
                obs.on_batch(
                    end_step, kind="multinomial", count=nulls, transition=None
                )

        dense.apply_sid_deltas(
            [(s, d) for s, d in enumerate(delta_acc) if d]
        )
        interactions = end_step
        productive += batch_productive
        accept += accept_acc
        batches += 1
        flip_check(interactions)
        if obs is not None and next_snapshot and interactions >= next_snapshot:
            obs.on_snapshot(interactions, dense.to_dict(), LAYER_PROTOCOL)
            next_snapshot = (
                interactions - interactions % snapshot_every + snapshot_every
            )
        if productive >= conv_at:
            return finish(out, False)

        # ---- the collision interaction ------------------------------
        if collide:
            interactions += 1
            collisions += 1
            a, b = sampler.sample_collision(
                upost, fresh, 2 * length, m - 2 * length
            )
            cands = pair_cands.get(a * S + b)
            if cands is None:
                if obs is not None:
                    obs.on_batch(interactions, kind="collision", count=1)
            else:
                if len(cands) == 1 or tie_first:
                    cand = cands[0]
                else:
                    cand = cands[int(rng.random() * len(cands))]
                _q, _r, _q2, _r2, ch, ad, cdeltas, t = cand
                if cdeltas:
                    dense.apply_sid_deltas(cdeltas)
                if ch:
                    productive += 1
                accept += ad
                if obs is not None:
                    obs.on_batch(
                        interactions,
                        kind="collision",
                        count=1,
                        transition=t,
                        productive=1 if ch else 0,
                    )
                if ad:
                    flip_check(interactions)
                if productive >= conv_at:
                    return finish(out, False)

    silent = silent_now()
    if obs is not None:
        obs.on_silence_check(interactions, silent)
    return finish(out if silent else None, silent)
