"""Schedulers: how interacting pairs are picked during a simulation.

The paper's probabilistic execution model picks two agents uniformly at
random at every step.  Runs produced this way are fair with probability 1,
which makes random simulation the natural executable counterpart of the
paper's fair-run semantics.

Two schedulers are provided:

* :class:`UniformPairScheduler` — the textbook model.  Every (ordered) pair
  of distinct agents is equally likely; if the sampled pair has no matching
  transition the step is *null*.  Null steps are reported so callers can
  convert interaction counts into parallel time (# interactions / m).
* :class:`EnabledTransitionScheduler` — samples only among *enabled,
  non-no-op* transitions, weighted by the number of agent pairs matching
  each one.  This is the uniform scheduler conditioned on the step being
  productive, so it visits the same runs (it only skips null steps) but is
  far faster when most encounters are null.  Functional tests use it.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.core.multiset import Multiset
from repro.core.protocol import PopulationProtocol, Transition
from repro.observability.observer import Observer


@dataclass
class SchedulerStep:
    """The outcome of one scheduling decision.

    ``transition`` is ``None`` for a null step (the sampled pair had no
    applicable transition, or the population has fewer than two agents).
    """

    transition: Optional[Transition]
    pair: Optional[Tuple[object, object]] = None


def ordered_pair_weight(config: Multiset, q: object, r: object) -> int:
    """Number of ordered pairs of distinct agents in states ``(q, r)``."""
    if q == r:
        count = config[q]
        return count * (count - 1)
    return config[q] * config[r]


def first_enabled_transition(
    protocol: PopulationProtocol, config: Multiset
) -> Optional[Transition]:
    """The deterministically lowest-ranked enabled *productive* transition
    (``None`` when the configuration is silent).

    Ranking follows the same scan order both legacy schedulers use —
    repr-sorted support, initiator-major — so the choice is reproducible
    across processes.  This is the adversarial pick played inside a
    :class:`repro.resilience.UnfairWindow`: always favouring one fixed
    transition is the textbook unfair scheduler, while still never
    scheduling a disabled interaction.
    """
    if config.size < 2:
        return None
    support = sorted(config.support(), key=repr)
    for q in support:
        for r in support:
            if ordered_pair_weight(config, q, r) <= 0:
                continue
            for t in protocol.productive_transitions_from(q, r):
                return t
    return None


class UniformPairScheduler:
    """Pick two distinct agents uniformly at random (the paper's model)."""

    def __init__(self, tie_break: str = "uniform"):
        if tie_break not in ("uniform", "first"):
            raise ValueError("tie_break must be 'uniform' or 'first'")
        self.tie_break = tie_break

    def select(
        self,
        protocol: PopulationProtocol,
        config: Multiset,
        rng: random.Random,
        observer: Optional[Observer] = None,
        step: Optional[int] = None,
    ) -> SchedulerStep:
        if config.size < 2:
            return SchedulerStep(None)
        # Sorted support: frozenset iteration order depends on the process
        # hash salt, which would make seeded runs irreproducible across
        # interpreter invocations.
        support = sorted(config.support(), key=repr)
        # Sample the initiator's state proportionally to its count, then the
        # responder's state proportionally among the remaining m-1 agents.
        weights = [config[q] for q in support]
        q = rng.choices(support, weights=weights)[0]
        responder_weights = [
            config[r] - 1 if r == q else config[r] for r in support
        ]
        r = rng.choices(support, weights=responder_weights)[0]
        candidates = protocol.transitions_from(q, r)
        if observer is not None:
            observer.on_scheduler_select(
                step,
                scheduler="uniform",
                null=not candidates,
                candidates=len(candidates),
            )
        if not candidates:
            return SchedulerStep(None, (q, r))
        if len(candidates) == 1 or self.tie_break == "first":
            return SchedulerStep(candidates[0], (q, r))
        return SchedulerStep(rng.choice(candidates), (q, r))


class EnabledTransitionScheduler:
    """Sample directly among enabled non-no-op transitions.

    Equivalent to the uniform scheduler conditioned on productive steps;
    used to accelerate functional tests and experiments.
    """

    def select(
        self,
        protocol: PopulationProtocol,
        config: Multiset,
        rng: random.Random,
        observer: Optional[Observer] = None,
        step: Optional[int] = None,
    ) -> SchedulerStep:
        if config.size < 2:
            return SchedulerStep(None)
        # Sorted for cross-process reproducibility (see UniformPairScheduler).
        support = sorted(config.support(), key=repr)
        candidates: List[Transition] = []
        weights: List[int] = []
        for q in support:
            for r in support:
                weight = ordered_pair_weight(config, q, r)
                if weight <= 0:
                    continue
                for t in protocol.productive_transitions_from(q, r):
                    candidates.append(t)
                    weights.append(weight)
        if observer is not None:
            observer.on_scheduler_select(
                step,
                scheduler="enabled",
                null=not candidates,
                candidates=len(candidates),
                weight=sum(weights),
            )
        if not candidates:
            return SchedulerStep(None)
        choice = rng.choices(range(len(candidates)), weights=weights)[0]
        t = candidates[choice]
        return SchedulerStep(t, (t.q, t.r))
