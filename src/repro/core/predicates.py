"""Predicates and their encoding size (|φ|).

The paper measures space complexity against the length of the predicate
written as a quantifier-free Presburger formula *with coefficients in
binary*.  For a threshold ``τ_k(x) ⇔ x ≥ k`` this length is
``Θ(log k)`` — we use ``bit_length(k)`` as the canonical size, so the
headline result reads: protocols with ``O(log |τ_k|)`` states, i.e.
``O(log log k)`` states, exist for infinitely many ``k``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Tuple

from repro.core.multiset import Multiset


def binary_length(value: int) -> int:
    """Number of bits of ``value`` (≥ 1, so constants contribute size)."""
    return max(1, abs(value).bit_length())


@dataclass(frozen=True)
class Predicate:
    """Base class: a predicate over named nonnegative integer variables."""

    def variables(self) -> Tuple[str, ...]:
        raise NotImplementedError

    def formula_size(self) -> int:
        """|φ| — length of the quantifier-free Presburger encoding."""
        raise NotImplementedError

    def evaluate(self, assignment: Mapping[str, int]) -> bool:
        raise NotImplementedError

    def __call__(self, *args: int, **kwargs: int) -> bool:
        names = self.variables()
        assignment = dict(zip(names, args))
        assignment.update(kwargs)
        missing = set(names) - set(assignment)
        if missing:
            raise TypeError(f"missing variables: {sorted(missing)}")
        return self.evaluate(assignment)

    def of_input_configuration(
        self, config: Multiset, input_map: Mapping[object, str]
    ) -> bool:
        """Evaluate on an initial configuration, mapping input states to
        variables (states mapped to the same variable are summed)."""
        assignment = {name: 0 for name in self.variables()}
        for state, count in config.items():
            assignment[input_map[state]] += count
        return self.evaluate(assignment)


@dataclass(frozen=True)
class Threshold(Predicate):
    """``τ_k(x) ⇔ x ≥ k`` — the paper's central family."""

    k: int

    def variables(self) -> Tuple[str, ...]:
        return ("x",)

    def formula_size(self) -> int:
        return binary_length(self.k)

    def evaluate(self, assignment: Mapping[str, int]) -> bool:
        return assignment["x"] >= self.k

    def __str__(self) -> str:
        return f"x >= {self.k}"


@dataclass(frozen=True)
class Equality(Predicate):
    """``x = k`` (the paper notes the construction extends to this)."""

    k: int

    def variables(self) -> Tuple[str, ...]:
        return ("x",)

    def formula_size(self) -> int:
        return binary_length(self.k)

    def evaluate(self, assignment: Mapping[str, int]) -> bool:
        return assignment["x"] == self.k

    def __str__(self) -> str:
        return f"x = {self.k}"


@dataclass(frozen=True)
class Interval(Predicate):
    """``lo ≤ x < hi`` — the Figure 1 example uses ``4 ≤ x < 7``."""

    lo: int
    hi: int

    def variables(self) -> Tuple[str, ...]:
        return ("x",)

    def formula_size(self) -> int:
        return binary_length(self.lo) + binary_length(self.hi)

    def evaluate(self, assignment: Mapping[str, int]) -> bool:
        return self.lo <= assignment["x"] < self.hi

    def __str__(self) -> str:
        return f"{self.lo} <= x < {self.hi}"


@dataclass(frozen=True)
class Remainder(Predicate):
    """``x ≡ r (mod m)``."""

    m: int
    r: int = 0

    def __post_init__(self):
        if self.m <= 0:
            raise ValueError("modulus must be positive")

    def variables(self) -> Tuple[str, ...]:
        return ("x",)

    def formula_size(self) -> int:
        return binary_length(self.m) + binary_length(self.r)

    def evaluate(self, assignment: Mapping[str, int]) -> bool:
        return assignment["x"] % self.m == self.r % self.m

    def __str__(self) -> str:
        return f"x = {self.r} (mod {self.m})"


@dataclass(frozen=True)
class Majority(Predicate):
    """``x ≥ y`` — the introductory example of the paper."""

    def variables(self) -> Tuple[str, ...]:
        return ("x", "y")

    def formula_size(self) -> int:
        return 2

    def evaluate(self, assignment: Mapping[str, int]) -> bool:
        return assignment["x"] >= assignment["y"]

    def __str__(self) -> str:
        return "x >= y"


@dataclass(frozen=True)
class ShiftedThreshold(Predicate):
    """``φ'(x) ⇔ φ(x − i) ∧ x ≥ i`` for a unary predicate ``φ``.

    Theorem 5: converting a population program into a protocol costs a shift
    of ``i = |F|`` agents (the pointer agents).  For ``φ = τ_k`` this is
    simply ``x ≥ k + i``, but the class keeps the paper's general shape.
    """

    inner: Predicate
    shift: int

    def variables(self) -> Tuple[str, ...]:
        return ("x",)

    def formula_size(self) -> int:
        return self.inner.formula_size() + binary_length(self.shift)

    def evaluate(self, assignment: Mapping[str, int]) -> bool:
        x = assignment["x"]
        if x < self.shift:
            return False
        return self.inner.evaluate({"x": x - self.shift})

    def __str__(self) -> str:
        return f"({self.inner}) shifted by {self.shift}"
