"""Exact stable-computation checking on the finite configuration graph.

Fairness (Section 3) says the set of configurations visited infinitely
often is closed under ``→``.  On the finite configuration graph of a fixed
population this means exactly: every fair run is eventually trapped in, and
covers, a *terminal* (bottom) strongly connected component.  Hence:

    every fair run from C stabilises to b
        ⇔  every terminal SCC reachable from C consists solely of
           configurations with output b.

This module computes that criterion exactly (Tarjan SCCs over a BFS of the
configuration graph), giving a *proof-quality* verdict for small instances —
the complement to the sampled runs of :mod:`repro.core.simulation`.
"""

from __future__ import annotations

from itertools import combinations
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Set, Tuple

from repro.core.errors import NonConvergenceError
from repro.core.multiset import Multiset
from repro.core.protocol import PopulationProtocol
from repro.core.semantics import configuration_graph


def strongly_connected_components(
    nodes: Iterable[frozenset],
    edges: Dict[frozenset, FrozenSet[frozenset]],
) -> List[Set[frozenset]]:
    """Iterative Tarjan SCC decomposition (recursion-free for deep graphs)."""
    index: Dict[frozenset, int] = {}
    lowlink: Dict[frozenset, int] = {}
    on_stack: Set[frozenset] = set()
    stack: List[frozenset] = []
    counter = 0
    components: List[Set[frozenset]] = []

    for root in nodes:
        if root in index:
            continue
        work: List[Tuple[frozenset, Iterator[frozenset]]] = []
        index[root] = lowlink[root] = counter
        counter += 1
        stack.append(root)
        on_stack.add(root)
        work.append((root, iter(edges.get(root, ()))))
        while work:
            node, it = work[-1]
            advanced = False
            for succ in it:
                if succ not in index:
                    index[succ] = lowlink[succ] = counter
                    counter += 1
                    stack.append(succ)
                    on_stack.add(succ)
                    work.append((succ, iter(edges.get(succ, ()))))
                    advanced = True
                    break
                if succ in on_stack:
                    lowlink[node] = min(lowlink[node], index[succ])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index[node]:
                component: Set[frozenset] = set()
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.add(member)
                    if member == node:
                        break
                components.append(component)
    return components


def terminal_sccs(
    nodes: Iterable[frozenset],
    edges: Dict[frozenset, FrozenSet[frozenset]],
) -> List[Set[frozenset]]:
    """The bottom SCCs: components with no edge leaving them."""
    components = strongly_connected_components(nodes, edges)
    result = []
    for component in components:
        if all(succ in component for node in component for succ in edges.get(node, ())):
            result.append(component)
    return result


def stabilisation_verdict(
    protocol: PopulationProtocol,
    config: Multiset,
    max_configurations: int = 200_000,
) -> Optional[bool]:
    """The exact fair-run verdict from ``config``.

    Returns ``True``/``False`` if *every* fair run from ``config``
    stabilises to that value, and ``None`` if fair runs disagree or fail to
    stabilise (i.e. the protocol does not decide anything from here).
    """
    nodes, edges = configuration_graph(protocol, config, max_configurations)
    verdicts: Set[Optional[bool]] = set()
    for component in terminal_sccs(nodes.keys(), edges):
        outputs = {protocol.output(nodes[key]) for key in component}
        if len(outputs) != 1:
            return None
        verdicts.add(outputs.pop())
    if len(verdicts) != 1 or None in verdicts:
        return None
    return verdicts.pop()


def initial_configurations(
    protocol: PopulationProtocol, population: int
) -> Iterator[Multiset]:
    """All initial configurations with exactly ``population`` agents."""
    states = sorted(protocol.input_states, key=repr)
    if population <= 0:
        return
    # Compositions of `population` into len(states) parts (stars and bars).
    k = len(states)
    if k == 1:
        yield Multiset({states[0]: population})
        return
    for dividers in combinations(range(population + k - 1), k - 1):
        counts = []
        previous = -1
        for d in dividers:
            counts.append(d - previous - 1)
            previous = d
        counts.append(population + k - 2 - previous)
        yield Multiset(
            {s: c for s, c in zip(states, counts) if c}
        )


def verify_decides(
    protocol: PopulationProtocol,
    predicate,
    populations: Iterable[int],
    max_configurations: int = 200_000,
) -> None:
    """Exhaustively check that ``protocol`` decides ``predicate`` on every
    initial configuration of the given population sizes.

    ``predicate`` is a callable taking the initial configuration (a
    :class:`Multiset` over the input states) and returning a bool.  Raises
    :class:`NonConvergenceError` on the first counterexample.
    """
    for population in populations:
        for config in initial_configurations(protocol, population):
            expected = predicate(config)
            verdict = stabilisation_verdict(protocol, config, max_configurations)
            if verdict is not expected:
                raise NonConvergenceError(
                    f"protocol {protocol.name!r}: initial {config} expected "
                    f"{expected}, exact verdict {verdict}"
                )
