"""The population protocol model of Section 3 of the paper.

A population protocol is a tuple ``PP = (Q, δ, I, O)`` with states ``Q``,
transitions ``δ ⊆ Q⁴`` written ``(q, r ↦ q', r')``, input states ``I ⊆ Q``
and accepting states ``O ⊆ Q``.  A configuration is a multiset ``C ∈ ℕ^Q``
with ``|C| > 0``; it has output *true* if every agent is in an accepting
state and output *false* if no agent is.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Tuple

from repro.core.errors import InvalidConfigurationError, InvalidProtocolError
from repro.core.multiset import Multiset, State


@dataclass(frozen=True)
class Transition:
    """A pairwise transition ``(q, r ↦ q2, r2)``.

    The pair is *ordered*: the first agent is conventionally called the
    initiator and the second the responder.  A transition is a *no-op* if it
    leaves both agents unchanged.
    """

    q: State
    r: State
    q2: State
    r2: State

    def is_noop(self) -> bool:
        return self.q == self.q2 and self.r == self.r2

    def pre(self) -> Multiset:
        return Multiset([self.q, self.r])

    def post(self) -> Multiset:
        return Multiset([self.q2, self.r2])

    def __repr__(self) -> str:
        return f"({self.q!r}, {self.r!r} -> {self.q2!r}, {self.r2!r})"


class PopulationProtocol:
    """A population protocol ``(Q, δ, I, O)``.

    The constructor validates well-formedness: every transition must mention
    only known states, ``I`` must be a nonempty subset of ``Q`` and ``O``
    a subset of ``Q``.

    >>> from repro.baselines.majority import majority_protocol
    >>> pp = majority_protocol()
    >>> sorted(pp.input_states)
    ['X', 'Y']
    """

    def __init__(
        self,
        states: Iterable[State],
        transitions: Iterable[Transition | Tuple[State, State, State, State]],
        input_states: Iterable[State],
        accepting_states: Iterable[State],
        name: str = "protocol",
    ):
        self.states: FrozenSet[State] = frozenset(states)
        normalised: List[Transition] = []
        for t in transitions:
            if not isinstance(t, Transition):
                t = Transition(*t)
            normalised.append(t)
        self.transitions: Tuple[Transition, ...] = tuple(dict.fromkeys(normalised))
        self.input_states: FrozenSet[State] = frozenset(input_states)
        self.accepting_states: FrozenSet[State] = frozenset(accepting_states)
        self.name = name
        self._index: Dict[Tuple[State, State], List[Transition]] = {}
        self._validate()
        for t in self.transitions:
            self._index.setdefault((t.q, t.r), []).append(t)
        # Precomputed (q, r) → non-no-op transitions: the hot loops ask
        # this question once per candidate pair per step, so it is frozen
        # into tuples up front rather than filtered on every call.
        self._productive_index: Dict[Tuple[State, State], Tuple[Transition, ...]] = {
            key: tuple(t for t in ts if not t.is_noop())
            for key, ts in self._index.items()
        }
        self._productive_index = {
            key: ts for key, ts in self._productive_index.items() if ts
        }

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def _validate(self) -> None:
        if not self.states:
            raise InvalidProtocolError("a protocol needs at least one state")
        if not self.input_states:
            raise InvalidProtocolError("a protocol needs at least one input state")
        if not self.input_states <= self.states:
            raise InvalidProtocolError("input states must be a subset of Q")
        if not self.accepting_states <= self.states:
            raise InvalidProtocolError("accepting states must be a subset of Q")
        for t in self.transitions:
            for s in (t.q, t.r, t.q2, t.r2):
                if s not in self.states:
                    raise InvalidProtocolError(
                        f"transition {t} mentions unknown state {s!r}"
                    )

    # ------------------------------------------------------------------
    # Basic queries
    # ------------------------------------------------------------------
    @property
    def state_count(self) -> int:
        """``|Q|`` — the space-complexity measure of the paper."""
        return len(self.states)

    def transitions_from(self, q: State, r: State) -> List[Transition]:
        """All transitions whose (ordered) precondition is ``(q, r)``."""
        return self._index.get((q, r), [])

    def productive_transitions_from(self, q: State, r: State) -> Tuple[Transition, ...]:
        """The non-no-op transitions with (ordered) precondition ``(q, r)``,
        from the precomputed table built at construction time."""
        return self._productive_index.get((q, r), ())

    def has_interaction(self, q: State, r: State) -> bool:
        """Whether the ordered pair (q, r) has any non-no-op transition."""
        return (q, r) in self._productive_index

    def is_initial(self, config: Multiset) -> bool:
        """Whether ``config`` is an initial configuration (``C ∈ ℕ^I``)."""
        return config.size > 0 and config.support() <= self.input_states

    def check_configuration(self, config: Multiset) -> None:
        if config.size <= 0:
            raise InvalidConfigurationError("configurations must be nonempty")
        unknown = config.support() - self.states
        if unknown:
            raise InvalidConfigurationError(
                f"configuration contains unknown states: {sorted(map(repr, unknown))}"
            )

    def output(self, config: Multiset) -> Optional[bool]:
        """The output of a configuration per Section 3.

        Returns ``True`` if every agent is in an accepting state, ``False``
        if no agent is, and ``None`` when the configuration has no output
        (mixed opinions).
        """
        support = config.support()
        if support <= self.accepting_states:
            return True
        if not (support & self.accepting_states):
            return False
        return None

    def initial_configuration(self, counts: Dict[State, int]) -> Multiset:
        """Build and validate an initial configuration from input counts."""
        config = Multiset(counts)
        if not self.is_initial(config):
            raise InvalidConfigurationError(
                "counts do not describe a valid initial configuration"
            )
        return config

    # ------------------------------------------------------------------
    # Pickling (used by repro.runtime to ship protocols to workers)
    # ------------------------------------------------------------------
    @classmethod
    def _restore(cls, states, transitions, input_states, accepting_states, name):
        """Unpickle fast path: the defining tuple came from a validated
        instance (already frozen, deduplicated and normalised), so skip
        ``__init__``'s validation and normalisation — at compiled-pipeline
        scale (hundreds of thousands of transitions) re-validating costs
        more than the compile it was cached to avoid — and rebuild only
        the pair indexes."""
        self = cls.__new__(cls)
        self.states = states
        self.transitions = transitions
        self.input_states = input_states
        self.accepting_states = accepting_states
        self.name = name
        self._index = {}
        for t in transitions:
            self._index.setdefault((t.q, t.r), []).append(t)
        productive = {
            key: tuple(t for t in ts if not t.is_noop())
            for key, ts in self._index.items()
        }
        self._productive_index = {key: ts for key, ts in productive.items() if ts}
        return self

    def __reduce__(self):
        """Reconstruct from the defining tuple ``(Q, δ, I, O, name)``.

        Derived structures — the pair indexes built here and the compiled
        ``TransitionTable`` the fast path attaches as ``_fastpath_table``
        — are deliberately not serialised: they are cheap to rebuild or
        (for the table) recoverable from the content-addressed cache of
        :mod:`repro.runtime.cache`, and the table's change-hook wiring is
        process-local state that must not cross a pickle boundary.
        """
        return (
            PopulationProtocol._restore,
            (
                self.states,
                self.transitions,
                self.input_states,
                self.accepting_states,
                self.name,
            ),
        )

    # ------------------------------------------------------------------
    # Display
    # ------------------------------------------------------------------
    def __repr__(self) -> str:
        return (
            f"PopulationProtocol(name={self.name!r}, |Q|={len(self.states)}, "
            f"|delta|={len(self.transitions)}, |I|={len(self.input_states)})"
        )

    def describe(self) -> str:
        """A multi-line human-readable description of the protocol."""
        lines = [
            f"protocol {self.name}",
            f"  states ({len(self.states)}): "
            + ", ".join(sorted(map(str, self.states)))[:400],
            f"  inputs: {', '.join(sorted(map(str, self.input_states)))}",
            f"  accepting: {len(self.accepting_states)} states",
            f"  transitions: {len(self.transitions)}",
        ]
        return "\n".join(lines)


def iter_nontrivial(protocol: PopulationProtocol) -> Iterator[Transition]:
    """Iterate over the transitions of ``protocol`` that change some agent."""
    return (t for t in protocol.transitions if not t.is_noop())
