"""Exception hierarchy for the :mod:`repro` library.

All exceptions raised intentionally by the library derive from
:class:`ReproError`, so downstream users can catch one base class.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class InvalidProtocolError(ReproError):
    """A population protocol definition violates the model's well-formedness
    rules (e.g. a transition mentions an unknown state, or the set of input
    states is empty)."""


class InvalidConfigurationError(ReproError):
    """A configuration is malformed for the object it is used with (e.g. it
    contains states outside the protocol's state set, or it is empty where
    the model requires at least one agent)."""


class InvalidProgramError(ReproError):
    """A population program violates the rules of Section 4 of the paper
    (e.g. cyclic procedure calls, a call to an undefined procedure, or an
    instruction referring to an unknown register)."""


class InvalidMachineError(ReproError):
    """A population machine violates Definition 6 (e.g. a pointer domain is
    empty, an instruction index is out of range, or a register map pointer
    is missing)."""


class ExecutionLimitExceeded(ReproError):
    """A bounded execution (interpreter or simulation) exhausted its step
    budget before reaching the requested condition."""


class NonConvergenceError(ReproError):
    """A simulation was asked for a definite verdict but did not stabilise
    within its budget."""
