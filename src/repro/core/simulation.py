"""Simulation driver: sample a (probabilistically fair) run of a protocol.

Stabilisation in the paper is a property of infinite runs; a simulation can
only ever observe a finite prefix.  The driver therefore reports a verdict
based on two signals:

* **silence** — no enabled transition changes the configuration any more;
  the run has provably stabilised (the remainder of the run is constant);
* **a convergence window** — the configuration has had a constant, defined
  output for ``convergence_window`` consecutive productive interactions.
  This is a heuristic (the standard one for population-protocol
  simulation); exact verification on small instances lives in
  :mod:`repro.core.stability`.
"""

from __future__ import annotations

import hashlib
import os
import random
import time
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.core.batched import BatchedScheduler, run_batched_simulation
from repro.core.errors import NonConvergenceError
from repro.core.fastpath import (
    FastEnabledScheduler,
    FastUniformScheduler,
    run_fast_simulation,
)
from repro.core.multiset import Multiset
from repro.core.protocol import PopulationProtocol
from repro.core.scheduler import (
    EnabledTransitionScheduler,
    UniformPairScheduler,
    first_enabled_transition,
    ordered_pair_weight,
    SchedulerStep,
)
from repro.core.semantics import apply_transition_inplace, is_silent
from repro.observability.events import LAYER_PROTOCOL
from repro.observability.observer import Observer, live
from repro.observability import spans as _spans


@dataclass
class SimulationResult:
    """Outcome of :func:`simulate`.

    ``verdict`` is the stabilised output (``True``/``False``) or ``None``
    if the budget ran out first.  ``silent`` records whether the final
    configuration was provably terminal.  ``interactions`` counts scheduler
    steps (including null steps for the uniform scheduler); ``productive``
    counts steps that changed the configuration.

    ``population`` is the *final* population size — under a churn plan
    (:mod:`repro.resilience.churn`) joins and leaves resize the run, and
    ``joined``/``departed`` record the totals (both 0 for fixed-``n``
    runs, where ``population`` equals the initial size as always).
    """

    final: Multiset
    verdict: Optional[bool]
    silent: bool
    interactions: int
    productive: int
    population: int
    output_trace: List[Tuple[int, Optional[bool]]] = field(default_factory=list)
    #: True when the run was cut short by a wall-clock ``deadline`` —
    #: the verdict is then ``None`` regardless of the trajectory so far.
    deadline_exceeded: bool = False
    #: Total agents added / removed by churn faults during the run.
    joined: int = 0
    departed: int = 0

    @property
    def parallel_time(self) -> float:
        """Interactions divided by population size — the usual notion of
        parallel time for population protocols."""
        if self.population == 0:
            return 0.0
        return self.interactions / self.population


def resolve_deadline(deadline: float | None) -> float | None:
    """Normalise a wall-clock ``deadline`` argument (seconds).

    An explicit value wins (and must be positive); ``None`` falls back to
    the ``REPRO_DEADLINE`` environment variable, so whole experiment
    sweeps and CI jobs can be time-bounded without touching call sites.
    Unset/garbage/non-positive env values mean "no deadline".
    """
    if deadline is not None:
        if deadline <= 0:
            raise ValueError("deadline must be positive (seconds)")
        return float(deadline)
    raw = os.environ.get("REPRO_DEADLINE", "").strip()
    if not raw:
        return None
    try:
        value = float(raw)
    except ValueError:
        return None
    return value if value > 0 else None


#: The selectable engine families, in increasing order of throughput (and
#: decreasing granularity): per-step legacy schedulers (bit-exact archive
#: replay), the incremental fast path, and the batched multinomial engine.
#: ``auto`` — the default — picks fast below the population-size
#: crossover and batched above it.
_ENGINES = ("auto", "legacy", "fast", "batched")

#: Default population-size crossover for ``engine="auto"``.  BENCH shows
#: the batched engine's per-batch setup makes it ~14× *slower* than the
#: fastpath at n = 10³ (``batched.crossover.smalln_ratio``) while being
#: ≥ 50× faster at n = 10⁶ — the crossover sits between; 50k keeps every
#: interactive-scale run on the fastpath and every bulk run batched.
AUTO_CROSSOVER_DEFAULT = 50_000


def auto_crossover() -> int:
    """The ``engine="auto"`` population crossover (``REPRO_AUTO_CROSSOVER``
    overrides the default — unset/garbage/non-positive means default)."""
    raw = os.environ.get("REPRO_AUTO_CROSSOVER", "").strip()
    try:
        value = int(raw) if raw else AUTO_CROSSOVER_DEFAULT
    except ValueError:
        return AUTO_CROSSOVER_DEFAULT
    return value if value > 0 else AUTO_CROSSOVER_DEFAULT


def resolve_engine(engine: str | None) -> str | None:
    """Normalise an ``engine`` argument
    (``"auto"``/``"legacy"``/``"fast"``/``"batched"``).

    An explicit value wins and must be one of the known names; ``None``
    falls back to the ``REPRO_ENGINE`` environment variable (so whole
    experiment sweeps and CI jobs can switch engines without touching
    call sites).  Unset/garbage env values mean "no preference" —
    returned as ``None``, which downstream treats exactly like
    ``"auto"``: fastpath below the population crossover, batched above.
    """
    if engine is not None:
        name = engine.strip().lower()
        if name not in _ENGINES:
            raise ValueError(
                f"unknown engine {engine!r}; expected one of {_ENGINES}"
            )
        return name
    raw = os.environ.get("REPRO_ENGINE", "").strip().lower()
    return raw if raw in _ENGINES else None


def scheduler_for_engine(engine: str | None, population: int | None = None):
    """The default scheduler of an engine family.

    ``None``/``"auto"`` select by population size: the batched
    multinomial engine at or above :func:`auto_crossover` agents, the
    incremental fastpath below (and whenever the population is unknown).
    """
    if engine == "batched":
        return BatchedScheduler()
    if engine == "legacy":
        return EnabledTransitionScheduler()
    if engine in (None, "auto") and population is not None:
        if population >= auto_crossover():
            return BatchedScheduler()
    return FastEnabledScheduler()


def engine_label(
    scheduler, engine: str | None = None, population: int | None = None
) -> str:
    """The engine family a run will execute under — for span attributes
    and provenance manifests.  An explicit scheduler decides; otherwise
    the resolved ``engine`` preference does (``auto``/default resolving
    by ``population`` like :func:`scheduler_for_engine`)."""
    if scheduler is None:
        resolved = resolve_engine(engine)
        if resolved in (None, "auto"):
            if population is not None and population >= auto_crossover():
                return "batched"
            return "fast"
        return resolved
    if isinstance(scheduler, BatchedScheduler):
        return "batched"
    if isinstance(scheduler, (FastEnabledScheduler, FastUniformScheduler)):
        return "fast"
    return "legacy"


def simulate(
    protocol: PopulationProtocol,
    config: Multiset,
    *,
    seed: int | None = None,
    rng: random.Random | None = None,
    scheduler=None,
    engine: str | None = None,
    max_interactions: int = 1_000_000,
    convergence_window: int = 2_000,
    check_silence_every: int = 512,
    observer: Observer | None = None,
    faults=None,
    deadline: float | None = None,
) -> SimulationResult:
    """Sample one run of ``protocol`` from ``config``.

    When a span tracer is active (:func:`repro.observability.spans.activate`)
    the whole run is wrapped in a ``simulate`` span (annotated with the
    engine family); without one the only cost is a single contextvar
    read.  See :func:`_simulate` for the full contract — this wrapper
    forwards every argument verbatim.
    """
    tracer = _spans.current()
    if tracer is None:
        return _simulate(
            protocol,
            config,
            seed=seed,
            rng=rng,
            scheduler=scheduler,
            engine=engine,
            max_interactions=max_interactions,
            convergence_window=convergence_window,
            check_silence_every=check_silence_every,
            observer=observer,
            faults=faults,
            deadline=deadline,
        )
    with tracer.span(
        "simulate",
        protocol=protocol.name,
        population=config.size,
        seed=seed,
        engine=engine_label(scheduler, engine, config.size),
    ) as sp:
        result = _simulate(
            protocol,
            config,
            seed=seed,
            rng=rng,
            scheduler=scheduler,
            engine=engine,
            max_interactions=max_interactions,
            convergence_window=convergence_window,
            check_silence_every=check_silence_every,
            observer=observer,
            faults=faults,
            deadline=deadline,
        )
        sp.attrs["verdict"] = result.verdict
        sp.attrs["interactions"] = result.interactions
        # Final size: under churn it differs from the start-of-run
        # ``population`` attribute recorded above.
        sp.attrs["population.size"] = result.population
        if result.joined or result.departed:
            sp.attrs["churn.joined"] = result.joined
            sp.attrs["churn.departed"] = result.departed
        return result


def _simulate(
    protocol: PopulationProtocol,
    config: Multiset,
    *,
    seed: int | None = None,
    rng: random.Random | None = None,
    scheduler=None,
    engine: str | None = None,
    max_interactions: int = 1_000_000,
    convergence_window: int = 2_000,
    check_silence_every: int = 512,
    observer: Observer | None = None,
    faults=None,
    deadline: float | None = None,
) -> SimulationResult:
    """Sample one run of ``protocol`` from ``config``.

    The run stops when the configuration is silent, when the output has been
    constant and defined for ``convergence_window`` productive steps, or
    when ``max_interactions`` scheduler steps have elapsed.

    ``observer`` (see :mod:`repro.observability`) receives structured
    events: per-interaction steps, output flips, silence checks, sampled
    configuration snapshots and a run summary.  Observation never touches
    the random stream, so an observed run is bit-identical to an
    unobserved run with the same seed.

    ``faults`` (a :class:`repro.resilience.FaultPlan`, or an already-bound
    :class:`~repro.resilience.FaultInjector`) injects deterministic mid-run
    perturbations; a plan is bound to ``seed`` (its fault stream is
    derived independently of the simulation stream, so an *empty* plan
    leaves the run bit-identical to an uninjected one).  ``deadline``
    bounds the run in wall-clock seconds (``REPRO_DEADLINE`` supplies a
    default); past it the result carries ``verdict=None`` and
    ``deadline_exceeded=True``.

    ``engine`` selects the execution family when no explicit scheduler is
    given: ``"legacy"`` (per-step reference schedulers, bit-exact
    archive replay), ``"fast"`` (the incremental fast path),
    ``"batched"`` (the bulk multinomial engine of
    :mod:`repro.core.batched`, for very large populations) or ``"auto"``
    — the default — which picks fast below the
    :func:`auto_crossover` population size and batched at or above it.
    ``None`` defers to ``REPRO_ENGINE``, then behaves like ``"auto"``;
    an explicit ``scheduler`` always wins.
    Pass ``scheduler=EnabledTransitionScheduler()`` (or
    ``UniformPairScheduler()``) to reproduce runs recorded with the
    legacy per-step schedulers bit-exactly under the same seed.
    """
    protocol.check_configuration(config)
    if rng is None:
        rng = random.Random(seed)
    if scheduler is None:
        scheduler = scheduler_for_engine(resolve_engine(engine), config.size)
    injector = None
    if faults is not None:
        from repro.resilience.faults import resolve_injector

        injector = resolve_injector(faults, seed)
        if injector is not None and injector.inert():
            # Empty plan — or one that expanded to nothing (e.g. a
            # zero-rate ChurnProcess): behaviourally no injector at all,
            # so take the uninjected hot path and stay bit-identical.
            injector = None
    deadline = resolve_deadline(deadline)
    deadline_at = time.monotonic() + deadline if deadline is not None else None
    obs = live(observer)
    snapshot_every = obs.snapshot_interval if obs is not None else None
    current = config.copy()
    population = current.size
    interactions = 0
    productive = 0
    stable_output: Optional[bool] = protocol.output(current)
    stable_since = 0
    trace: List[Tuple[int, Optional[bool]]] = [(0, stable_output)]
    if obs is not None:
        obs.on_run_start(
            LAYER_PROTOCOL,
            protocol=protocol.name,
            population=population,
            states=protocol.state_count,
            scheduler=type(scheduler).__name__,
        )

    if isinstance(scheduler, BatchedScheduler) and population >= 2:
        if injector is None or injector.population_only():
            return run_batched_simulation(
                protocol,
                current,
                population=population,
                rng=rng,
                scheduler=scheduler,
                max_interactions=max_interactions,
                convergence_window=convergence_window,
                check_silence_every=check_silence_every,
                obs=obs,
                trace=trace,
                stable_output=stable_output,
                injector=injector,
                deadline_at=deadline_at,
            )
        # Per-interaction faults (drops, duplicates, unfair/adversarial
        # windows, corruption of specific steps) need a granularity a
        # batched run never materialises — degrade to the per-step fast
        # uniform loop (identical uniform-pair semantics, full fault
        # support).  Population-only plans (joins/leaves) fire at batch
        # barriers and run batched natively above.
        scheduler = FastUniformScheduler(tie_break=scheduler.tie_break)

    if (
        isinstance(scheduler, (FastEnabledScheduler, FastUniformScheduler))
        and population >= 2
    ):
        return run_fast_simulation(
            protocol,
            current,
            population=population,
            rng=rng,
            scheduler=scheduler,
            max_interactions=max_interactions,
            convergence_window=convergence_window,
            check_silence_every=check_silence_every,
            obs=obs,
            trace=trace,
            stable_output=stable_output,
            injector=injector,
            deadline_at=deadline_at,
        )

    def finish(
        verdict: Optional[bool], silent: bool, deadline_exceeded: bool = False
    ) -> SimulationResult:
        joined = injector.joined if injector is not None else 0
        departed = injector.departed if injector is not None else 0
        if obs is not None:
            obs.on_run_end(
                interactions,
                LAYER_PROTOCOL,
                verdict=verdict,
                silent=silent,
                interactions=interactions,
                productive=productive,
                population=population,
                deadline_exceeded=deadline_exceeded,
                joined=joined,
                departed=departed,
            )
        return SimulationResult(
            final=current,
            verdict=verdict,
            silent=silent,
            interactions=interactions,
            productive=productive,
            population=population,
            output_trace=trace,
            deadline_exceeded=deadline_exceeded,
            joined=joined,
            departed=departed,
        )

    fault_view = None
    ticks = 0
    while interactions < max_interactions:
        if deadline_at is not None:
            ticks += 1
            if not ticks & 255 and time.monotonic() >= deadline_at:
                return finish(None, False, deadline_exceeded=True)
        if injector is not None and interactions >= injector.next_at:
            if fault_view is None:
                from repro.resilience.faults import MultisetView

                fault_view = MultisetView(protocol, current)
            injector.fire(interactions, fault_view, obs)
            # Churn may have resized the run; the legacy loop reads the
            # configuration live everywhere else, so refreshing here
            # lifts its only fixed-n capture.  An emptied population has
            # no output (the vacuous ``output(∅) = True`` is an
            # initial-configuration convention, not a verdict).
            population = current.size
            output = protocol.output(current) if population else None
            if output != stable_output:
                stable_output = output
                stable_since = productive
                trace.append((interactions, output))
                if obs is not None:
                    obs.on_output_flip(interactions, output, LAYER_PROTOCOL)
        unfair = injector is not None and injector.unfair_active(interactions + 1)
        adversarial = (
            not unfair
            and injector is not None
            and injector.adversarial_active(interactions + 1)
            and injector.take_adversarial()
        )
        if unfair:
            # Adversarial window: play the deterministic lowest-ranked
            # enabled transition, consuming no randomness.
            t = first_enabled_transition(protocol, current)
            step = SchedulerStep(t, (t.q, t.r) if t is not None else None)
            if obs is not None:
                obs.on_scheduler_select(
                    interactions + 1,
                    scheduler="unfair",
                    null=t is None,
                    candidates=0 if t is None else 1,
                )
        elif adversarial:
            # Worst-case-pick window: the enabled transition that drags
            # the accepting count away from the current consensus (see
            # repro.resilience.churn); deterministic, rng-free.
            from repro.resilience.churn import adversarial_enabled_transition

            t = adversarial_enabled_transition(protocol, current, stable_output)
            step = SchedulerStep(t, (t.q, t.r) if t is not None else None)
            if obs is not None:
                obs.on_scheduler_select(
                    interactions + 1,
                    scheduler="adversarial",
                    null=t is None,
                    candidates=0 if t is None else 1,
                )
        elif obs is None:
            step = scheduler.select(protocol, current, rng)
        else:
            step = scheduler.select(
                protocol, current, rng, observer=obs, step=interactions + 1
            )
        interactions += 1
        if step.transition is None:
            if obs is not None:
                obs.on_interaction(interactions, None, step.pair, False)
            # An unfair/adversarial window's None pick means no productive
            # transition is enabled at all, exactly like the enabled
            # scheduler's.
            if (
                unfair
                or adversarial
                or isinstance(scheduler, EnabledTransitionScheduler)
            ):
                if injector is not None and injector.next_at <= max_interactions:
                    # Silent for now, but a pending fault may revive the
                    # run: fast-forward the null steps to the trigger.
                    nxt = int(injector.next_at)
                    if nxt > interactions:
                        if obs is not None:
                            obs.on_batch(
                                nxt, kind="null_skip", count=nxt - interactions
                            )
                        interactions = nxt
                    continue
                # No productive transition exists at all: provably silent.
                if obs is not None:
                    obs.on_silence_check(interactions, True)
                break
            if interactions % check_silence_every == 0:
                silent_now = is_silent(protocol, current)
                if obs is not None:
                    obs.on_silence_check(interactions, silent_now)
                if silent_now:
                    if (
                        injector is not None
                        and injector.next_at <= max_interactions
                    ):
                        nxt = int(injector.next_at)
                        if nxt > interactions:
                            if obs is not None:
                                obs.on_batch(
                                    nxt,
                                    kind="null_skip",
                                    count=nxt - interactions,
                                )
                            interactions = nxt
                        continue
                    break
            continue
        if injector is not None and injector.drop_left and injector.take_drop():
            # Message loss: the step counts, the configuration is frozen.
            if obs is not None:
                obs.on_fault(
                    interactions,
                    "drop",
                    LAYER_PROTOCOL,
                    transition=repr(step.transition),
                )
                obs.on_interaction(interactions, None, step.pair, False)
            continue
        before = (
            current[step.transition.q],
            current[step.transition.r],
            current[step.transition.q2],
            current[step.transition.r2],
        )
        apply_transition_inplace(current, step.transition)
        after = (
            current[step.transition.q],
            current[step.transition.r],
            current[step.transition.q2],
            current[step.transition.r2],
        )
        changed = before != after
        if changed:
            productive += 1
        if (
            injector is not None
            and changed
            and injector.duplicate_left
            and ordered_pair_weight(
                current, step.transition.q, step.transition.r
            )
            > 0
            and injector.take_duplicate()
        ):
            # Re-delivery: the interaction is applied a second time (it is
            # still enabled), counting as productive work, not as a step.
            apply_transition_inplace(current, step.transition)
            productive += 1
            if obs is not None:
                obs.on_fault(
                    interactions,
                    "duplicate",
                    LAYER_PROTOCOL,
                    transition=repr(step.transition),
                )
        if obs is not None:
            obs.on_interaction(interactions, step.transition, step.pair, changed)
            if snapshot_every and interactions % snapshot_every == 0:
                obs.on_snapshot(interactions, current.to_dict(), LAYER_PROTOCOL)
        output = protocol.output(current)
        if output != stable_output:
            stable_output = output
            stable_since = productive
            trace.append((interactions, output))
            if obs is not None:
                obs.on_output_flip(interactions, output, LAYER_PROTOCOL)
        if (
            stable_output is not None
            and productive - stable_since >= convergence_window
        ):
            return finish(stable_output, False)

    silent = is_silent(protocol, current)
    # A churn-drained (empty) population is trivially silent but has no
    # output to report.
    verdict = protocol.output(current) if silent and current.size else None
    return finish(verdict, silent)


def derive_seed(base: int, attempt: int) -> int:
    """A per-attempt seed that is independent across *both* arguments.

    The old scheme (``base + attempt``) made adjacent base seeds share
    runs across calls (``seed=1, attempt=1`` collided with ``seed=2,
    attempt=0``), silently correlating what should be independent
    experiments.  Hashing the pair keeps determinism per ``(base,
    attempt)`` while decorrelating neighbours.
    """
    digest = hashlib.blake2b(
        f"{base}:{attempt}".encode("ascii"), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big")


def decide(
    protocol: PopulationProtocol,
    config: Multiset,
    *,
    seed: int | None = None,
    attempts: int = 3,
    observer: Observer | None = None,
    jobs: int | str | None = None,
    deadline: float | None = None,
    timeout: float | None = None,
    **kwargs,
) -> bool:
    """Run :func:`simulate` until a verdict is reached, retrying with fresh
    seeds up to ``attempts`` times (see :func:`_decide` for the full
    contract; this wrapper forwards every argument verbatim).

    When a span tracer is active the call is wrapped in a ``decide`` span
    with one ``attempt:<i>`` child per attempt — and the transition table
    is warmed through :func:`~repro.runtime.cache.cached_transition_table`
    up front (compilation touches no randomness, so warmed and unwarmed
    runs sample identically), which makes the compile/cache cost a visible
    child span instead of latency silently folded into the first attempt.
    """
    tracer = _spans.current()
    if tracer is None:
        return _decide(
            protocol,
            config,
            seed=seed,
            attempts=attempts,
            observer=observer,
            jobs=jobs,
            deadline=deadline,
            timeout=timeout,
            **kwargs,
        )
    with tracer.span(
        "decide",
        protocol=protocol.name,
        population=config.size,
        seed=seed,
        attempts=attempts,
    ):
        scheduler = kwargs.get("scheduler")
        if scheduler is None or isinstance(
            scheduler,
            (FastEnabledScheduler, FastUniformScheduler, BatchedScheduler),
        ):
            from repro.runtime.cache import cached_transition_table

            cached_transition_table(protocol)
        return _decide(
            protocol,
            config,
            seed=seed,
            attempts=attempts,
            observer=observer,
            jobs=jobs,
            deadline=deadline,
            timeout=timeout,
            **kwargs,
        )


def _decide(
    protocol: PopulationProtocol,
    config: Multiset,
    *,
    seed: int | None = None,
    attempts: int = 3,
    observer: Observer | None = None,
    jobs: int | str | None = None,
    deadline: float | None = None,
    timeout: float | None = None,
    **kwargs,
) -> bool:
    """Run :func:`simulate` until a verdict is reached, retrying with fresh
    seeds up to ``attempts`` times.  Raises :class:`NonConvergenceError` if
    no attempt stabilises.

    ``jobs`` fans the attempts out across a process pool (see
    :mod:`repro.runtime`): per-attempt seeds are unchanged and the verdict
    is the lowest-indexed stabilising attempt's, so the result is
    identical to sequential execution for every seed.  ``jobs=1`` (the
    default) runs the sequential loop below, bit-identical to previous
    behaviour; ``jobs=None`` defers to the ``REPRO_JOBS`` environment
    variable.  A ``"host:port"`` string (argument or environment) shards
    the attempts across the distributed cluster at that address instead
    (:func:`repro.runtime.distributed.decide_distributed`) — same seeds,
    same verdict.

    ``deadline`` bounds the *whole* call in wall-clock seconds
    (``REPRO_DEADLINE`` supplies a default); ``timeout`` bounds each
    attempt.  Hitting either raises :class:`NonConvergenceError` with a
    "deadline exceeded" message — a time bound is a budget exhaustion,
    not a verdict.
    """
    base = seed if seed is not None else random.Random().randrange(2**31)
    obs = live(observer)
    from repro.runtime.pool import decide_parallel, resolve_dispatch

    deadline = resolve_deadline(deadline)
    mode, target = resolve_dispatch(jobs)
    if mode == "distributed" and attempts > 1:
        from repro.runtime.distributed import decide_distributed

        return decide_distributed(
            protocol,
            config,
            base=base,
            attempts=attempts,
            addr=target,
            observer=obs,
            deadline=deadline,
            timeout=timeout,
            **kwargs,
        )
    n_jobs = target if mode == "local" else 1
    if n_jobs > 1 and attempts > 1:
        return decide_parallel(
            protocol,
            config,
            base=base,
            attempts=attempts,
            jobs=n_jobs,
            observer=obs,
            deadline=deadline,
            timeout=timeout,
            **kwargs,
        )
    deadline_at = time.monotonic() + deadline if deadline is not None else None
    timed_out = 0
    for attempt in range(attempts):
        budget = timeout
        if deadline_at is not None:
            remaining = deadline_at - time.monotonic()
            if remaining <= 0:
                raise NonConvergenceError(
                    f"protocol {protocol.name!r} did not stabilise on "
                    f"|C|={config.size}: wall-clock deadline of {deadline:g}s "
                    f"exceeded after {attempt} of {attempts} attempts"
                )
            budget = remaining if budget is None else min(budget, remaining)
        attempt_seed = derive_seed(base, attempt)
        if obs is not None:
            obs.on_attempt(attempt, attempt_seed)
        with _spans.span(f"attempt:{attempt}", seed=attempt_seed):
            result = simulate(
                protocol,
                config,
                seed=attempt_seed,
                observer=obs,
                deadline=budget,
                **kwargs,
            )
        if result.verdict is not None:
            return result.verdict
        if result.deadline_exceeded:
            timed_out += 1
            # A per-attempt timeout lets the next attempt (fresh seed)
            # try again; the overall deadline does not.
            if deadline_at is not None and time.monotonic() >= deadline_at:
                raise NonConvergenceError(
                    f"protocol {protocol.name!r} did not stabilise on "
                    f"|C|={config.size}: wall-clock deadline exceeded during "
                    f"attempt {attempt + 1} of {attempts}"
                )
    detail = f", {timed_out} timed out" if timed_out else ""
    raise NonConvergenceError(
        f"protocol {protocol.name!r} did not stabilise on |C|={config.size} "
        f"within the budget ({attempts} attempts{detail})"
    )


def uniform_scheduler() -> UniformPairScheduler:
    """Convenience factory for the paper's uniform random scheduler."""
    return UniformPairScheduler()
