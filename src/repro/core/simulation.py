"""Simulation driver: sample a (probabilistically fair) run of a protocol.

Stabilisation in the paper is a property of infinite runs; a simulation can
only ever observe a finite prefix.  The driver therefore reports a verdict
based on two signals:

* **silence** — no enabled transition changes the configuration any more;
  the run has provably stabilised (the remainder of the run is constant);
* **a convergence window** — the configuration has had a constant, defined
  output for ``convergence_window`` consecutive productive interactions.
  This is a heuristic (the standard one for population-protocol
  simulation); exact verification on small instances lives in
  :mod:`repro.core.stability`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.core.errors import NonConvergenceError
from repro.core.multiset import Multiset
from repro.core.protocol import PopulationProtocol
from repro.core.scheduler import (
    EnabledTransitionScheduler,
    UniformPairScheduler,
)
from repro.core.semantics import apply_transition_inplace, is_silent


@dataclass
class SimulationResult:
    """Outcome of :func:`simulate`.

    ``verdict`` is the stabilised output (``True``/``False``) or ``None``
    if the budget ran out first.  ``silent`` records whether the final
    configuration was provably terminal.  ``interactions`` counts scheduler
    steps (including null steps for the uniform scheduler); ``productive``
    counts steps that changed the configuration.
    """

    final: Multiset
    verdict: Optional[bool]
    silent: bool
    interactions: int
    productive: int
    population: int
    output_trace: List[Tuple[int, Optional[bool]]] = field(default_factory=list)

    @property
    def parallel_time(self) -> float:
        """Interactions divided by population size — the usual notion of
        parallel time for population protocols."""
        if self.population == 0:
            return 0.0
        return self.interactions / self.population


def simulate(
    protocol: PopulationProtocol,
    config: Multiset,
    *,
    seed: int | None = None,
    rng: random.Random | None = None,
    scheduler=None,
    max_interactions: int = 1_000_000,
    convergence_window: int = 2_000,
    check_silence_every: int = 512,
) -> SimulationResult:
    """Sample one run of ``protocol`` from ``config``.

    The run stops when the configuration is silent, when the output has been
    constant and defined for ``convergence_window`` productive steps, or
    when ``max_interactions`` scheduler steps have elapsed.
    """
    protocol.check_configuration(config)
    if rng is None:
        rng = random.Random(seed)
    if scheduler is None:
        scheduler = EnabledTransitionScheduler()
    current = config.copy()
    population = current.size
    interactions = 0
    productive = 0
    stable_output: Optional[bool] = protocol.output(current)
    stable_since = 0
    trace: List[Tuple[int, Optional[bool]]] = [(0, stable_output)]

    while interactions < max_interactions:
        step = scheduler.select(protocol, current, rng)
        interactions += 1
        if step.transition is None:
            if isinstance(scheduler, EnabledTransitionScheduler):
                # No productive transition exists at all: provably silent.
                break
            if interactions % check_silence_every == 0 and is_silent(
                protocol, current
            ):
                break
            continue
        before = (
            current[step.transition.q],
            current[step.transition.r],
            current[step.transition.q2],
            current[step.transition.r2],
        )
        apply_transition_inplace(current, step.transition)
        after = (
            current[step.transition.q],
            current[step.transition.r],
            current[step.transition.q2],
            current[step.transition.r2],
        )
        if before != after:
            productive += 1
        output = protocol.output(current)
        if output != stable_output:
            stable_output = output
            stable_since = productive
            trace.append((interactions, output))
        if (
            stable_output is not None
            and productive - stable_since >= convergence_window
        ):
            return SimulationResult(
                final=current,
                verdict=stable_output,
                silent=False,
                interactions=interactions,
                productive=productive,
                population=population,
                output_trace=trace,
            )

    silent = is_silent(protocol, current)
    verdict = protocol.output(current) if silent else None
    return SimulationResult(
        final=current,
        verdict=verdict,
        silent=silent,
        interactions=interactions,
        productive=productive,
        population=population,
        output_trace=trace,
    )


def decide(
    protocol: PopulationProtocol,
    config: Multiset,
    *,
    seed: int | None = None,
    attempts: int = 3,
    **kwargs,
) -> bool:
    """Run :func:`simulate` until a verdict is reached, retrying with fresh
    seeds up to ``attempts`` times.  Raises :class:`NonConvergenceError` if
    no attempt stabilises."""
    base = seed if seed is not None else random.Random().randrange(2**31)
    for attempt in range(attempts):
        result = simulate(protocol, config, seed=base + attempt, **kwargs)
        if result.verdict is not None:
            return result.verdict
    raise NonConvergenceError(
        f"protocol {protocol.name!r} did not stabilise on |C|={config.size} "
        f"within the budget ({attempts} attempts)"
    )


def uniform_scheduler() -> UniformPairScheduler:
    """Convenience factory for the paper's uniform random scheduler."""
    return UniformPairScheduler()
