"""Simulation driver: sample a (probabilistically fair) run of a protocol.

Stabilisation in the paper is a property of infinite runs; a simulation can
only ever observe a finite prefix.  The driver therefore reports a verdict
based on two signals:

* **silence** — no enabled transition changes the configuration any more;
  the run has provably stabilised (the remainder of the run is constant);
* **a convergence window** — the configuration has had a constant, defined
  output for ``convergence_window`` consecutive productive interactions.
  This is a heuristic (the standard one for population-protocol
  simulation); exact verification on small instances lives in
  :mod:`repro.core.stability`.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.core.errors import NonConvergenceError
from repro.core.fastpath import (
    FastEnabledScheduler,
    FastUniformScheduler,
    run_fast_simulation,
)
from repro.core.multiset import Multiset
from repro.core.protocol import PopulationProtocol
from repro.core.scheduler import (
    EnabledTransitionScheduler,
    UniformPairScheduler,
)
from repro.core.semantics import apply_transition_inplace, is_silent
from repro.observability.events import LAYER_PROTOCOL
from repro.observability.observer import Observer, live


@dataclass
class SimulationResult:
    """Outcome of :func:`simulate`.

    ``verdict`` is the stabilised output (``True``/``False``) or ``None``
    if the budget ran out first.  ``silent`` records whether the final
    configuration was provably terminal.  ``interactions`` counts scheduler
    steps (including null steps for the uniform scheduler); ``productive``
    counts steps that changed the configuration.
    """

    final: Multiset
    verdict: Optional[bool]
    silent: bool
    interactions: int
    productive: int
    population: int
    output_trace: List[Tuple[int, Optional[bool]]] = field(default_factory=list)

    @property
    def parallel_time(self) -> float:
        """Interactions divided by population size — the usual notion of
        parallel time for population protocols."""
        if self.population == 0:
            return 0.0
        return self.interactions / self.population


def simulate(
    protocol: PopulationProtocol,
    config: Multiset,
    *,
    seed: int | None = None,
    rng: random.Random | None = None,
    scheduler=None,
    max_interactions: int = 1_000_000,
    convergence_window: int = 2_000,
    check_silence_every: int = 512,
    observer: Observer | None = None,
) -> SimulationResult:
    """Sample one run of ``protocol`` from ``config``.

    The run stops when the configuration is silent, when the output has been
    constant and defined for ``convergence_window`` productive steps, or
    when ``max_interactions`` scheduler steps have elapsed.

    ``observer`` (see :mod:`repro.observability`) receives structured
    events: per-interaction steps, output flips, silence checks, sampled
    configuration snapshots and a run summary.  Observation never touches
    the random stream, so an observed run is bit-identical to an
    unobserved run with the same seed.

    The default scheduler is :class:`FastEnabledScheduler`, which runs the
    incremental fast path of :mod:`repro.core.fastpath`.  Pass
    ``scheduler=EnabledTransitionScheduler()`` (or ``UniformPairScheduler()``)
    to reproduce runs recorded with the legacy per-step schedulers
    bit-exactly under the same seed.
    """
    protocol.check_configuration(config)
    if rng is None:
        rng = random.Random(seed)
    if scheduler is None:
        scheduler = FastEnabledScheduler()
    obs = live(observer)
    snapshot_every = obs.snapshot_interval if obs is not None else None
    current = config.copy()
    population = current.size
    interactions = 0
    productive = 0
    stable_output: Optional[bool] = protocol.output(current)
    stable_since = 0
    trace: List[Tuple[int, Optional[bool]]] = [(0, stable_output)]
    if obs is not None:
        obs.on_run_start(
            LAYER_PROTOCOL,
            protocol=protocol.name,
            population=population,
            states=protocol.state_count,
            scheduler=type(scheduler).__name__,
        )

    if (
        isinstance(scheduler, (FastEnabledScheduler, FastUniformScheduler))
        and population >= 2
    ):
        return run_fast_simulation(
            protocol,
            current,
            population=population,
            rng=rng,
            scheduler=scheduler,
            max_interactions=max_interactions,
            convergence_window=convergence_window,
            check_silence_every=check_silence_every,
            obs=obs,
            trace=trace,
            stable_output=stable_output,
        )

    def finish(verdict: Optional[bool], silent: bool) -> SimulationResult:
        if obs is not None:
            obs.on_run_end(
                interactions,
                LAYER_PROTOCOL,
                verdict=verdict,
                silent=silent,
                interactions=interactions,
                productive=productive,
                population=population,
            )
        return SimulationResult(
            final=current,
            verdict=verdict,
            silent=silent,
            interactions=interactions,
            productive=productive,
            population=population,
            output_trace=trace,
        )

    while interactions < max_interactions:
        if obs is None:
            step = scheduler.select(protocol, current, rng)
        else:
            step = scheduler.select(
                protocol, current, rng, observer=obs, step=interactions + 1
            )
        interactions += 1
        if step.transition is None:
            if obs is not None:
                obs.on_interaction(interactions, None, step.pair, False)
            if isinstance(scheduler, EnabledTransitionScheduler):
                # No productive transition exists at all: provably silent.
                if obs is not None:
                    obs.on_silence_check(interactions, True)
                break
            if interactions % check_silence_every == 0:
                silent_now = is_silent(protocol, current)
                if obs is not None:
                    obs.on_silence_check(interactions, silent_now)
                if silent_now:
                    break
            continue
        before = (
            current[step.transition.q],
            current[step.transition.r],
            current[step.transition.q2],
            current[step.transition.r2],
        )
        apply_transition_inplace(current, step.transition)
        after = (
            current[step.transition.q],
            current[step.transition.r],
            current[step.transition.q2],
            current[step.transition.r2],
        )
        changed = before != after
        if changed:
            productive += 1
        if obs is not None:
            obs.on_interaction(interactions, step.transition, step.pair, changed)
            if snapshot_every and interactions % snapshot_every == 0:
                obs.on_snapshot(interactions, current.to_dict(), LAYER_PROTOCOL)
        output = protocol.output(current)
        if output != stable_output:
            stable_output = output
            stable_since = productive
            trace.append((interactions, output))
            if obs is not None:
                obs.on_output_flip(interactions, output, LAYER_PROTOCOL)
        if (
            stable_output is not None
            and productive - stable_since >= convergence_window
        ):
            return finish(stable_output, False)

    silent = is_silent(protocol, current)
    return finish(protocol.output(current) if silent else None, silent)


def derive_seed(base: int, attempt: int) -> int:
    """A per-attempt seed that is independent across *both* arguments.

    The old scheme (``base + attempt``) made adjacent base seeds share
    runs across calls (``seed=1, attempt=1`` collided with ``seed=2,
    attempt=0``), silently correlating what should be independent
    experiments.  Hashing the pair keeps determinism per ``(base,
    attempt)`` while decorrelating neighbours.
    """
    digest = hashlib.blake2b(
        f"{base}:{attempt}".encode("ascii"), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big")


def decide(
    protocol: PopulationProtocol,
    config: Multiset,
    *,
    seed: int | None = None,
    attempts: int = 3,
    observer: Observer | None = None,
    jobs: int | None = None,
    **kwargs,
) -> bool:
    """Run :func:`simulate` until a verdict is reached, retrying with fresh
    seeds up to ``attempts`` times.  Raises :class:`NonConvergenceError` if
    no attempt stabilises.

    ``jobs`` fans the attempts out across a process pool (see
    :mod:`repro.runtime`): per-attempt seeds are unchanged and the verdict
    is the lowest-indexed stabilising attempt's, so the result is
    identical to sequential execution for every seed.  ``jobs=1`` (the
    default) runs the sequential loop below, bit-identical to previous
    behaviour; ``jobs=None`` defers to the ``REPRO_JOBS`` environment
    variable.
    """
    base = seed if seed is not None else random.Random().randrange(2**31)
    obs = live(observer)
    from repro.runtime.pool import decide_parallel, resolve_jobs

    n_jobs = resolve_jobs(jobs)
    if n_jobs > 1 and attempts > 1:
        return decide_parallel(
            protocol,
            config,
            base=base,
            attempts=attempts,
            jobs=n_jobs,
            observer=obs,
            **kwargs,
        )
    for attempt in range(attempts):
        attempt_seed = derive_seed(base, attempt)
        if obs is not None:
            obs.on_attempt(attempt, attempt_seed)
        result = simulate(
            protocol, config, seed=attempt_seed, observer=obs, **kwargs
        )
        if result.verdict is not None:
            return result.verdict
    raise NonConvergenceError(
        f"protocol {protocol.name!r} did not stabilise on |C|={config.size} "
        f"within the budget ({attempts} attempts)"
    )


def uniform_scheduler() -> UniformPairScheduler:
    """Convenience factory for the paper's uniform random scheduler."""
    return UniformPairScheduler()
