"""Machine → protocol conversion (Section 7.3, Appendix B.3).

Two kinds of agents: *register agents* (one per unit, state = the register
they represent) and *pointer agents* (one per pointer, state = the
pointer's value plus a gadget stage).  The conversion emits

* ``⟨elect⟩`` — leader election along an enumeration ``X₁, …, X_{|F|}``
  with ``X_{|F|} = IP``: duplicate pointer agents collapse pairwise, each
  collision (re-)initialising the next pointer in the chain; an IP
  collision demotes one agent to a register unit and restarts the chain
  (which restarts the machine — but *not* the register contents, which is
  what makes adversarial initialisation the model's base case);
* ``⟨move⟩`` / ``⟨test⟩`` / ``⟨pointer⟩`` — one gadget per instruction,
  exactly as in Figure 4 / Appendix B.3.

The resulting protocol (before the output broadcast of
:mod:`repro.conversion.broadcast`) satisfies Proposition 16's state bound
``|Q*| ≤ |Q| + 7·Σ_X |𝓕_X| + L``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.core.errors import InvalidMachineError
from repro.core.protocol import PopulationProtocol, Transition
from repro.machines.machine import (
    AssignInstr,
    CF,
    DetectInstr,
    IP,
    MoveInstr,
    OF,
    PopulationMachine,
    register_map_pointer,
)
from repro.conversion.states import (
    DONE,
    EMIT,
    FALSE,
    HALF,
    MapState,
    NONE,
    PointerState,
    TAKE,
    TEST,
    TRUE,
    WAIT,
    pointer_states,
    stages_of,
)


@dataclass
class ConvertedProtocol:
    """The conversion result plus the bookkeeping the theorems reference."""

    protocol: PopulationProtocol
    machine: PopulationMachine
    pointer_order: Tuple[str, ...]
    initial_values: Dict[str, object]
    hub_register: str
    shift: int  # |F| — the agent overhead of Theorem 5
    elect_transitions: List[Transition] = field(default_factory=list)
    instruction_transitions: Dict[int, List[Transition]] = field(default_factory=dict)

    @property
    def initial_state(self) -> PointerState:
        first = self.pointer_order[0]
        return PointerState(first, self.initial_values[first], NONE)


def default_initial_values(machine: PopulationMachine) -> Dict[str, object]:
    """Initial pointer values ``v_i`` satisfying Definition 13: IP = 1,
    identity register map; booleans start false; others take their first
    domain value."""
    values: Dict[str, object] = {}
    for pointer, domain in machine.pointer_domains.items():
        values[pointer] = domain[0]
    values[IP] = 1
    values[OF] = False
    values[CF] = False
    for reg in machine.registers:
        values[register_map_pointer(reg)] = reg
    return values


def pointer_enumeration(machine: PopulationMachine) -> Tuple[str, ...]:
    """An enumeration ``X₁, …, X_{|F|}`` with ``X_{|F|} = IP``."""
    others = [p for p in machine.pointer_domains if p != IP]
    return tuple(others) + (IP,)


def convert_machine(
    machine: PopulationMachine, name: str = "converted"
) -> ConvertedProtocol:
    """Convert a population machine into a population protocol (no output
    broadcast yet — see :func:`repro.conversion.broadcast.with_output_broadcast`)."""
    order = pointer_enumeration(machine)
    initial_values = default_initial_values(machine)
    hub = machine.registers[0]

    # ------------------------------------------------------------------
    # State space Q*
    # ------------------------------------------------------------------
    states: List[object] = list(machine.registers)
    for pointer in order:
        states.extend(pointer_states(machine, pointer))
    map_states: Dict[int, MapState] = {}
    for index, instr in enumerate(machine.instructions, start=1):
        if (
            isinstance(instr, AssignInstr)
            and instr.target != IP
            and instr.target != instr.source
        ):
            map_states[index] = MapState(instr.target, index)
    states.extend(map_states.values())
    all_states = list(states)

    transitions: List[Transition] = []

    # ------------------------------------------------------------------
    # ⟨elect⟩
    # ------------------------------------------------------------------
    elect: List[Transition] = []
    for i, pointer in enumerate(order):
        own_states = pointer_states(machine, pointer)
        if pointer != IP:
            successor = order[i + 1]
            winner = PointerState(pointer, initial_values[pointer], NONE)
            loser = PointerState(successor, initial_values[successor], NONE)
        else:
            winner = PointerState(order[0], initial_values[order[0]], NONE)
            loser = hub
        for first in own_states:
            for second in own_states:
                elect.append(Transition(first, second, winner, loser))
    transitions.extend(elect)

    # ------------------------------------------------------------------
    # Instruction gadgets
    # ------------------------------------------------------------------
    per_instruction: Dict[int, List[Transition]] = {}
    length = machine.length
    for index, instr in enumerate(machine.instructions, start=1):
        gadget: List[Transition] = []
        ip_none = PointerState(IP, index, NONE)
        ip_wait = PointerState(IP, index, WAIT)
        ip_half = PointerState(IP, index, HALF)

        if isinstance(instr, MoveInstr):
            vx = register_map_pointer(instr.x)
            vy = register_map_pointer(instr.y)
            for v in machine.pointer_domains[vx]:
                for s in stages_of(vx):
                    gadget.append(
                        Transition(
                            ip_none,
                            PointerState(vx, v, s),
                            ip_wait,
                            PointerState(vx, v, EMIT),
                        )
                    )
                gadget.append(
                    Transition(
                        PointerState(vx, v, EMIT), v, PointerState(vx, v, DONE), hub
                    )
                )
                gadget.append(
                    Transition(
                        ip_wait,
                        PointerState(vx, v, DONE),
                        ip_half,
                        PointerState(vx, v, NONE),
                    )
                )
            for w in machine.pointer_domains[vy]:
                for s in stages_of(vy):
                    gadget.append(
                        Transition(
                            ip_half,
                            PointerState(vy, w, s),
                            ip_wait,
                            PointerState(vy, w, TAKE),
                        )
                    )
                gadget.append(
                    Transition(
                        PointerState(vy, w, TAKE), hub, PointerState(vy, w, DONE), w
                    )
                )
                if index < length:
                    gadget.append(
                        Transition(
                            ip_wait,
                            PointerState(vy, w, DONE),
                            PointerState(IP, index + 1, NONE),
                            PointerState(vy, w, NONE),
                        )
                    )

        elif isinstance(instr, DetectInstr):
            vx = register_map_pointer(instr.x)
            cf_values = machine.pointer_domains[CF]
            for v in machine.pointer_domains[vx]:
                for s in stages_of(vx):
                    gadget.append(
                        Transition(
                            ip_none,
                            PointerState(vx, v, s),
                            ip_wait,
                            PointerState(vx, v, TEST),
                        )
                    )
                test_state = PointerState(vx, v, TEST)
                gadget.append(
                    Transition(test_state, v, PointerState(vx, v, TRUE), v)
                )
                for q in all_states:
                    if q == v:
                        continue
                    gadget.append(
                        Transition(test_state, q, PointerState(vx, v, FALSE), q)
                    )
                for outcome, stage in ((True, TRUE), (False, FALSE)):
                    for cv in cf_values:
                        for cs in stages_of(CF):
                            gadget.append(
                                Transition(
                                    PointerState(vx, v, stage),
                                    PointerState(CF, cv, cs),
                                    PointerState(vx, v, DONE),
                                    PointerState(CF, outcome, NONE),
                                )
                            )
                if index < length:
                    gadget.append(
                        Transition(
                            ip_wait,
                            PointerState(vx, v, DONE),
                            PointerState(IP, index + 1, NONE),
                            PointerState(vx, v, NONE),
                        )
                    )

        elif isinstance(instr, AssignInstr):
            if instr.source == IP:
                raise InvalidMachineError(
                    "assignments reading IP are not supported (replace f(IP) "
                    "by a constant — the paper's wlog step)"
                )
            if instr.target == IP:
                for v in machine.pointer_domains[instr.source]:
                    for s in stages_of(instr.source):
                        gadget.append(
                            Transition(
                                ip_none,
                                PointerState(instr.source, v, s),
                                PointerState(IP, instr.mapping[v], NONE),
                                PointerState(instr.source, v, NONE),
                            )
                        )
            elif instr.target == instr.source:
                if index < length:
                    for v in machine.pointer_domains[instr.source]:
                        for s in stages_of(instr.source):
                            gadget.append(
                                Transition(
                                    ip_none,
                                    PointerState(instr.source, v, s),
                                    PointerState(IP, index + 1, NONE),
                                    PointerState(instr.source, instr.mapping[v], NONE),
                                )
                            )
            else:
                if index < length:
                    map_state = map_states[index]
                    for v in machine.pointer_domains[instr.target]:
                        for s in stages_of(instr.target):
                            gadget.append(
                                Transition(
                                    ip_none,
                                    PointerState(instr.target, v, s),
                                    ip_wait,
                                    map_state,
                                )
                            )
                    for v in machine.pointer_domains[instr.source]:
                        for s in stages_of(instr.source):
                            gadget.append(
                                Transition(
                                    map_state,
                                    PointerState(instr.source, v, s),
                                    PointerState(instr.target, instr.mapping[v], DONE),
                                    PointerState(instr.source, v, NONE),
                                )
                            )
                    for v in machine.pointer_domains[instr.target]:
                        gadget.append(
                            Transition(
                                ip_wait,
                                PointerState(instr.target, v, DONE),
                                PointerState(IP, index + 1, NONE),
                                PointerState(instr.target, v, NONE),
                            )
                        )
        else:  # pragma: no cover - machine validation forbids this
            raise InvalidMachineError(f"unknown instruction {instr!r}")

        per_instruction[index] = gadget
        transitions.extend(gadget)

    first = order[0]
    protocol = PopulationProtocol(
        states=all_states,
        transitions=transitions,
        input_states=[PointerState(first, initial_values[first], NONE)],
        accepting_states=[
            PointerState(OF, True, stage) for stage in stages_of(OF)
        ],
        name=name,
    )
    return ConvertedProtocol(
        protocol=protocol,
        machine=machine,
        pointer_order=order,
        initial_values=initial_values,
        hub_register=hub,
        shift=len(order),
        elect_transitions=elect,
        instruction_transitions=per_instruction,
    )


def converted_state_count(machine: PopulationMachine) -> int:
    """|Q*| computed in closed form (without materialising transitions):
    ``|Q| + Σ_X |𝓕_X|·|S_X| + |Q_map|``.

    Lets Table 1 report protocol sizes for constructions far too large to
    build explicitly; agrees exactly with ``convert_machine`` (tested).
    """
    count = len(machine.registers)
    for pointer, domain in machine.pointer_domains.items():
        count += len(domain) * len(stages_of(pointer))
    for instr in machine.instructions:
        if (
            isinstance(instr, AssignInstr)
            and instr.target != IP
            and instr.target != instr.source
        ):
            count += 1
    return count


def final_state_count(machine: PopulationMachine) -> int:
    """|Q'| = 2·|Q*| — states of the broadcast-wrapped protocol."""
    return 2 * converted_state_count(machine)


def proposition16_state_bound(machine: PopulationMachine) -> int:
    """The bound of Proposition 16:
    ``|Q*| ≤ |Q| + 7·Σ_X |𝓕_X| + L``."""
    return (
        len(machine.registers)
        + 7 * sum(len(d) for d in machine.pointer_domains.values())
        + machine.length
    )
