"""Machine → protocol conversion (Section 7.3, Appendix B.3)."""

from repro.conversion.broadcast import OpinionState, with_output_broadcast
from repro.conversion.mapping import (
    initial_protocol_configuration,
    inverse_pi,
    is_pi_image,
    pi,
)
from repro.conversion.pipeline import (
    PipelineResult,
    compile_program,
    compile_threshold_protocol,
)
from repro.conversion.protocol_from_machine import (
    ConvertedProtocol,
    convert_machine,
    converted_state_count,
    default_initial_values,
    final_state_count,
    pointer_enumeration,
    proposition16_state_bound,
)
from repro.conversion.states import (
    IP_STAGES,
    MapState,
    PLAIN_STAGES,
    PointerState,
    REGISTER_MAP_STAGES,
    pointer_states,
    stages_of,
)

__all__ = [
    "convert_machine",
    "ConvertedProtocol",
    "pointer_enumeration",
    "default_initial_values",
    "proposition16_state_bound",
    "converted_state_count",
    "final_state_count",
    "with_output_broadcast",
    "OpinionState",
    "pi",
    "inverse_pi",
    "is_pi_image",
    "initial_protocol_configuration",
    "compile_program",
    "compile_threshold_protocol",
    "PipelineResult",
    "PointerState",
    "MapState",
    "pointer_states",
    "stages_of",
    "IP_STAGES",
    "REGISTER_MAP_STAGES",
    "PLAIN_STAGES",
]
