"""The output-broadcast construction (end of Appendix B.3).

The converted protocol holds the verdict in the single OF pointer agent;
for a *stable consensus* every agent needs an opinion.  The standard
construction doubles the state space with an opinion bit: whenever an
interaction's successor states include an OF state with value ``b``, both
participants adopt opinion ``b``; additionally any agent meeting the OF
agent copies its value.  All other interactions preserve opinions.

We omit the identity transitions between two non-OF agents (they are
no-ops on both components, hence semantically inert), keeping the
transition set finite-by-need while preserving the reachable behaviour.
"""

from __future__ import annotations

from typing import List, NamedTuple, Optional

from repro.core.protocol import PopulationProtocol, Transition
from repro.machines.machine import OF
from repro.conversion.states import PointerState


class OpinionState(NamedTuple):
    """A state of the broadcast protocol: base state plus opinion bit."""

    base: object
    opinion: bool

    def __repr__(self) -> str:
        return f"({self.base!r}, {'T' if self.opinion else 'F'})"


def _of_value(state: object) -> Optional[bool]:
    """The OF pointer's value if ``state`` belongs to the OF agent."""
    if isinstance(state, PointerState) and state.pointer == OF:
        return bool(state.value)
    return None


def with_output_broadcast(
    protocol: PopulationProtocol, name: Optional[str] = None
) -> PopulationProtocol:
    """Wrap ``protocol`` with the output broadcast; accepting states are
    exactly the opinion-true states."""
    bits = (False, True)
    states: List[OpinionState] = [
        OpinionState(q, b) for q in protocol.states for b in bits
    ]
    transitions: List[Transition] = []

    for t in protocol.transitions:
        broadcast_value: Optional[bool] = None
        for post in (t.q2, t.r2):
            value = _of_value(post)
            if value is not None:
                broadcast_value = value
        for b1 in bits:
            for b2 in bits:
                if broadcast_value is None:
                    transitions.append(
                        Transition(
                            OpinionState(t.q, b1),
                            OpinionState(t.r, b2),
                            OpinionState(t.q2, b1),
                            OpinionState(t.r2, b2),
                        )
                    )
                else:
                    transitions.append(
                        Transition(
                            OpinionState(t.q, b1),
                            OpinionState(t.r, b2),
                            OpinionState(t.q2, broadcast_value),
                            OpinionState(t.r2, broadcast_value),
                        )
                    )

    # Identity interactions involving the OF agent: opinion epidemics.
    of_states = [q for q in protocol.states if _of_value(q) is not None]
    for of_state in of_states:
        value = _of_value(of_state)
        for q in protocol.states:
            if _of_value(q) is not None:
                # Two OF agents never coexist after election; skip the
                # (unreachable, ill-defined) OF-meets-OF identity pairs.
                continue
            for b1 in bits:
                for b2 in bits:
                    transitions.append(
                        Transition(
                            OpinionState(of_state, b1),
                            OpinionState(q, b2),
                            OpinionState(of_state, value),
                            OpinionState(q, value),
                        )
                    )
                    transitions.append(
                        Transition(
                            OpinionState(q, b2),
                            OpinionState(of_state, b1),
                            OpinionState(q, value),
                            OpinionState(of_state, value),
                        )
                    )

    return PopulationProtocol(
        states=states,
        transitions=transitions,
        input_states=[OpinionState(q, False) for q in protocol.input_states],
        accepting_states=[s for s in states if s.opinion],
        name=name or f"{protocol.name}+broadcast",
    )
