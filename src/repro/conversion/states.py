"""Protocol state space for the machine → protocol conversion (App. B.3).

``Q* = Q ∪ ⋃_{X∈F} Q_X ∪ Q_map`` where

* register agents use the machine's register names directly,
* the pointer agent for ``X`` uses states ``X^v_s`` — value ``v ∈ 𝓕_X``
  plus a *stage* ``s`` tracking progress through the current instruction's
  gadget.  Stage sets (App. B.3):

  - ``S_IP       = {none, wait, half}``
  - ``S_{V_x}    = {none, done, emit, take, test, true, false}``
  - ``S_X        = {none, done}`` otherwise,

* ``Q_map`` holds one intermediate state ``X^i_map`` per general pointer
  assignment instruction.
"""

from __future__ import annotations

from typing import List, NamedTuple, Tuple

from repro.machines.machine import IP, PopulationMachine

NONE = "none"
WAIT = "wait"
HALF = "half"
DONE = "done"
EMIT = "emit"
TAKE = "take"
TEST = "test"
TRUE = "true"
FALSE = "false"

IP_STAGES: Tuple[str, ...] = (NONE, WAIT, HALF)
REGISTER_MAP_STAGES: Tuple[str, ...] = (NONE, DONE, EMIT, TAKE, TEST, TRUE, FALSE)
PLAIN_STAGES: Tuple[str, ...] = (NONE, DONE)


class PointerState(NamedTuple):
    """``X^v_s`` — the agent responsible for pointer ``X``."""

    pointer: str
    value: object
    stage: str

    def __repr__(self) -> str:
        return f"{self.pointer}^{self.value!r}_{self.stage}"


class MapState(NamedTuple):
    """``X^i_map`` — pointer ``X`` awaiting its new value at instruction i."""

    pointer: str
    instruction: int

    def __repr__(self) -> str:
        return f"{self.pointer}^{self.instruction}_map"


def stages_of(pointer: str) -> Tuple[str, ...]:
    """The stage set ``S_X`` for a pointer name."""
    if pointer == IP:
        return IP_STAGES
    if pointer.startswith("V["):
        return REGISTER_MAP_STAGES
    return PLAIN_STAGES


def pointer_states(machine: PopulationMachine, pointer: str) -> List[PointerState]:
    """``Q_X`` — all states of the agent for ``pointer``."""
    return [
        PointerState(pointer, value, stage)
        for value in machine.pointer_domains[pointer]
        for stage in stages_of(pointer)
    ]
