"""The π-mapping between machine and protocol configurations (App. B.3).

``π(C)`` places ``C(x)`` register agents in state ``x`` for each register
and one agent in ``X^{C(X)}_none`` for each pointer.  Lemma 15: any
protocol configuration with at least ``|F|`` agents in the initial state
reaches some ``π(C)`` with ``C`` initial; Proposition 16 then relates runs
through π.  These helpers let the tests state both facts executably.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.multiset import Multiset
from repro.machines.machine import MachineConfiguration
from repro.conversion.protocol_from_machine import ConvertedProtocol
from repro.conversion.states import NONE, PointerState


def pi(
    conversion: ConvertedProtocol, config: MachineConfiguration
) -> Multiset:
    """``π(C)`` — the protocol configuration representing machine config C."""
    counts: Dict[object, int] = {}
    for register, value in config.registers.items():
        if value:
            counts[register] = value
    for pointer in conversion.pointer_order:
        state = PointerState(pointer, config.pointers[pointer], NONE)
        counts[state] = counts.get(state, 0) + 1
    return Multiset(counts)


def inverse_pi(
    conversion: ConvertedProtocol, protocol_config: Multiset
) -> Optional[MachineConfiguration]:
    """Recover the machine configuration if ``protocol_config`` is a
    π-image (exactly one agent per pointer, all in stage *none*, everything
    else a register agent); otherwise ``None``."""
    machine = conversion.machine
    registers = {reg: 0 for reg in machine.registers}
    pointers: Dict[str, object] = {}
    for state, count in protocol_config.items():
        if isinstance(state, PointerState):
            if state.stage != NONE or count != 1 or state.pointer in pointers:
                return None
            pointers[state.pointer] = state.value
        elif state in registers:
            registers[state] = count
        else:
            return None
    if set(pointers) != set(conversion.pointer_order):
        return None
    return MachineConfiguration(registers=registers, pointers=pointers)


def is_pi_image(conversion: ConvertedProtocol, protocol_config: Multiset) -> bool:
    return inverse_pi(conversion, protocol_config) is not None


def initial_protocol_configuration(
    conversion: ConvertedProtocol, population: int
) -> Multiset:
    """All ``population`` agents in the protocol's unique initial state."""
    return Multiset({conversion.initial_state: population})
