"""End-to-end pipeline: population program → machine → protocol.

This is the constructive content of Theorem 1 / Theorem 5: given a
population program of size n deciding φ, produce a population protocol
with O(n) states deciding ``φ'(x) ⇔ φ(x − i) ∧ x ≥ i`` where ``i = |F|``
is the number of pointer agents.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional

from repro.core.predicates import Predicate, ShiftedThreshold
from repro.observability import spans as _spans
from repro.observability.observer import Observer, live
from repro.core.protocol import PopulationProtocol
from repro.machines.lowering import lower_program
from repro.machines.machine import PopulationMachine
from repro.programs.ast import PopulationProgram
from repro.programs.size import ProgramSize, program_size
from repro.conversion.broadcast import with_output_broadcast
from repro.conversion.protocol_from_machine import (
    ConvertedProtocol,
    convert_machine,
    proposition16_state_bound,
)


@dataclass
class PipelineResult:
    """All artefacts of the program → machine → protocol pipeline."""

    program: PopulationProgram
    program_size: ProgramSize
    machine: PopulationMachine
    machine_size: int
    conversion: ConvertedProtocol
    inner_protocol: PopulationProtocol
    protocol: PopulationProtocol
    shift: int

    @property
    def inner_state_count(self) -> int:
        """|Q*| — states before the output broadcast."""
        return self.inner_protocol.state_count

    @property
    def state_count(self) -> int:
        """|Q'| = 2·|Q*| — states of the final consensus protocol."""
        return self.protocol.state_count

    @property
    def state_bound(self) -> int:
        """Proposition 16's bound on |Q*|."""
        return proposition16_state_bound(self.machine)

    def shifted_predicate(self, inner: Predicate) -> ShiftedThreshold:
        """Theorem 5: the protocol decides ``φ(x − |F|) ∧ x ≥ |F|``."""
        return ShiftedThreshold(inner, self.shift)


def compile_program(
    program: PopulationProgram,
    name: str = "pipeline",
    *,
    observer: Optional[Observer] = None,
) -> PipelineResult:
    """Run the full compilation pipeline on a population program.

    ``observer`` receives one ``stage`` event per pipeline stage (lower /
    convert / broadcast) with its ``perf_counter`` wall time and the size
    of the produced artefact.
    """
    obs = live(observer)
    start = time.perf_counter()
    with _spans.span("stage:lower"):
        machine = lower_program(program, name=f"{name}-machine")
    if obs is not None:
        obs.on_stage(
            "lower", time.perf_counter() - start, machine_size=machine.size()
        )
        start = time.perf_counter()
    with _spans.span("stage:convert"):
        conversion = convert_machine(machine, name=f"{name}-inner")
    if obs is not None:
        obs.on_stage(
            "convert",
            time.perf_counter() - start,
            inner_states=conversion.protocol.state_count,
            shift=conversion.shift,
        )
        start = time.perf_counter()
    with _spans.span("stage:broadcast"):
        protocol = with_output_broadcast(conversion.protocol, name=f"{name}-protocol")
    if obs is not None:
        obs.on_stage(
            "broadcast", time.perf_counter() - start, states=protocol.state_count
        )
    return PipelineResult(
        program=program,
        program_size=program_size(program),
        machine=machine,
        machine_size=machine.size(),
        conversion=conversion,
        inner_protocol=conversion.protocol,
        protocol=protocol,
        shift=conversion.shift,
    )


def compile_threshold_protocol(
    n: int,
    *,
    error_checking: bool = True,
    observer: Optional[Observer] = None,
) -> PipelineResult:
    """Theorem 1's protocol: O(n) states deciding ``x ≥ k + |F|`` with
    ``k = threshold(n) ≥ 2^(2^(n-1))``."""
    from repro.lipton.construction import build_threshold_program

    program = build_threshold_program(n, error_checking=error_checking)
    return compile_program(program, name=f"lipton-n{n}", observer=observer)
