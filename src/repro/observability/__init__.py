"""repro.observability — structured tracing, metrics and profiling hooks.

The instrumentation layer for the whole simulator stack:

* :mod:`~repro.observability.events` — the structured event vocabulary
  (interaction steps, detect outcomes, restarts, output flips, silence
  checks, instruction dispatch, Lipton level progression, pipeline
  stages) and their JSONL encoding;
* :mod:`~repro.observability.observer` — the :class:`Observer` hook
  protocol with a zero-overhead null default, plus
  :class:`CompositeObserver` for fan-out;
* :mod:`~repro.observability.trace` — :class:`TraceRecorder`: capture
  events, sample configuration history every k steps, export JSONL;
* :mod:`~repro.observability.metrics` — :class:`Metrics` registry
  (counters / gauges / histograms / timers) and :class:`MetricsObserver`;
* :mod:`~repro.observability.report` — :func:`summarize`, the
  human-readable run digest;
* :mod:`~repro.observability.runners` — observed reference workloads
  behind ``python -m repro trace`` / ``python -m repro stats``
  (imported lazily: ``from repro.observability import runners``).

Every execution driver (``simulate``/``decide``, the schedulers, the
program and machine interpreters, and ``compile_program``) accepts an
``observer=`` keyword; ``None`` (the default) keeps the hot loops
branch-only.
"""

from repro.observability.events import (
    ALL_KINDS,
    HOT_KINDS,
    TraceEvent,
    events_to_jsonl,
    lipton_level,
)
from repro.observability.metrics import (
    Counter,
    Gauge,
    Histogram,
    Metrics,
    MetricsObserver,
    transition_label,
)
from repro.observability.observer import (
    NULL_OBSERVER,
    CompositeObserver,
    NullObserver,
    Observer,
    live,
)
from repro.observability.report import summarize
from repro.observability.trace import TraceRecorder

__all__ = [
    "ALL_KINDS",
    "HOT_KINDS",
    "TraceEvent",
    "events_to_jsonl",
    "lipton_level",
    "Counter",
    "Gauge",
    "Histogram",
    "Metrics",
    "MetricsObserver",
    "transition_label",
    "NULL_OBSERVER",
    "CompositeObserver",
    "NullObserver",
    "Observer",
    "live",
    "summarize",
    "TraceRecorder",
]
