"""repro.observability — structured tracing, metrics and profiling hooks.

The instrumentation layer for the whole simulator stack:

* :mod:`~repro.observability.events` — the structured event vocabulary
  (interaction steps, detect outcomes, restarts, output flips, silence
  checks, instruction dispatch, Lipton level progression, pipeline
  stages) and their JSONL encoding;
* :mod:`~repro.observability.observer` — the :class:`Observer` hook
  protocol with a zero-overhead null default, plus
  :class:`CompositeObserver` for fan-out;
* :mod:`~repro.observability.trace` — :class:`TraceRecorder`: capture
  events, sample configuration history every k steps, export JSONL;
* :mod:`~repro.observability.metrics` — :class:`Metrics` registry
  (counters / gauges / histograms / timers) and :class:`MetricsObserver`;
* :mod:`~repro.observability.report` — :func:`summarize`, the
  human-readable run digest;
* :mod:`~repro.observability.spans` — hierarchical :class:`Span` /
  :class:`SpanTracer` timing with cross-process merge and an ambient
  (contextvar) tracer every layer can reach without plumbing;
* :mod:`~repro.observability.profile` — :class:`ProfilingObserver`,
  engine-level ``sim.*`` throughput/churn metrics;
* :mod:`~repro.observability.export` — Prometheus text exposition and
  per-run provenance manifests (:class:`RunManifest`);
* :mod:`~repro.observability.live` — event bus, HTTP/SSE telemetry
  server and the ``repro top`` renderer (import the submodule
  explicitly: ``from repro.observability.live import TelemetryServer``;
  the package attribute ``live`` stays the observer-normalising
  *function*);
* :mod:`~repro.observability.runners` — observed reference workloads
  behind ``python -m repro trace`` / ``python -m repro stats``
  (imported lazily: ``from repro.observability import runners``).

Every execution driver (``simulate``/``decide``, the schedulers, the
program and machine interpreters, and ``compile_program``) accepts an
``observer=`` keyword; ``None`` (the default) keeps the hot loops
branch-only.
"""

from repro.observability.events import (
    ALL_KINDS,
    HOT_KINDS,
    TraceEvent,
    events_to_jsonl,
    lipton_level,
)
from repro.observability.export import (
    RunManifest,
    build_manifest,
    fault_plan_digest,
    metrics_to_prometheus,
)
from repro.observability.metrics import (
    Counter,
    Gauge,
    Histogram,
    Metrics,
    MetricsObserver,
    transition_label,
)
from repro.observability.observer import (
    NULL_OBSERVER,
    CompositeObserver,
    NullObserver,
    Observer,
    live,
)
from repro.observability.profile import ProfilingObserver
from repro.observability.report import summarize
from repro.observability.spans import (
    Span,
    SpanTracer,
    activate,
    current,
    span,
)
from repro.observability.trace import TraceRecorder

# ``live`` names both the observer-normalising function and the streaming
# submodule.  Importing the submodule binds it over the function on the
# package, so do that eagerly and rebind the function afterwards: the
# package attribute is then stably the function, while
# ``sys.modules["repro.observability.live"]`` (and explicit
# ``from repro.observability.live import ...``) reach the submodule.
import repro.observability.live  # noqa: E402,F401  (eager: see above)

from repro.observability.observer import live  # noqa: E402,F811

__all__ = [
    "ALL_KINDS",
    "HOT_KINDS",
    "TraceEvent",
    "events_to_jsonl",
    "lipton_level",
    "RunManifest",
    "build_manifest",
    "fault_plan_digest",
    "metrics_to_prometheus",
    "Counter",
    "Gauge",
    "Histogram",
    "Metrics",
    "MetricsObserver",
    "transition_label",
    "NULL_OBSERVER",
    "CompositeObserver",
    "NullObserver",
    "Observer",
    "live",
    "ProfilingObserver",
    "summarize",
    "Span",
    "SpanTracer",
    "activate",
    "current",
    "span",
    "TraceRecorder",
]
