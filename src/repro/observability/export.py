"""Export formats: Prometheus text exposition and provenance manifests.

Two machine-facing serialisations of a run's telemetry:

* :func:`metrics_to_prometheus` renders a
  :class:`~repro.observability.metrics.Metrics` registry in the
  Prometheus text exposition format (version 0.0.4) — the format any
  Prometheus-compatible scraper, including the ``/metrics`` endpoint in
  :mod:`repro.observability.live`, expects.  The output is deterministic
  (families and labels sorted, no timestamps) so it can be pinned by a
  golden-file test;
* :class:`RunManifest` / :func:`build_manifest` produce the per-run
  **provenance manifest**: everything needed to attribute, reproduce and
  audit a run — content fingerprints of the protocol/program (from
  :mod:`repro.runtime.cache`), the root seed, the fault-plan digest, the
  scheduler and job count, cache hit/miss counts, and the package
  version.  ``repro trace`` writes one next to every trace, and the
  future run-registry service will key on it.
"""

from __future__ import annotations

import hashlib
import json
import re
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from repro.observability.metrics import Metrics, bucket_bound

# ----------------------------------------------------------------------
# Prometheus text exposition
# ----------------------------------------------------------------------
#: ``name[key]`` instrument names become a ``name`` family with a
#: ``key="..."`` label — e.g. ``transition[a,b->c,d]`` →
#: ``repro_transition_total{key="a,b->c,d"}``.
_BRACKETED = re.compile(r"^(?P<family>[^\[\]]+)\[(?P<label>.*)\]$")
_INVALID_METRIC_CHARS = re.compile(r"[^a-zA-Z0-9_:]")


def _family_and_label(name: str) -> Tuple[str, Optional[str]]:
    match = _BRACKETED.match(name)
    if match:
        return match.group("family"), match.group("label")
    return name, None


def _metric_name(namespace: str, family: str, suffix: str = "") -> str:
    raw = f"{namespace}_{family}{suffix}" if namespace else f"{family}{suffix}"
    sanitized = _INVALID_METRIC_CHARS.sub("_", raw)
    if sanitized and sanitized[0].isdigit():
        sanitized = "_" + sanitized
    return sanitized


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _fmt_labels(labels: Dict[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{key}="{_escape_label(value)}"' for key, value in sorted(labels.items())
    )
    return "{" + inner + "}"


def _fmt_value(value: Any) -> str:
    if value is None:
        return "NaN"
    if value != value:  # NaN
        return "NaN"
    if value in (float("inf"), float("-inf")):
        return "+Inf" if value > 0 else "-Inf"
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


def metrics_to_prometheus(metrics: Metrics, *, namespace: str = "repro") -> str:
    """Render ``metrics`` in the Prometheus text exposition format.

    Counters get a ``_total`` suffix; histograms expose cumulative
    ``_bucket{le="..."}`` series derived from the power-of-two buckets
    plus ``_count``/``_sum`` (and ``_min``/``_max`` gauges, which the
    native format lacks but the summaries track exactly).  Instrument
    names of the form ``family[key]`` fold into one family with a
    ``key`` label.  Output is fully sorted and timestamp-free, so equal
    registries render byte-identically.
    """
    lines: List[str] = []

    # Counters — grouped into families so bracketed variants share a HELP.
    families: Dict[str, List[Tuple[Optional[str], int]]] = {}
    for name, counter in metrics.counters.items():
        family, label = _family_and_label(name)
        families.setdefault(family, []).append((label, counter.value))
    for family in sorted(families):
        metric = _metric_name(namespace, family, "_total")
        lines.append(f"# TYPE {metric} counter")
        for label, value in sorted(
            families[family], key=lambda pair: (pair[0] is not None, pair[0] or "")
        ):
            labels = {"key": label} if label is not None else {}
            lines.append(f"{metric}{_fmt_labels(labels)} {_fmt_value(value)}")

    # Gauges.
    gauge_families: Dict[str, List[Tuple[Optional[str], Any]]] = {}
    for name, gauge in metrics.gauges.items():
        family, label = _family_and_label(name)
        gauge_families.setdefault(family, []).append((label, gauge.value))
    for family in sorted(gauge_families):
        metric = _metric_name(namespace, family)
        lines.append(f"# TYPE {metric} gauge")
        for label, value in sorted(
            gauge_families[family],
            key=lambda pair: (pair[0] is not None, pair[0] or ""),
        ):
            labels = {"key": label} if label is not None else {}
            lines.append(f"{metric}{_fmt_labels(labels)} {_fmt_value(value)}")

    # Histograms.
    for name in sorted(metrics.histograms):
        histogram = metrics.histograms[name]
        family, label = _family_and_label(name)
        metric = _metric_name(namespace, family)
        base_labels = {"key": label} if label is not None else {}
        lines.append(f"# TYPE {metric} histogram")
        cumulative = 0
        for key in sorted(histogram.buckets):
            cumulative += histogram.buckets[key]
            le = bucket_bound(key)
            labels = dict(base_labels, le=_fmt_value(le))
            lines.append(f"{metric}_bucket{_fmt_labels(labels)} {cumulative}")
        labels = dict(base_labels, le="+Inf")
        lines.append(f"{metric}_bucket{_fmt_labels(labels)} {histogram.count}")
        lines.append(
            f"{metric}_sum{_fmt_labels(base_labels)} {_fmt_value(histogram.total)}"
        )
        lines.append(f"{metric}_count{_fmt_labels(base_labels)} {histogram.count}")
        for stat in ("min", "max"):
            value = getattr(histogram, stat)
            if value is not None:
                lines.append(
                    f"{metric}_{stat}{_fmt_labels(base_labels)} {_fmt_value(value)}"
                )

    return "\n".join(lines) + ("\n" if lines else "")


# ----------------------------------------------------------------------
# Provenance manifest
# ----------------------------------------------------------------------
MANIFEST_VERSION = 1


def fault_plan_digest(plan: Any) -> Optional[str]:
    """A stable blake2b digest of a fault plan's defining structure
    (``None`` for no plan).  Fault records are frozen dataclasses whose
    ``repr`` is a complete deterministic rendering, same trick as
    :func:`repro.runtime.cache.program_fingerprint`."""
    if plan is None:
        return None
    h = hashlib.blake2b(digest_size=16)
    h.update(repr(plan).encode("utf-8"))
    return h.hexdigest()


@dataclass
class RunManifest:
    """Provenance of one observed run: the audit trail a registry keys on.

    Everything here is either an input (fingerprints, seed, scheduler,
    jobs) or a summary cheap enough to always record (cache stats,
    verdict).  ``extra`` carries target-specific fields (n, population,
    attempts...).
    """

    target: str
    seed: Optional[int] = None
    version: Optional[str] = None
    manifest_version: int = MANIFEST_VERSION
    protocol_fingerprint: Optional[str] = None
    program_fingerprint: Optional[str] = None
    fault_plan: Optional[str] = None
    scheduler: Optional[str] = None
    #: Engine family the run executed under ("legacy"/"fast"/"batched");
    #: ``None`` when the target has no protocol-level simulation.
    engine: Optional[str] = None
    jobs: Optional[int] = None
    cache: Dict[str, int] = field(default_factory=dict)
    outcome: Optional[str] = None
    #: Severity → count summary of the static checks run against the
    #: target's artifacts (``repro.analysis.statics``); ``None`` when no
    #: checks were run for this manifest.
    diagnostics: Optional[Dict[str, int]] = None
    extra: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True, default=repr)

    def write_json(self, path) -> Path:
        path = Path(path)
        path.write_text(self.to_json() + "\n", encoding="utf-8")
        return path

    @classmethod
    def from_dict(cls, raw: Dict[str, Any]) -> "RunManifest":
        known = {f for f in cls.__dataclass_fields__}  # noqa: C416
        return cls(**{k: v for k, v in raw.items() if k in known})

    @classmethod
    def read_json(cls, path) -> "RunManifest":
        return cls.from_dict(json.loads(Path(path).read_text(encoding="utf-8")))


#: Scheduler class → engine family, for manifest derivation.
_SCHEDULER_ENGINES = {
    "BatchedScheduler": "batched",
    "FastEnabledScheduler": "fast",
    "FastUniformScheduler": "fast",
    "EnabledTransitionScheduler": "legacy",
    "UniformPairScheduler": "legacy",
}


def build_manifest(
    target: str,
    *,
    seed: Optional[int] = None,
    protocol: Any = None,
    program: Any = None,
    fault_plan: Any = None,
    scheduler: Any = None,
    engine: Optional[str] = None,
    jobs: Optional[int] = None,
    cache: Any = None,
    outcome: Optional[str] = None,
    diagnostics: Any = None,
    **extra: Any,
) -> RunManifest:
    """Assemble a :class:`RunManifest`, fingerprinting whatever inputs are
    provided (``protocol``/``program`` objects are hashed via
    :mod:`repro.runtime.cache`; ``cache`` is a stats mapping or any
    object with a ``stats()`` method, defaulting to the process-wide
    artifact cache).

    ``engine`` defaults from the scheduler's family when one is given,
    else — for protocol targets that ran the default scheduler — from the
    resolved ``REPRO_ENGINE`` preference; targets with no protocol-level
    simulation leave it ``None``.

    ``diagnostics`` accepts either a ready severity→count mapping or a
    list of :class:`repro.core.diagnostics.Diagnostic` (summarised via
    :func:`~repro.core.diagnostics.count_by_severity`); ``None`` records
    that no static checks ran.
    """
    import repro
    from repro.runtime.cache import (
        artifact_cache,
        program_fingerprint,
        protocol_fingerprint,
    )

    if cache is None:
        cache = artifact_cache()
    scheduler_name = None
    if scheduler is not None:
        scheduler_name = (
            scheduler if isinstance(scheduler, str) else type(scheduler).__name__
        )
    if engine is None:
        if scheduler_name is not None:
            engine = _SCHEDULER_ENGINES.get(scheduler_name)
        elif protocol is not None:
            from repro.core.simulation import resolve_engine

            engine = resolve_engine(None) or "fast"
    diagnostic_counts: Optional[Dict[str, int]] = None
    if diagnostics is not None:
        if isinstance(diagnostics, dict):
            diagnostic_counts = {k: int(v) for k, v in diagnostics.items()}
        else:
            from repro.core.diagnostics import count_by_severity

            diagnostic_counts = dict(count_by_severity(diagnostics))
    return RunManifest(
        target=target,
        seed=seed,
        version=getattr(repro, "__version__", None),
        protocol_fingerprint=(
            protocol_fingerprint(protocol) if protocol is not None else None
        ),
        program_fingerprint=(
            program_fingerprint(program) if program is not None else None
        ),
        fault_plan=fault_plan_digest(fault_plan),
        scheduler=scheduler_name,
        engine=engine,
        jobs=jobs,
        cache=dict(cache.stats() if hasattr(cache, "stats") else cache),
        outcome=outcome,
        diagnostics=diagnostic_counts,
        extra={k: v for k, v in extra.items() if v is not None},
    )
