"""Profiling hooks: cheap engine-level counters behind the observer seam.

:class:`ProfilingObserver` turns the event stream the fastpath engine
(:mod:`repro.core.fastpath`) already emits — batch events for collapsed
null/productive steps, run summaries enriched with index statistics —
into ``sim.*`` counters and histograms:

* ``sim.null_skipped`` — null steps skipped wholesale by the geometric
  skip-ahead (never individually simulated);
* ``sim.collapsed`` / ``sim.batches`` and the ``sim.batch_size``
  histogram — batch-collapse effectiveness;
* ``sim.steps_per_second`` histogram — per-run interaction throughput,
  wall-clocked from ``run_start`` to ``run_end``;
* ``sim.enabled_keys`` / ``sim.index_churn`` histograms — the enabled
  set's final size and how often the :class:`EnabledIndex` membership
  changed through its repair path (batch apply / fault repair);
* ``churn.*`` — dynamic-population accounting (joins/leaves fired,
  agents added/removed, final population per churned run) fed by the
  churn fault kinds of :mod:`repro.resilience.churn`.

Everything here rides the *existing* zero-overhead observer protocol: the
engine's hot loops already skip all observer work when ``live(observer)``
is ``None``, and the per-step costs with an observer attached are one
method call — so the ``null_observer.overhead_ratio`` gate in
``BENCH_simulator.json`` is untouched by construction.  Attach it
standalone, or alongside a recorder via ``CompositeObserver``.
"""

from __future__ import annotations

import time
from typing import Any, Dict, Optional

from repro.observability import events as ev
from repro.observability.metrics import Metrics
from repro.observability.observer import Observer


class ProfilingObserver(Observer):
    """Aggregate engine-level performance signals into ``sim.*`` metrics."""

    def __init__(self, metrics: Optional[Metrics] = None):
        self.metrics = metrics if metrics is not None else Metrics()
        self._run_start: Dict[str, float] = {}
        self._run_start_step: Dict[str, int] = {}

    # -- run lifecycle --------------------------------------------------
    def on_run_start(self, layer: str, **data: Any) -> None:
        self._run_start[layer] = time.perf_counter()
        self._run_start_step[layer] = 0

    def on_run_end(self, step: int, layer: str, **data: Any) -> None:
        started = self._run_start.pop(layer, None)
        self._run_start_step.pop(layer, None)
        if started is not None and step:
            elapsed = time.perf_counter() - started
            if elapsed > 0:
                self.metrics.histogram("sim.steps_per_second").observe(
                    step / elapsed
                )
        enabled_keys = data.get("enabled_keys")
        if enabled_keys is not None:
            self.metrics.histogram("sim.enabled_keys").observe(enabled_keys)
        index_churn = data.get("index_churn")
        if index_churn is not None:
            self.metrics.histogram("sim.index_churn").observe(index_churn)
            self.metrics.counter("sim.index_churn_total").inc(index_churn)
        engine = data.get("engine")
        if engine:
            self.metrics.counter(f"sim.engine[{engine}]").inc()
        batches = data.get("batches")
        if batches is not None:
            self.metrics.histogram("sim.batch.batches_per_run").observe(batches)
        collisions = data.get("collisions")
        if collisions is not None:
            self.metrics.counter("sim.batch.collisions").inc(collisions)
        joined = data.get("joined")
        if joined:
            self.metrics.counter("churn.joined").inc(joined)
        departed = data.get("departed")
        if departed:
            self.metrics.counter("churn.departed").inc(departed)
        if joined or departed:
            population = data.get("population")
            if population is not None:
                self.metrics.histogram("churn.final_population").observe(
                    population
                )

    # -- engine events --------------------------------------------------
    def on_batch(self, step, *, kind, count, transition=None, productive=0) -> None:
        self.metrics.counter("sim.batches").inc()
        self.metrics.counter(f"sim.batch.{kind}").inc()
        self.metrics.counter("sim.collapsed").inc(count)
        self.metrics.histogram("sim.batch_size").observe(count)
        if transition is None:
            # Geometric skip-ahead / batched null chunks: null steps that
            # were accounted without being individually simulated.
            self.metrics.counter("sim.null_skipped").inc(count)

    def on_interaction(self, step, transition, pair, productive) -> None:
        self.metrics.counter("sim.interactions").inc()

    def on_scheduler_select(self, step, *, scheduler, null, candidates=0, weight=0):
        if candidates:
            self.metrics.histogram("sim.enabled_candidates").observe(candidates)

    def on_fault(self, step, kind, layer, **data) -> None:
        self.metrics.counter("sim.faults").inc()
        if kind == "join":
            self.metrics.counter("churn.joins").inc()
            self.metrics.counter("churn.agents_joined").inc(
                data.get("agents", 1)
            )
        elif kind == "leave":
            self.metrics.counter("churn.leaves").inc()
            self.metrics.counter("churn.agents_departed").inc(
                data.get("agents", 1)
            )
        elif kind == "adversarial":
            self.metrics.counter("churn.adversarial_windows").inc()

    # -- export ---------------------------------------------------------
    def summary(self) -> Dict[str, Any]:
        """Headline numbers as a plain dict (for quick printing/tests)."""
        counters = self.metrics.counters
        histograms = self.metrics.histograms
        out: Dict[str, Any] = {
            name: counter.value for name, counter in sorted(counters.items())
        }
        sps = histograms.get("sim.steps_per_second")
        if sps is not None and sps.count:
            out["sim.steps_per_second.mean"] = sps.mean
        batch = histograms.get("sim.batch_size")
        if batch is not None and batch.count:
            out["sim.batch_size.mean"] = batch.mean
        return out

    # Keep hot-path cost at exactly one dispatched call: the generic
    # ``record`` sink would double-dispatch, so leave it as the base
    # no-op for kinds this profiler does not aggregate.
    def record(self, kind: str, step: Optional[int], **data: Any) -> None:
        if kind == ev.ATTEMPT:
            self.metrics.counter("sim.attempts").inc()
