"""Human-readable run digests from recorded metrics and traces."""

from __future__ import annotations

from typing import List, Optional, Union

from repro.observability import events as ev
from repro.observability.metrics import Metrics, MetricsObserver
from repro.observability.trace import TraceRecorder


def _fmt(value) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:,.4g}"
    return f"{value:,}"


def summarize(
    metrics: Optional[Union[Metrics, MetricsObserver]] = None,
    trace: Optional[TraceRecorder] = None,
    *,
    top_transitions: int = 5,
) -> str:
    """Render a run digest: headline counters, timing histograms, the
    hottest transitions and (when a trace is supplied) the event mix and
    Lipton level progression."""
    if isinstance(metrics, MetricsObserver):
        metrics = metrics.metrics
    lines: List[str] = ["run digest", "=========="]

    if metrics is not None:
        headline = [
            "runs",
            "attempts",
            "interactions",
            "productive",
            "null_steps",
            "steps",
            "restarts",
            "detect_true",
            "detect_false",
            "detect_empty",
            "output_flips",
            "silence_checks",
            "snapshots",
            "hangs",
        ]
        for name in headline:
            counter = metrics.counters.get(name)
            if counter is not None and counter.value:
                lines.append(f"  {name:<16} {_fmt(counter.value)}")
        base = metrics.counters.get("interactions") or metrics.counters.get("steps")
        productive = metrics.counters.get("productive")
        if base and base.value and productive:
            ratio = productive.value / base.value
            lines.append(f"  {'productive_ratio':<16} {ratio:.3f}")

        for name, histogram in sorted(metrics.histograms.items()):
            if histogram.count == 0:
                continue
            lines.append(
                f"  {name:<24} count={_fmt(histogram.count)} "
                f"mean={_fmt(histogram.mean)} min={_fmt(histogram.min)} "
                f"max={_fmt(histogram.max)}"
            )
        for name, gauge in sorted(metrics.gauges.items()):
            if gauge.value is not None:
                lines.append(f"  {name:<24} {_fmt(gauge.value)}")

        fires = [
            (counter.value, name[len("transition[") : -1])
            for name, counter in metrics.counters.items()
            if name.startswith("transition[")
        ]
        if fires:
            fires.sort(reverse=True)
            lines.append(f"  top transitions ({min(top_transitions, len(fires))}"
                         f" of {len(fires)}):")
            for value, label in fires[:top_transitions]:
                lines.append(f"    {_fmt(value):>12}  {label}")
        breakdowns = [
            (counter.value, name)
            for name, counter in metrics.counters.items()
            if name.startswith(("statement[", "instruction["))
        ]
        if breakdowns:
            breakdowns.sort(reverse=True)
            lines.append("  step breakdown:")
            for value, name in breakdowns:
                lines.append(f"    {_fmt(value):>12}  {name}")
        # Subsystem counter groups: pool fan-out, artifact cache, span
        # completions, engine profiling.  Grouped so a parallel or traced
        # run's digest shows where the runtime spent its effort.
        for prefix, title in (
            ("pool.", "pool"),
            ("cache.", "cache"),
            ("span.", "spans"),
            ("sim.", "engine"),
        ):
            grouped = [
                (name, counter.value)
                for name, counter in sorted(metrics.counters.items())
                if name.startswith(prefix) and counter.value
            ]
            if grouped:
                lines.append(f"  {title}:")
                for name, value in grouped:
                    lines.append(f"    {_fmt(value):>12}  {name[len(prefix):]}")

    if trace is not None:
        counts = trace.kind_counts()
        if counts:
            lines.append("  events:")
            for kind, count in sorted(counts.items(), key=lambda kv: -kv[1]):
                lines.append(f"    {_fmt(count):>12}  {kind}")
        if trace.dropped:
            lines.append(f"  (dropped {_fmt(trace.dropped)} events over the cap)")
        levels = trace.level_progression()
        if levels:
            shown = ", ".join(str(level) for level in levels[-12:])
            prefix = "…, " if len(levels) > 12 else ""
            lines.append(f"  lipton levels:  {prefix}{shown}")
        restarts = trace.events_of(ev.RESTART)
        if restarts:
            steps = [event.step for event in restarts if event.step is not None]
            if steps:
                gaps = [b - a for a, b in zip(steps, steps[1:])]
                mean_gap = sum(gaps) / len(gaps) if gaps else None
                lines.append(
                    f"  restarts:  first@{_fmt(steps[0])} last@{_fmt(steps[-1])}"
                    + (f" mean-gap={_fmt(mean_gap)}" if mean_gap is not None else "")
                )

    if len(lines) == 2:
        lines.append("  (nothing recorded)")
    return "\n".join(lines)
