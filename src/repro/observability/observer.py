"""The observer protocol: hooks every execution layer reports into.

Design constraints (see DESIGN.md → Observability):

* **zero-overhead null default** — drivers accept ``observer=None`` and
  guard every emission with a single ``is not None`` branch.  Passing
  :data:`NULL_OBSERVER` (or a bare :class:`Observer` / ``NullObserver``)
  is normalised to ``None`` by :func:`live` at run entry, so the null
  observer costs exactly as much as no observer at all;
* **one generic sink** — every named hook funnels into :meth:`Observer.record`,
  so recorders (:class:`~repro.observability.trace.TraceRecorder`) override a
  single method, while aggregators
  (:class:`~repro.observability.metrics.MetricsObserver`) override the named
  hooks they care about;
* **layer tagging** — hooks carry a ``layer`` argument
  (protocol/program/machine/pipeline) so one observer can watch a whole
  compiled stack at once.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Sequence

from repro.observability import events as ev


class Observer:
    """Base observer: all hooks are no-ops.

    ``snapshot_interval`` (when set to a positive int) asks instrumented
    drivers to call :meth:`on_snapshot` with the full configuration every
    that-many steps — ppsim-style sampled history.
    """

    snapshot_interval: Optional[int] = None

    # -- generic sink ---------------------------------------------------
    def record(self, kind: str, step: Optional[int], **data: Any) -> None:
        """Receive one structured event.  Default: drop it."""

    # -- run lifecycle --------------------------------------------------
    def on_run_start(self, layer: str, **data: Any) -> None:
        self.record(ev.RUN_START, 0, layer=layer, **data)

    def on_run_end(self, step: int, layer: str, **data: Any) -> None:
        self.record(ev.RUN_END, step, layer=layer, **data)

    # -- protocol layer -------------------------------------------------
    def on_interaction(
        self,
        step: int,
        transition: Any,
        pair: Any,
        productive: bool,
    ) -> None:
        self.record(
            ev.INTERACTION,
            step,
            layer=ev.LAYER_PROTOCOL,
            transition=transition,
            pair=pair,
            productive=productive,
        )

    def on_batch(
        self,
        step: int,
        *,
        kind: str,
        count: int,
        transition: Any = None,
        productive: int = 0,
    ) -> None:
        """``count`` scheduler steps collapsed into one event, ending at
        interaction index ``step``.  ``kind`` is ``"null_skip"`` (uniform
        fast path: a geometric run of null steps), ``"collapse"`` (the
        sole enabled transition applied ``count`` times), ``"multinomial"``
        (batched engine: one transition's chunk of a sampled batch, or —
        with ``transition=None`` — the batch's null interactions) or
        ``"collision"`` (the single agent-reusing interaction closing a
        batch); ``productive`` is how many of the collapsed steps changed
        the configuration."""
        self.record(
            ev.BATCH,
            step,
            layer=ev.LAYER_PROTOCOL,
            batch=kind,
            count=count,
            transition=transition,
            productive=productive,
        )

    def on_scheduler_select(
        self,
        step: int,
        *,
        scheduler: str,
        null: bool,
        candidates: int = 0,
        weight: int = 0,
    ) -> None:
        self.record(
            ev.SCHEDULER,
            step,
            layer=ev.LAYER_PROTOCOL,
            scheduler=scheduler,
            null=null,
            candidates=candidates,
            weight=weight,
        )

    def on_silence_check(self, step: int, silent: bool) -> None:
        self.record(ev.SILENCE_CHECK, step, layer=ev.LAYER_PROTOCOL, silent=silent)

    # -- program / machine layers --------------------------------------
    def on_statement(self, step: int, kind: str, detail: Optional[str] = None) -> None:
        self.record(
            ev.STATEMENT, step, layer=ev.LAYER_PROGRAM, statement=kind, detail=detail
        )

    def on_instruction(self, step: int, ip: int, kind: str) -> None:
        self.record(ev.INSTRUCTION, step, layer=ev.LAYER_MACHINE, ip=ip, instruction=kind)

    def on_detect(
        self, step: int, register: str, nonzero: bool, answer: bool, layer: str
    ) -> None:
        self.record(
            ev.DETECT,
            step,
            layer=layer,
            register=register,
            nonzero=nonzero,
            answer=answer,
        )

    def on_restart(
        self,
        step: int,
        count: int,
        layer: str,
        registers: Optional[Dict[str, int]] = None,
    ) -> None:
        self.record(ev.RESTART, step, layer=layer, count=count, registers=registers)

    def on_hang(self, step: int, layer: str, register: Optional[str] = None) -> None:
        self.record(ev.HANG, step, layer=layer, register=register)

    def on_fault(self, step: int, kind: str, layer: str, **data: Any) -> None:
        """An injected fault (see :mod:`repro.resilience`) fired at the
        layer's step counter ``step``.  ``kind`` names the fault type
        (``corrupt``, ``reset``, ``drop``, ``duplicate``, ``unfair``)."""
        self.record(ev.FAULT, step, layer=layer, fault=kind, **data)

    # -- shared ---------------------------------------------------------
    def on_output_flip(self, step: int, output: Any, layer: str) -> None:
        self.record(ev.OUTPUT_FLIP, step, layer=layer, output=output)

    def on_snapshot(self, step: int, snapshot: Dict[Any, int], layer: str) -> None:
        self.record(ev.SNAPSHOT, step, layer=layer, configuration=snapshot)

    def on_attempt(self, attempt: int, seed: int) -> None:
        self.record(ev.ATTEMPT, 0, layer=ev.LAYER_PROTOCOL, attempt=attempt, seed=seed)

    # -- pipeline layer -------------------------------------------------
    def on_stage(self, name: str, seconds: float, **data: Any) -> None:
        self.record(
            ev.STAGE, None, layer=ev.LAYER_PIPELINE, stage=name, seconds=seconds, **data
        )


class NullObserver(Observer):
    """Explicit do-nothing observer.  :func:`live` strips it, so passing
    one is guaranteed to leave the instrumented hot loops untouched."""


#: Shared null instance, for callers who want an explicit default object.
NULL_OBSERVER = NullObserver()


def live(observer: Optional[Observer]) -> Optional[Observer]:
    """Normalise an ``observer=`` argument for a hot loop: ``None`` for
    anything with no behaviour (``None``, ``NullObserver``, a bare
    ``Observer``), the observer itself otherwise."""
    if observer is None or observer.__class__ in (Observer, NullObserver):
        return None
    return observer


class CompositeObserver(Observer):
    """Fan one event stream out to several observers (e.g. a
    :class:`TraceRecorder` and a :class:`MetricsObserver` at once)."""

    def __init__(self, *observers: Observer):
        self.observers: Sequence[Observer] = [
            obs for obs in (live(o) for o in observers) if obs is not None
        ]
        intervals = [
            o.snapshot_interval for o in self.observers if o.snapshot_interval
        ]
        self.snapshot_interval = min(intervals) if intervals else None

    def record(self, kind: str, step: Optional[int], **data: Any) -> None:
        for obs in self.observers:
            obs.record(kind, step, **data)

    def on_run_start(self, layer: str, **data: Any) -> None:
        for obs in self.observers:
            obs.on_run_start(layer, **data)

    def on_run_end(self, step: int, layer: str, **data: Any) -> None:
        for obs in self.observers:
            obs.on_run_end(step, layer, **data)

    def on_interaction(self, step, transition, pair, productive) -> None:
        for obs in self.observers:
            obs.on_interaction(step, transition, pair, productive)

    def on_batch(self, step, **kwargs) -> None:
        for obs in self.observers:
            obs.on_batch(step, **kwargs)

    def on_scheduler_select(self, step, **kwargs) -> None:
        for obs in self.observers:
            obs.on_scheduler_select(step, **kwargs)

    def on_silence_check(self, step, silent) -> None:
        for obs in self.observers:
            obs.on_silence_check(step, silent)

    def on_statement(self, step, kind, detail=None) -> None:
        for obs in self.observers:
            obs.on_statement(step, kind, detail)

    def on_instruction(self, step, ip, kind) -> None:
        for obs in self.observers:
            obs.on_instruction(step, ip, kind)

    def on_detect(self, step, register, nonzero, answer, layer) -> None:
        for obs in self.observers:
            obs.on_detect(step, register, nonzero, answer, layer)

    def on_restart(self, step, count, layer, registers=None) -> None:
        for obs in self.observers:
            obs.on_restart(step, count, layer, registers)

    def on_hang(self, step, layer, register=None) -> None:
        for obs in self.observers:
            obs.on_hang(step, layer, register)

    def on_fault(self, step, kind, layer, **data) -> None:
        for obs in self.observers:
            obs.on_fault(step, kind, layer, **data)

    def on_output_flip(self, step, output, layer) -> None:
        for obs in self.observers:
            obs.on_output_flip(step, output, layer)

    def on_snapshot(self, step, snapshot, layer) -> None:
        for obs in self.observers:
            obs.on_snapshot(step, snapshot, layer)

    def on_attempt(self, attempt, seed) -> None:
        for obs in self.observers:
            obs.on_attempt(attempt, seed)

    def on_stage(self, name, seconds, **data) -> None:
        for obs in self.observers:
            obs.on_stage(name, seconds, **data)
