"""Trace recording: capture structured events, export them as JSONL.

:class:`TraceRecorder` is an :class:`~repro.observability.observer.Observer`
that appends every event to an in-memory list and can write the result as
one JSON object per line.  It also

* samples configuration history (``snapshot_every=k`` asks the
  instrumented driver for a full configuration snapshot every k steps —
  the ppsim-style recorded history), and
* derives **Lipton level progression** events: whenever an event carries a
  register snapshot (snapshots, restarts, run ends), the recorder computes
  the highest active Section 6 level and synthesises a ``level`` event when
  it changes.
"""

from __future__ import annotations

from collections import Counter as _Counter, deque
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional

from repro.observability import events as ev
from repro.observability.events import TraceEvent, events_to_jsonl, lipton_level
from repro.observability.observer import Observer


class TraceRecorder(Observer):
    """Record every observed event.

    Parameters
    ----------
    snapshot_every:
        Ask drivers for a configuration snapshot every that-many steps
        (``None`` disables sampled history).
    kinds:
        Optional whitelist of event kinds to keep.  Use
        ``ALL_KINDS - HOT_KINDS`` to skip the per-step firehose while
        keeping the diagnostic events.
    max_events:
        Bound on stored events.  What happens past the bound is chosen by
        ``overflow``; either way :attr:`dropped` counts the events that
        are no longer stored, a single ``truncated`` marker event is
        recorded the first time the bound trips, and :attr:`truncated`
        flips to ``True`` — so a bounded trace is self-describing.
    overflow:
        ``"drop"`` (default) keeps the *oldest* ``max_events`` events and
        discards new arrivals — the cheap mode, and the PR-4 behaviour.
        ``"ring"`` keeps the *newest* ``max_events`` events in a
        ``deque(maxlen=...)`` ring buffer, evicting the oldest — the mode
        for long lemma4 sweeps where the interesting events are recent.
    """

    def __init__(
        self,
        *,
        snapshot_every: Optional[int] = None,
        kinds: Optional[Iterable[str]] = None,
        max_events: Optional[int] = None,
        overflow: str = "drop",
        track_levels: bool = True,
    ):
        if overflow not in ("drop", "ring"):
            raise ValueError(f"overflow must be 'drop' or 'ring', got {overflow!r}")
        if overflow == "ring" and max_events is not None:
            self.events: Any = deque(maxlen=max_events)
        else:
            self.events = []
        self.snapshot_interval = snapshot_every
        self.kinds = frozenset(kinds) if kinds is not None else None
        self.max_events = max_events
        self.overflow = overflow
        self.dropped = 0
        self.truncated = False
        self.track_levels = track_levels
        self._level: Optional[int] = None

    # ------------------------------------------------------------------
    def record(self, kind: str, step: Optional[int], **data: Any) -> None:
        if self.track_levels and kind != ev.LEVEL:
            registers = data.get("registers") or data.get("configuration")
            if isinstance(registers, dict):
                self._observe_level(step, registers)
        if self.kinds is not None and kind not in self.kinds:
            return
        if self.max_events is not None and len(self.events) >= self.max_events:
            if not self.truncated:
                self.truncated = True
                marker = TraceEvent(
                    ev.TRUNCATED,
                    step,
                    {"max_events": self.max_events, "overflow": self.overflow},
                )
                # In ring mode the marker joins the buffer (evicting one
                # event); in drop mode nothing more will be stored, so it
                # takes the place of the last stored event.
                if self.overflow == "ring":
                    if self.max_events > 0:
                        self.dropped += 1  # the event the marker evicts
                    self.events.append(marker)
                elif self.events:
                    self.events[-1] = marker
                    self.dropped += 1
            if self.overflow == "ring":
                self.dropped += 1  # the evicted oldest event
                self.events.append(TraceEvent(kind, step, data))
            else:
                self.dropped += 1
            return
        self.events.append(TraceEvent(kind, step, data))

    def _observe_level(self, step: Optional[int], registers: Dict[str, int]) -> None:
        try:
            level = lipton_level(registers)
        except (TypeError, AttributeError):  # non-register snapshot
            return
        if level != self._level:
            previous = self._level
            self._level = level
            self.record(
                ev.LEVEL, step, layer=ev.LAYER_PROGRAM, level=level, previous=previous
            )

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def events_of(self, *kinds: str) -> List[TraceEvent]:
        wanted = frozenset(kinds)
        return [event for event in self.events if event.kind in wanted]

    def kind_counts(self) -> Dict[str, int]:
        return dict(_Counter(event.kind for event in self.events))

    def snapshots(self) -> List[TraceEvent]:
        return self.events_of(ev.SNAPSHOT)

    def level_progression(self) -> List[Any]:
        """The sequence of active Lipton levels, in observation order."""
        return [event.data["level"] for event in self.events_of(ev.LEVEL)]

    def __len__(self) -> int:
        return len(self.events)

    # ------------------------------------------------------------------
    # JSONL export / import
    # ------------------------------------------------------------------
    def to_jsonl(self) -> str:
        return events_to_jsonl(self.events)

    def write_jsonl(self, path) -> Path:
        path = Path(path)
        text = self.to_jsonl()
        path.write_text(text + ("\n" if text else ""), encoding="utf-8")
        return path

    @classmethod
    def read_jsonl(cls, path) -> "TraceRecorder":
        recorder = cls(track_levels=False)
        for line in Path(path).read_text(encoding="utf-8").splitlines():
            if line.strip():
                recorder.events.append(TraceEvent.from_json(line))
        return recorder
