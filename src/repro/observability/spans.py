"""Hierarchical spans: timed, nested units of work across processes.

A :class:`Span` is one timed operation (a compile, a decide attempt, a
cache lookup, a fault firing) with a *path* — a tuple of labels matching
the :class:`~repro.runtime.seeds.SeedTree` task-path convention — that
places it in the run's tree.  A :class:`SpanTracer` records spans; the
module-level context (:func:`activate` / :func:`current` / :func:`span`)
makes one tracer ambient so every layer can participate without new
keyword arguments on every driver.

Design constraints, mirroring the observer layer:

* **zero cost when off** — :func:`span`, :func:`begin` and :func:`finish`
  reduce to a single ``ContextVar.get`` returning ``None``.  Spans are
  created at *driver* granularity (per attempt, per compile, per cache
  lookup), never inside the per-interaction hot loops, so the fastpath's
  ``null_observer.overhead_ratio`` stays ≈ 1.0;
* **cross-process merge, deterministically** — spans created inside pool
  workers are serialised (:meth:`SpanTracer.to_payload`) back through
  ``parallel_map``/``decide_parallel`` and re-rooted on the coordinator
  with :meth:`SpanTracer.adopt`, the same shape as ``Metrics.merge``.
  :meth:`SpanTracer.structure` reduces the tree to names and counts only
  (no timings, no pids), which is the form the ``jobs=1`` ≡ ``jobs=N``
  determinism tests compare;
* **live streaming** — an optional ``listener`` callable fires on every
  span completion (local or adopted), which is how the SSE layer
  (:mod:`repro.observability.live`) sees span events as they happen.
"""

from __future__ import annotations

import json
import os
import time
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

Label = Any  # stringified on use; int indices and str labels both fine


class Span:
    """One timed operation.

    ``path`` is the full label path from the tree root (the last element
    is the span's own name); the parent is ``path[:-1]``.  ``attrs`` is a
    small JSON-serialisable payload (seed, hit/miss flag, fault kind…).
    """

    __slots__ = ("name", "path", "start", "end", "status", "attrs", "pid")

    def __init__(
        self,
        name: str,
        path: Tuple[str, ...],
        start: float,
        *,
        attrs: Optional[Dict[str, Any]] = None,
        pid: Optional[int] = None,
    ):
        self.name = name
        self.path = path
        self.start = start
        self.end: Optional[float] = None
        self.status: str = "open"
        self.attrs: Dict[str, Any] = attrs or {}
        self.pid = pid if pid is not None else os.getpid()

    @property
    def seconds(self) -> Optional[float]:
        if self.end is None:
            return None
        return self.end - self.start

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "path": list(self.path),
            "start": self.start,
            "end": self.end,
            "seconds": self.seconds,
            "status": self.status,
            "attrs": self.attrs,
            "pid": self.pid,
        }

    @classmethod
    def from_dict(cls, raw: Dict[str, Any]) -> "Span":
        span = cls(
            raw["name"],
            tuple(raw["path"]),
            raw.get("start", 0.0),
            attrs=dict(raw.get("attrs") or {}),
            pid=raw.get("pid"),
        )
        span.end = raw.get("end")
        span.status = raw.get("status", "ok")
        return span

    def __repr__(self) -> str:
        dur = f" {self.seconds:.6f}s" if self.seconds is not None else ""
        return f"Span({'/'.join(self.path)}{dur} {self.status})"


class SpanTracer:
    """Record a tree of spans, merge worker payloads, export the result.

    Parameters
    ----------
    root:
        Label path this tracer's spans hang under (usually empty; worker
        tracers are re-rooted by the coordinator's :meth:`adopt` instead).
    metrics:
        Optional :class:`~repro.observability.metrics.Metrics` registry;
        every completed or adopted span lands there as a
        ``span.<name>`` counter and a ``span.<name>.seconds`` histogram,
        which is what puts ``span.*`` stats into ``summarize()``.
    listener:
        Optional callable invoked with each completed/adopted
        :class:`Span` — the live-streaming hook.
    """

    def __init__(
        self,
        root: Sequence[Label] = (),
        *,
        metrics: Any = None,
        listener: Optional[Callable[[Span], None]] = None,
    ):
        self.root: Tuple[str, ...] = tuple(str(p) for p in root)
        self.spans: List[Span] = []
        self._stack: List[Span] = []
        self.metrics = metrics
        self.listener = listener
        self._clock = time.perf_counter

    # -- recording ------------------------------------------------------
    @property
    def current_path(self) -> Tuple[str, ...]:
        return self._stack[-1].path if self._stack else self.root

    def start(self, label: Label, **attrs: Any) -> Span:
        name = str(label)
        span = Span(name, self.current_path + (name,), self._clock(), attrs=attrs)
        self._stack.append(span)
        return span

    def end(self, span: Span, status: str = "ok") -> None:
        span.end = self._clock()
        span.status = status
        # Tolerate mismatched ends: pop until the span is gone (children
        # abandoned by an exception unwind are closed as errors).
        while self._stack:
            top = self._stack.pop()
            if top is span:
                break
            top.end = span.end
            top.status = "error"
            self._record(top)
        self._record(span)

    def _record(self, span: Span) -> None:
        self.spans.append(span)
        if self.metrics is not None:
            self.metrics.counter(f"span.{span.name}").inc()
            if span.seconds is not None:
                self.metrics.histogram(f"span.{span.name}.seconds").observe(
                    span.seconds
                )
        if self.listener is not None:
            self.listener(span)

    @contextmanager
    def span(self, label: Label, **attrs: Any):
        span = self.start(label, **attrs)
        try:
            yield span
        except BaseException:
            self.end(span, status="error")
            raise
        else:
            self.end(span)

    def mark(self, label: Label, **attrs: Any) -> Span:
        """An instant (zero-duration) span — for point events like a pool
        retry or a fault firing whose duration is not the interesting part."""
        span = self.start(label, **attrs)
        self.end(span)
        return span

    # -- cross-process merge --------------------------------------------
    def to_payload(self) -> List[Dict[str, Any]]:
        """Completed spans as plain dicts, in completion order — the
        pickle-friendly form workers ship back to the coordinator."""
        return [span.to_dict() for span in self.spans]

    def adopt(
        self,
        payload: Iterable[Dict[str, Any]],
        prefix: Optional[Sequence[Label]] = None,
    ) -> None:
        """Fold a worker's exported spans into this tracer, re-rooting
        their paths under ``prefix`` (default: the current span path).

        Adoption order is the caller's iteration order; coordinators call
        this in task order, which is what keeps the merged tree
        deterministic regardless of worker scheduling.  ``None`` (a result
        that shipped no spans) is a no-op.
        """
        if not payload:
            return
        at = tuple(str(p) for p in (self.current_path if prefix is None else prefix))
        for raw in payload:
            span = Span.from_dict(raw)
            span.path = at + span.path
            self._record(span)

    # -- export ---------------------------------------------------------
    def tree(self) -> Dict[str, Any]:
        """The aggregated span tree: one node per distinct path, with
        call counts and total seconds, children sorted by name.

        Interior nodes that were never recorded as spans themselves
        (possible after adoption) are synthesised with zero counts.
        """
        nodes: Dict[Tuple[str, ...], Dict[str, Any]] = {}

        def node(path: Tuple[str, ...]) -> Dict[str, Any]:
            existing = nodes.get(path)
            if existing is None:
                existing = nodes[path] = {
                    "name": path[-1] if path else "",
                    "path": list(path),
                    "count": 0,
                    "errors": 0,
                    "seconds": 0.0,
                    "children": {},
                }
                if path:
                    node(path[:-1])["children"][path[-1]] = existing
            return existing

        root = node(())
        for span in self.spans:
            entry = node(span.path)
            entry["count"] += 1
            if span.status == "error":
                entry["errors"] += 1
            if span.seconds is not None:
                entry["seconds"] += span.seconds

        def finalise(entry: Dict[str, Any]) -> Dict[str, Any]:
            entry["children"] = [
                finalise(child)
                for _name, child in sorted(entry["children"].items())
            ]
            return entry

        return finalise(root)

    def structure(self) -> Any:
        """The timing- and pid-free shape of the tree: nested
        ``(name, count, children)`` tuples with children sorted by name.
        Two runs that did the same work — regardless of ``jobs`` — have
        equal structures."""

        def strip(entry: Dict[str, Any]) -> Tuple[str, int, tuple]:
            return (
                entry["name"],
                entry["count"],
                tuple(strip(child) for child in entry["children"]),
            )

        return strip(self.tree())

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.tree(), indent=indent, default=repr)

    def write_json(self, path) -> Any:
        from pathlib import Path

        path = Path(path)
        path.write_text(self.to_json() + "\n", encoding="utf-8")
        return path

    def __len__(self) -> int:
        return len(self.spans)


# ----------------------------------------------------------------------
# Ambient tracer context
# ----------------------------------------------------------------------
_CURRENT: ContextVar[Optional[SpanTracer]] = ContextVar(
    "repro_span_tracer", default=None
)


def current() -> Optional[SpanTracer]:
    """The ambient tracer, or ``None`` when tracing is off."""
    return _CURRENT.get()


@contextmanager
def activate(tracer: SpanTracer):
    """Install ``tracer`` as the ambient tracer for the enclosed block."""
    token = _CURRENT.set(tracer)
    try:
        yield tracer
    finally:
        _CURRENT.reset(token)


class _NoopSpan:
    """Shared do-nothing context manager for the tracing-off path."""

    __slots__ = ()

    def __enter__(self):
        return None

    def __exit__(self, *exc):
        return False


_NOOP = _NoopSpan()


def span(label: Label, **attrs: Any):
    """Ambient span context manager: a real span under the active tracer,
    a shared no-op otherwise."""
    tracer = _CURRENT.get()
    if tracer is None:
        return _NOOP
    return tracer.span(label, **attrs)


def begin(label: Label, **attrs: Any) -> Optional[Span]:
    """Open an ambient span without a ``with`` block (for functions whose
    body cannot be re-indented); pair with :func:`finish`.  Returns
    ``None`` — and costs one ``ContextVar.get`` — when tracing is off."""
    tracer = _CURRENT.get()
    if tracer is None:
        return None
    return tracer.start(label, **attrs)


def finish(span_: Optional[Span], status: str = "ok") -> None:
    """Close a span returned by :func:`begin` (no-op on ``None``)."""
    if span_ is None:
        return
    tracer = _CURRENT.get()
    if tracer is not None:
        tracer.end(span_, status)


def mark(label: Label, **attrs: Any) -> None:
    """Ambient instant span (no-op when tracing is off)."""
    tracer = _CURRENT.get()
    if tracer is not None:
        tracer.mark(label, **attrs)


def adopt(payload: Optional[Iterable[Dict[str, Any]]]) -> None:
    """Fold a worker span payload into the ambient tracer at the current
    path (no-op when tracing is off or the payload is empty)."""
    if not payload:
        return
    tracer = _CURRENT.get()
    if tracer is not None:
        tracer.adopt(payload)
