"""Metrics: counters, gauges, histograms and a registry with JSON export.

The registry is deliberately tiny — a dict of named instruments — but it
is the single machine-readable currency for performance data in this
repository: the simulation drivers feed it through
:class:`MetricsObserver`, the benchmark harness writes its timings through
it (``BENCH_simulator.json``), and :func:`repro.observability.report.summarize`
renders it for humans.
"""

from __future__ import annotations

import json
import math
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Optional

from repro.observability import events as ev
from repro.observability.observer import Observer


@dataclass
class Counter:
    """A monotonically increasing integer."""

    name: str
    value: int = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount


@dataclass
class Gauge:
    """A last-write-wins scalar."""

    name: str
    value: Optional[float] = None

    def set(self, value: float) -> None:
        self.value = value


#: Bucket key for non-positive observations (below every power of two).
_NONPOS_BUCKET = -1075  # one below the smallest subnormal's exponent


def bucket_key(value: float) -> int:
    """The power-of-two bucket index of ``value``: the binary exponent
    ``e`` with ``2**(e-1) <= value < 2**e`` (``frexp``'s exponent), or
    :data:`_NONPOS_BUCKET` for values ≤ 0.  Exponent buckets need no
    preconfigured boundaries, so one scheme serves layers whose step costs
    differ by orders of magnitude — and two histograms always share bucket
    edges, which is what makes the merge lossless."""
    if value <= 0 or math.isnan(value):
        return _NONPOS_BUCKET
    if math.isinf(value):
        return 1025  # one above the largest finite exponent
    return math.frexp(value)[1]


def bucket_bound(key: int) -> float:
    """The inclusive upper bound of bucket ``key`` (``2**key``)."""
    if key <= _NONPOS_BUCKET:
        return 0.0
    if key >= 1025:
        return math.inf
    return math.ldexp(1.0, key)


@dataclass
class Histogram:
    """Streaming summary statistics of a series, plus power-of-two buckets.

    ``count``/``total``/``min``/``max``/``mean`` are exact; ``buckets``
    maps binary-exponent keys (see :func:`bucket_key`) to observation
    counts, giving an order-of-magnitude distribution that merges
    losslessly across processes and exports as Prometheus ``le`` buckets.
    """

    name: str
    count: int = 0
    total: float = 0.0
    min: Optional[float] = None
    max: Optional[float] = None
    buckets: Dict[int, int] = field(default_factory=dict)

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        key = bucket_key(value)
        self.buckets[key] = self.buckets.get(key, 0) + 1

    @property
    def mean(self) -> Optional[float]:
        if self.count == 0:
            return None
        return self.total / self.count

    def to_dict(self) -> Dict[str, Any]:
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            # JSON keys must be strings; merge() converts them back.
            "buckets": {str(k): v for k, v in sorted(self.buckets.items())},
        }


class Metrics:
    """A registry of named instruments."""

    def __init__(self) -> None:
        self.counters: Dict[str, Counter] = {}
        self.gauges: Dict[str, Gauge] = {}
        self.histograms: Dict[str, Histogram] = {}

    # -- instrument access (created on first use) -----------------------
    def counter(self, name: str) -> Counter:
        instrument = self.counters.get(name)
        if instrument is None:
            instrument = self.counters[name] = Counter(name)
        return instrument

    def gauge(self, name: str) -> Gauge:
        instrument = self.gauges.get(name)
        if instrument is None:
            instrument = self.gauges[name] = Gauge(name)
        return instrument

    def histogram(self, name: str) -> Histogram:
        instrument = self.histograms.get(name)
        if instrument is None:
            instrument = self.histograms[name] = Histogram(name)
        return instrument

    @contextmanager
    def timer(self, name: str):
        """Time a block with ``perf_counter`` into ``<name>`` (seconds)."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.histogram(name).observe(time.perf_counter() - start)

    # -- merge ----------------------------------------------------------
    def merge(self, payload: Dict[str, Any]) -> None:
        """Fold an exported registry (the :meth:`to_dict` of another
        ``Metrics``, e.g. one shipped back from a pool worker) into this
        one: counters add, histograms combine their summary statistics
        *and* their bucket contents (exponent buckets share edges by
        construction, so the fold is lossless), gauges are last-write-wins
        (matching their in-process semantics).
        """
        for name, value in payload.get("counters", {}).items():
            self.counter(name).inc(value)
        for name, value in payload.get("gauges", {}).items():
            if value is not None:
                self.gauge(name).set(value)
        for name, data in payload.get("histograms", {}).items():
            histogram = self.histogram(name)
            histogram.count += data.get("count", 0)
            histogram.total += data.get("total", 0.0)
            for bound, better in (("min", min), ("max", max)):
                incoming = data.get(bound)
                if incoming is None:
                    continue
                current = getattr(histogram, bound)
                setattr(
                    histogram,
                    bound,
                    incoming if current is None else better(current, incoming),
                )
            for key, count in (data.get("buckets") or {}).items():
                key = int(key)
                histogram.buckets[key] = histogram.buckets.get(key, 0) + count

    # -- export ---------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {
            "counters": {name: c.value for name, c in sorted(self.counters.items())},
            "gauges": {name: g.value for name, g in sorted(self.gauges.items())},
            "histograms": {
                name: h.to_dict() for name, h in sorted(self.histograms.items())
            },
        }

    def to_prometheus(self, *, namespace: str = "repro") -> str:
        """The registry in Prometheus text exposition format (see
        :func:`repro.observability.export.metrics_to_prometheus`)."""
        from repro.observability.export import metrics_to_prometheus

        return metrics_to_prometheus(self, namespace=namespace)

    def write_json(self, path, extra: Optional[Dict[str, Any]] = None) -> Path:
        path = Path(path)
        payload = self.to_dict()
        if extra:
            payload.update(extra)
        path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
        return path

    def __bool__(self) -> bool:
        return bool(self.counters or self.gauges or self.histograms)


def transition_label(transition: Any) -> str:
    """Stable short label for a protocol transition."""
    return f"{transition.q},{transition.r}->{transition.q2},{transition.r2}"


@dataclass
class _RunClock:
    start: float = field(default_factory=time.perf_counter)


class MetricsObserver(Observer):
    """Aggregate the event stream into a :class:`Metrics` registry.

    Counter/histogram vocabulary (all per-registry totals, across every
    run observed by this instance):

    * ``interactions`` / ``productive`` — protocol scheduler steps and the
      subset that changed the configuration;
    * ``steps`` — program/machine primitive steps; ``statement[<kind>]``
      and ``instruction[<kind>]`` break them down by opcode;
    * ``transition[<q,r->q2,r2>]`` — per-transition firing counts;
    * ``detect_true`` / ``detect_false`` / ``detect_empty`` — detect
      outcomes (``detect_empty`` counts the provably-false case x = 0);
    * ``restarts``, ``output_flips``, ``silence_checks``, ``snapshots``,
      ``hangs``, ``attempts``, ``runs``;
    * histograms ``wall_seconds``, ``parallel_time``, ``run_interactions``,
      ``run_steps``, ``quiet_steps`` and ``stage.<name>.seconds``.
    """

    def __init__(
        self,
        metrics: Optional[Metrics] = None,
        *,
        per_transition: bool = True,
    ):
        self.metrics = metrics if metrics is not None else Metrics()
        self.per_transition = per_transition
        self._clocks: Dict[str, _RunClock] = {}

    # -- run lifecycle --------------------------------------------------
    def on_run_start(self, layer: str, **data: Any) -> None:
        self.metrics.counter("runs").inc()
        self._clocks[layer] = _RunClock()
        population = data.get("population")
        if population is not None:
            self.metrics.gauge("population").set(population)

    def on_run_end(self, step: int, layer: str, **data: Any) -> None:
        clock = self._clocks.pop(layer, None)
        if clock is not None:
            self.metrics.histogram("wall_seconds").observe(
                time.perf_counter() - clock.start
            )
        if layer == ev.LAYER_PROTOCOL:
            self.metrics.histogram("run_interactions").observe(step)
            population = data.get("population")
            if population:
                self.metrics.histogram("parallel_time").observe(step / population)
        else:
            self.metrics.histogram("run_steps").observe(step)
        quiet = data.get("quiet_steps")
        if quiet is not None:
            self.metrics.histogram("quiet_steps").observe(quiet)

    # -- protocol layer -------------------------------------------------
    def on_interaction(self, step, transition, pair, productive) -> None:
        self.metrics.counter("interactions").inc()
        if transition is None:
            self.metrics.counter("null_steps").inc()
            return
        if productive:
            self.metrics.counter("productive").inc()
        if self.per_transition:
            self.metrics.counter(f"transition[{transition_label(transition)}]").inc()

    def on_batch(self, step, *, kind, count, transition=None, productive=0) -> None:
        self.metrics.counter("interactions").inc(count)
        self.metrics.counter("batches").inc()
        if transition is None:
            self.metrics.counter("null_steps").inc(count)
            return
        if productive:
            self.metrics.counter("productive").inc(productive)
        if self.per_transition:
            self.metrics.counter(
                f"transition[{transition_label(transition)}]"
            ).inc(count)

    def on_scheduler_select(self, step, *, scheduler, null, candidates=0, weight=0):
        self.metrics.counter("scheduler_selects").inc()
        if null:
            self.metrics.counter("scheduler_null").inc()
        if candidates:
            self.metrics.histogram("enabled_transitions").observe(candidates)

    def on_silence_check(self, step, silent) -> None:
        self.metrics.counter("silence_checks").inc()

    # -- program / machine layers --------------------------------------
    #: Statements/instructions that mutate registers or the output flag —
    #: the program/machine analogue of a productive interaction.
    PRODUCTIVE_OPS = frozenset({"move", "swap", "set_output", "assign"})

    def on_statement(self, step, kind, detail=None) -> None:
        self.metrics.counter("steps").inc()
        self.metrics.counter(f"statement[{kind}]").inc()
        if kind in self.PRODUCTIVE_OPS:
            self.metrics.counter("productive").inc()

    def on_instruction(self, step, ip, kind) -> None:
        self.metrics.counter("steps").inc()
        self.metrics.counter(f"instruction[{kind}]").inc()
        if kind in self.PRODUCTIVE_OPS:
            self.metrics.counter("productive").inc()

    def on_detect(self, step, register, nonzero, answer, layer) -> None:
        if not nonzero:
            self.metrics.counter("detect_empty").inc()
        elif answer:
            self.metrics.counter("detect_true").inc()
        else:
            self.metrics.counter("detect_false").inc()

    def on_restart(self, step, count, layer, registers=None) -> None:
        self.metrics.counter("restarts").inc()

    def on_hang(self, step, layer, register=None) -> None:
        self.metrics.counter("hangs").inc()

    def on_fault(self, step, kind, layer, **data) -> None:
        self.metrics.counter("faults").inc()
        self.metrics.counter(f"fault[{kind}]").inc()

    # -- shared ---------------------------------------------------------
    def on_output_flip(self, step, output, layer) -> None:
        self.metrics.counter("output_flips").inc()

    def on_snapshot(self, step, snapshot, layer) -> None:
        self.metrics.counter("snapshots").inc()

    def on_attempt(self, attempt, seed) -> None:
        self.metrics.counter("attempts").inc()

    # -- pipeline -------------------------------------------------------
    def on_stage(self, name, seconds, **data) -> None:
        self.metrics.histogram(f"stage.{name}.seconds").observe(seconds)
        for key, value in data.items():
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                self.metrics.gauge(f"stage.{name}.{key}").set(value)
