"""Structured trace events shared by every execution layer.

A :class:`TraceEvent` is a flat record ``(kind, step, data)``.  ``kind``
is one of the constants below, ``step`` is the layer's own step counter
(interactions for protocol simulation, primitive steps for programs and
machines, ``None`` for events with no natural position such as pipeline
stages), and ``data`` is a JSON-serialisable payload.

The ``layer`` key inside ``data`` identifies which execution layer emitted
the event; the same observer instance can therefore be threaded through a
protocol simulation, a program run, a machine run and the compilation
pipeline and still produce an unambiguous merged trace.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Optional

# --- event kinds --------------------------------------------------------
RUN_START = "run_start"  # a driver began sampling a run
RUN_END = "run_end"  # the driver stopped (with its summary statistics)
INTERACTION = "interaction"  # one protocol-level scheduler step
BATCH = "batch"  # many collapsed scheduler steps reported at once
SCHEDULER = "scheduler"  # scheduler-internal detail (candidate sets)
STATEMENT = "statement"  # program-level primitive statement dispatch
INSTRUCTION = "instruction"  # machine-level instruction dispatch
DETECT = "detect"  # a detect primitive resolved (any layer)
RESTART = "restart"  # a restart fired / the restart helper was entered
OUTPUT_FLIP = "output_flip"  # the output (flag or consensus) changed
SILENCE_CHECK = "silence_check"  # the simulator tested for silence
SNAPSHOT = "snapshot"  # sampled configuration / register snapshot
LEVEL = "level"  # Lipton level progression (derived from registers)
HANG = "hang"  # a move from an empty register hung the run
ATTEMPT = "attempt"  # decide() started a retry attempt
STAGE = "stage"  # a compilation-pipeline stage completed
FAULT = "fault"  # an injected fault fired (see repro.resilience)
SPAN = "span"  # a hierarchical span completed (see observability.spans)
TRUNCATED = "truncated"  # a bounded recorder started evicting events

# Layers, as used in the ``layer`` payload key.
LAYER_PROTOCOL = "protocol"
LAYER_PROGRAM = "program"
LAYER_MACHINE = "machine"
LAYER_PIPELINE = "pipeline"

ALL_KINDS = frozenset(
    {
        RUN_START,
        RUN_END,
        INTERACTION,
        BATCH,
        SCHEDULER,
        STATEMENT,
        INSTRUCTION,
        DETECT,
        RESTART,
        OUTPUT_FLIP,
        SILENCE_CHECK,
        SNAPSHOT,
        LEVEL,
        HANG,
        ATTEMPT,
        STAGE,
        FAULT,
        SPAN,
        TRUNCATED,
    }
)

#: Per-step event kinds — the high-volume ones a recorder may want to drop.
#: ``BATCH`` is deliberately excluded: one batch event summarises many
#: steps, so keeping it preserves interaction accounting even in traces
#: that drop the per-step firehose.
HOT_KINDS = frozenset({INTERACTION, SCHEDULER, STATEMENT, INSTRUCTION})


@dataclass
class TraceEvent:
    """One structured observation."""

    kind: str
    step: Optional[int]
    data: Dict[str, Any] = field(default_factory=dict)

    def to_json_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {"kind": self.kind, "step": self.step}
        for key, value in self.data.items():
            out[key] = _jsonable(value)
        return out

    def to_json(self) -> str:
        return json.dumps(self.to_json_dict(), default=repr)

    @classmethod
    def from_json(cls, line: str) -> "TraceEvent":
        raw = json.loads(line)
        kind = raw.pop("kind")
        step = raw.pop("step", None)
        return cls(kind=kind, step=step, data=raw)


def _jsonable(value: Any) -> Any:
    """Best-effort conversion to something ``json.dumps`` accepts.

    Protocol states may be tuples (the converted protocols use structured
    states), so mapping *keys* need stringifying too.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, dict):
        return {
            key if isinstance(key, str) else repr(key): _jsonable(v)
            for key, v in value.items()
        }
    if isinstance(value, (list, tuple, set, frozenset)):
        return [_jsonable(v) for v in value]
    return repr(value)


_LEVEL_REGISTER = re.compile(r"^[xy]b?(\d+)$")


def lipton_level(registers: Dict[str, int]) -> int:
    """The highest *active* level of a Section 6 register configuration:
    the largest ``i`` such that some register of ``Q_i = {x_i, x̄_i, y_i,
    ȳ_i}`` is nonempty (0 if none are, e.g. everything sits in ``R``).

    Registers that do not follow the Section 6 naming convention are
    ignored, so this is safe to call on arbitrary programs.
    """
    level = 0
    for name, count in registers.items():
        if count <= 0:
            continue
        match = _LEVEL_REGISTER.match(name)
        if match:
            level = max(level, int(match.group(1)))
    return level


def events_to_jsonl(events: Iterable[TraceEvent]) -> str:
    """Render events as one JSON object per line."""
    return "\n".join(event.to_json() for event in events)
