"""Live telemetry: an in-process event bus, an HTTP/SSE server, and a
terminal ``top`` renderer.

The pieces compose as::

    metrics = Metrics()
    tracer = SpanTracer(metrics=metrics)
    bus = EventBus()
    observer = LiveObserver(bus)
    tracer.listener = bus.publish_span
    server = TelemetryServer(metrics=metrics, tracer=tracer, bus=bus)
    server.start()           # → http://127.0.0.1:<port>
    with activate(tracer):
        decide(..., observer=observer)   # any driver; spans + events stream
    server.stop()

Endpoints (all stdlib ``http.server``, no dependencies):

* ``/metrics`` — Prometheus text exposition of the shared registry;
* ``/events`` — Server-Sent Events stream: every non-hot trace event and
  every completed span, as JSON ``data:`` frames (hot per-step kinds are
  dropped at the observer so a long run cannot saturate the stream);
* ``/spans`` — the current aggregated span tree as JSON;
* ``/manifest`` — the run's provenance manifest (when one was attached);
* ``/healthz`` — liveness probe; first line is always ``ok``, and when a
  distributed :class:`~repro.runtime.distributed.Coordinator` is attached
  (:attr:`TelemetryServer.cluster`) subsequent ``worker <peer> <state>``
  lines report per-worker liveness.

``python -m repro serve`` wires this around a run; ``python -m repro
top`` consumes ``/events`` + ``/spans`` and renders a refreshing span
tree with event rates.
"""

from __future__ import annotations

import json
import queue
import threading
import time
import urllib.request
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable, Dict, List, Optional

from repro.observability import events as ev
from repro.observability.events import _jsonable
from repro.observability.metrics import Metrics
from repro.observability.observer import Observer
from repro.observability.spans import Span, SpanTracer


class EventBus:
    """Fan events out to any number of subscriber queues.

    Publishing never blocks the run: a subscriber that falls behind has
    its oldest events dropped (bounded queues, drop-oldest on overflow).
    """

    def __init__(self, *, maxsize: int = 1000):
        self.maxsize = maxsize
        self._subscribers: List["queue.Queue[Dict[str, Any]]"] = []
        self._lock = threading.Lock()
        self.published = 0
        self.dropped = 0

    def subscribe(self) -> "queue.Queue[Dict[str, Any]]":
        q: "queue.Queue[Dict[str, Any]]" = queue.Queue(maxsize=self.maxsize)
        with self._lock:
            self._subscribers.append(q)
        return q

    def unsubscribe(self, q: "queue.Queue[Dict[str, Any]]") -> None:
        with self._lock:
            try:
                self._subscribers.remove(q)
            except ValueError:
                pass

    def publish(self, payload: Dict[str, Any]) -> None:
        self.published += 1
        with self._lock:
            subscribers = list(self._subscribers)
        for q in subscribers:
            try:
                q.put_nowait(payload)
            except queue.Full:
                try:
                    q.get_nowait()  # drop the oldest, keep the stream fresh
                except queue.Empty:
                    pass
                try:
                    q.put_nowait(payload)
                except queue.Full:
                    self.dropped += 1

    def publish_span(self, span: Span) -> None:
        """A :class:`SpanTracer` ``listener``-compatible adapter."""
        self.publish({"kind": ev.SPAN, **span.to_dict()})


class LiveObserver(Observer):
    """Publish the trace-event stream onto an :class:`EventBus`.

    Hot per-step kinds (:data:`~repro.observability.events.HOT_KINDS`)
    are dropped here — batches, attempts, faults, stage completions and
    run summaries are the granularity a live view wants.
    """

    def __init__(self, bus: EventBus):
        self.bus = bus

    def record(self, kind: str, step: Optional[int], **data: Any) -> None:
        if kind in ev.HOT_KINDS:
            return
        payload: Dict[str, Any] = {"kind": kind, "step": step}
        for key, value in data.items():
            payload[key] = _jsonable(value)
        self.bus.publish(payload)


class _Handler(BaseHTTPRequestHandler):
    """Request handler bound to a :class:`TelemetryServer` via the server
    instance (``self.server.telemetry``)."""

    protocol_version = "HTTP/1.1"

    # -- helpers --------------------------------------------------------
    @property
    def telemetry(self) -> "TelemetryServer":
        return self.server.telemetry  # type: ignore[attr-defined]

    def _send(self, body: bytes, content_type: str, status: int = 200) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        pass  # quiet by default; the run's own output matters more

    # -- routes ---------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 (http.server naming)
        path = self.path.split("?", 1)[0]
        try:
            if path == "/healthz":
                self._send(
                    self.telemetry.render_health().encode("utf-8"),
                    "text/plain; charset=utf-8",
                )
            elif path == "/metrics":
                text = self.telemetry.render_metrics()
                self._send(
                    text.encode("utf-8"),
                    "text/plain; version=0.0.4; charset=utf-8",
                )
            elif path == "/spans":
                tree = self.telemetry.render_spans()
                self._send(
                    json.dumps(tree, default=repr).encode("utf-8"),
                    "application/json",
                )
            elif path == "/manifest":
                manifest = self.telemetry.manifest
                if manifest is None:
                    self._send(b"{}\n", "application/json", status=404)
                else:
                    body = manifest.to_json().encode("utf-8")
                    self._send(body, "application/json")
            elif path == "/events":
                self._stream_events()
            else:
                self._send(b"not found\n", "text/plain; charset=utf-8", status=404)
        except (BrokenPipeError, ConnectionResetError):
            pass  # client went away mid-response

    def _stream_events(self) -> None:
        telemetry = self.telemetry
        bus = telemetry.bus
        self.send_response(200)
        self.send_header("Content-Type", "text/event-stream")
        self.send_header("Cache-Control", "no-cache")
        self.send_header("Connection", "close")
        self.end_headers()
        q = bus.subscribe()
        try:
            while not telemetry.stopping.is_set():
                try:
                    payload = q.get(timeout=0.5)
                except queue.Empty:
                    # SSE comment line as keepalive; also our chance to
                    # notice a vanished client or a stopping server.
                    self.wfile.write(b": keepalive\n\n")
                    self.wfile.flush()
                    continue
                frame = f"data: {json.dumps(payload, default=repr)}\n\n"
                self.wfile.write(frame.encode("utf-8"))
                self.wfile.flush()
        except (BrokenPipeError, ConnectionResetError, OSError):
            pass
        finally:
            bus.unsubscribe(q)


class TelemetryServer:
    """Serve a run's metrics, spans and event stream over HTTP.

    ``port=0`` binds an ephemeral port; read :attr:`port` (or
    :attr:`url`) after :meth:`start`.  The server runs on daemon threads
    and :meth:`stop` shuts it down cleanly (open SSE streams notice the
    stop flag within their keepalive interval).
    """

    def __init__(
        self,
        *,
        metrics: Optional[Metrics] = None,
        tracer: Optional[SpanTracer] = None,
        bus: Optional[EventBus] = None,
        manifest: Any = None,
        cluster: Any = None,
        host: str = "127.0.0.1",
        port: int = 0,
    ):
        self.metrics = metrics if metrics is not None else Metrics()
        self.tracer = tracer
        self.bus = bus if bus is not None else EventBus()
        self.manifest = manifest
        #: Optional :class:`repro.runtime.distributed.Coordinator` (or a
        #: zero-argument callable resolving to one, e.g.
        #: :func:`repro.runtime.distributed.active_cluster` — clusters are
        #: created lazily, after the server starts); when attached,
        #: ``/healthz`` reports per-worker liveness lines.
        self.cluster = cluster
        self.host = host
        self._requested_port = port
        self.stopping = threading.Event()
        self._httpd: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None
        self._lock = threading.Lock()

    # -- snapshot rendering (thread-safe-ish: both structures are only
    # appended/updated by the run thread; renders take the lock so a
    # scrape never sees a half-updated span list) -----------------------
    def render_metrics(self) -> str:
        with self._lock:
            return self.metrics.to_prometheus()

    def render_spans(self) -> Dict[str, Any]:
        with self._lock:
            if self.tracer is None:
                return {"name": "", "count": 0, "children": []}
            return self.tracer.tree()

    def render_health(self) -> str:
        """The ``/healthz`` body: first line ``ok``, then one
        ``worker <peer> pid=<pid> <busy|idle> age=<s>`` line per connected
        worker when a distributed coordinator is attached."""
        lines = ["ok"]
        cluster = self.cluster() if callable(self.cluster) else self.cluster
        if cluster is not None:
            try:
                snapshot = cluster.liveness()
            except Exception:
                snapshot = {"workers": []}
            for worker in snapshot.get("workers", []):
                lines.append(
                    "worker {peer} pid={pid} {state} age={age}".format(
                        peer=worker.get("peer", "?"),
                        pid=worker.get("pid", "?"),
                        state="busy" if worker.get("busy") else "idle",
                        age=worker.get("last_seen_age", "?"),
                    )
                )
        return "\n".join(lines) + "\n"

    # -- lifecycle ------------------------------------------------------
    @property
    def port(self) -> int:
        if self._httpd is None:
            return self._requested_port
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "TelemetryServer":
        httpd = ThreadingHTTPServer((self.host, self._requested_port), _Handler)
        httpd.daemon_threads = True
        httpd.telemetry = self  # type: ignore[attr-defined]
        self._httpd = httpd
        self._thread = threading.Thread(
            target=httpd.serve_forever, kwargs={"poll_interval": 0.1}, daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        self.stopping.set()
        if self._httpd is not None:
            self._httpd.shutdown()
            self._httpd.server_close()
            self._httpd = None
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def __enter__(self) -> "TelemetryServer":
        return self.start()

    def __exit__(self, *exc: Any) -> None:
        self.stop()


# ----------------------------------------------------------------------
# Terminal renderer (`python -m repro top`)
# ----------------------------------------------------------------------
def _render_tree(node: Dict[str, Any], lines: List[str], depth: int = 0) -> None:
    name = node.get("name") or "run"
    count = node.get("count", 0)
    seconds = node.get("seconds", 0.0)
    errors = node.get("errors", 0)
    suffix = f"  ×{count}" if count else ""
    if seconds:
        suffix += f"  {seconds:.3f}s"
    if errors:
        suffix += f"  !{errors}"
    lines.append(f"{'  ' * depth}{name}{suffix}")
    for child in node.get("children", []):
        _render_tree(child, lines, depth + 1)


def fetch_json(url: str, timeout: float = 5.0) -> Any:
    with urllib.request.urlopen(url, timeout=timeout) as response:
        return json.loads(response.read().decode("utf-8"))


def fetch_text(url: str, timeout: float = 5.0) -> str:
    with urllib.request.urlopen(url, timeout=timeout) as response:
        return response.read().decode("utf-8")


def run_top(
    url: str,
    *,
    frames: Optional[int] = None,
    interval: float = 1.0,
    plain: bool = False,
    out: Optional[Callable[[str], None]] = None,
) -> int:
    """Poll a :class:`TelemetryServer` and render the live span tree.

    ``frames`` bounds the number of refreshes (``None`` = until the
    server goes away or the user interrupts); ``plain`` suppresses the
    ANSI clear-screen, which makes the output testable and log-friendly.
    Returns the number of frames rendered.
    """
    emit = out if out is not None else print
    url = url.rstrip("/")
    rendered = 0
    previous_events = 0.0
    previous_time: Optional[float] = None
    while frames is None or rendered < frames:
        try:
            tree = fetch_json(f"{url}/spans")
            metrics_text = fetch_text(f"{url}/metrics")
        except OSError:
            if rendered == 0:
                emit(f"repro top: cannot reach {url}")
                return 0
            break  # server finished — keep the last frame on screen
        now = time.perf_counter()
        interactions = 0.0
        for line in metrics_text.splitlines():
            if line.startswith("repro_interactions_total "):
                interactions = float(line.rsplit(" ", 1)[1])
                break
        rate = ""
        if previous_time is not None and now > previous_time:
            per_second = (interactions - previous_events) / (now - previous_time)
            rate = f"  ({per_second:,.0f} interactions/s)"
        previous_events, previous_time = interactions, now

        lines: List[str] = []
        if not plain:
            lines.append("\x1b[2J\x1b[H")  # clear screen, home cursor
        lines.append(f"repro top — {url}  interactions={interactions:,.0f}{rate}")
        _render_tree(tree, lines)
        emit("\n".join(lines))
        rendered += 1
        if frames is not None and rendered >= frames:
            break
        time.sleep(interval)
    return rendered
