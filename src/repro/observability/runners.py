"""Observed runs of reference workloads — the engine behind
``python -m repro trace`` / ``python -m repro stats``.

Each target builds one of the repository's canonical workloads, attaches
the requested observers to the relevant execution layer, runs it, and
returns an :class:`ObservedRun`.

All heavyweight imports are deferred into the target functions so that
importing :mod:`repro.observability` never drags in (or cyclically
re-enters) the execution layers it instruments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional

from repro.observability.export import RunManifest, build_manifest
from repro.observability.metrics import MetricsObserver
from repro.observability.observer import CompositeObserver
from repro.observability.report import summarize
from repro.observability.trace import TraceRecorder


@dataclass
class ObservedRun:
    """Artefacts of one observed workload run."""

    target: str
    recorder: Optional[TraceRecorder]
    metrics: MetricsObserver
    outcome: str  # one-line description of what the workload returned
    manifest: Optional[RunManifest] = None  # provenance (inputs + cache stats)

    def digest(self) -> str:
        return summarize(self.metrics, self.recorder)


def _observer(recorder, metrics):
    return CompositeObserver(*(o for o in (recorder, metrics) if o is not None))


def _checked(*, protocol=None, program=None, machine=None, name="target"):
    """Static-check diagnostics for a run's artifacts (best effort).

    Used to stamp ``RunManifest.diagnostics``: a manifest then records not
    just *what* ran but whether its inputs were clean.  Results are cached
    by content fingerprint, so re-tracing a known artifact costs one hash.
    Protocol checks build the transition table; callers with large
    compiled protocols pass only the cheap AST-level artifacts.
    """
    from repro.analysis.statics.targets import (
        check_machine_cached,
        check_program_cached,
        check_protocol_cached,
    )

    out = []
    if program is not None:
        out.extend(check_program_cached(program, name=name))
    if machine is not None:
        out.extend(check_machine_cached(machine))
    if protocol is not None:
        out.extend(check_protocol_cached(protocol))
    return out


def run_theorem3(
    *,
    n: int = 2,
    total: Optional[int] = None,
    seed: int = 0,
    max_steps: int = 200_000,
    recorder: Optional[TraceRecorder] = None,
    metrics: Optional[MetricsObserver] = None,
) -> ObservedRun:
    """Trace the Theorem 3 program (the Section 6 repeated-squaring
    counter) at ``n`` levels deciding ``m ≥ k_n``.

    ``total`` defaults to ``k_n - 1``, just below the threshold, where the
    detect–restart loop is busiest — the regime the instrumentation
    exists to make visible.
    """
    from repro.lipton.canonical import canonical_restart_policy
    from repro.lipton.construction import build_threshold_program
    from repro.lipton.levels import threshold
    from repro.programs.interpreter import run_program

    metrics = metrics or MetricsObserver()
    if total is None:
        total = max(1, threshold(n) - 1)
    program = build_threshold_program(n)
    result = run_program(
        program,
        {"x1": total},
        seed=seed,
        restart_policy=canonical_restart_policy(n),
        max_steps=max_steps,
        observer=_observer(recorder, metrics),
    )
    outcome = (
        f"theorem3 n={n} total={total} (k={threshold(n)}): output={result.output} "
        f"steps={result.steps} restarts={result.restarts} hung={result.hung}"
    )
    manifest = build_manifest(
        "theorem3",
        seed=seed,
        program=program,
        outcome=outcome,
        diagnostics=_checked(program=program, name=f"theorem3-n{n}"),
        n=n,
        total=total,
        max_steps=max_steps,
    )
    return ObservedRun("theorem3", recorder, metrics, outcome, manifest)


def run_protocol(
    *,
    n: int = 13,
    total: int = 40,
    seed: int = 1,
    max_steps: int = 50_000,
    recorder: Optional[TraceRecorder] = None,
    metrics: Optional[MetricsObserver] = None,
) -> ObservedRun:
    """Trace a protocol-level simulation of the succinct binary threshold
    baseline ``x ≥ n`` on ``total`` agents."""
    from repro.baselines import binary_threshold_protocol
    from repro.core.multiset import Multiset
    from repro.core.simulation import simulate

    metrics = metrics or MetricsObserver()
    protocol = binary_threshold_protocol(n)
    result = simulate(
        protocol,
        Multiset({"p0": total}),
        seed=seed,
        max_interactions=max_steps,
        observer=_observer(recorder, metrics),
    )
    outcome = (
        f"protocol x>={n} m={total}: verdict={result.verdict} "
        f"silent={result.silent} interactions={result.interactions} "
        f"productive={result.productive}"
    )
    manifest = build_manifest(
        "protocol",
        seed=seed,
        protocol=protocol,
        outcome=outcome,
        diagnostics=_checked(protocol=protocol),
        n=n,
        total=total,
        max_steps=max_steps,
    )
    return ObservedRun("protocol", recorder, metrics, outcome, manifest)


def run_machine_target(
    *,
    n: int = 1,
    total: int = 3,
    seed: int = 3,
    max_steps: int = 50_000,
    recorder: Optional[TraceRecorder] = None,
    metrics: Optional[MetricsObserver] = None,
) -> ObservedRun:
    """Trace the population machine lowered from the Theorem 3 program."""
    from repro.lipton.construction import build_threshold_program
    from repro.machines.interpreter import run_machine
    from repro.machines.lowering import lower_program

    metrics = metrics or MetricsObserver()
    machine = lower_program(build_threshold_program(n), name=f"lipton{n}")
    result = run_machine(
        machine,
        {"x1": total},
        seed=seed,
        max_steps=max_steps,
        quiet_window=None,
        observer=_observer(recorder, metrics),
    )
    outcome = (
        f"machine lipton{n} total={total}: output={result.output} "
        f"steps={result.steps} restarts={result.restarts} hung={result.hung}"
    )
    manifest = build_manifest(
        "machine",
        seed=seed,
        outcome=outcome,
        diagnostics=_checked(machine=machine),
        machine=machine.name,
        n=n,
        total=total,
        max_steps=max_steps,
    )
    return ObservedRun("machine", recorder, metrics, outcome, manifest)


def run_decide(
    *,
    n: int = 13,
    total: int = 40,
    seed: int = 1,
    max_steps: int = 50_000,
    recorder: Optional[TraceRecorder] = None,
    metrics: Optional[MetricsObserver] = None,
) -> ObservedRun:
    """Observe a multi-attempt ``decide`` of the binary threshold baseline.

    Honours ``REPRO_JOBS`` / ``--jobs``: with ``jobs > 1`` the attempts
    fan out across a process pool and each worker's metrics registry is
    merged back here, so the digest counts every interaction actually
    simulated.  (Tracing stays sequential-only: workers do not stream
    events to the parent recorder, which then sees just the per-attempt
    markers.)
    """
    from repro.baselines import binary_threshold_protocol
    from repro.core.multiset import Multiset
    from repro.core.simulation import decide
    from repro.runtime.pool import resolve_jobs

    metrics = metrics or MetricsObserver()
    jobs = resolve_jobs(None)
    protocol = binary_threshold_protocol(n)
    verdict = decide(
        protocol,
        Multiset({"p0": total}),
        seed=seed,
        attempts=4,
        max_interactions=max_steps,
        observer=_observer(recorder, metrics),
    )
    outcome = (
        f"decide x>={n} m={total} jobs={jobs}: verdict={verdict} "
        f"(4 attempts, first stabilising wins)"
    )
    manifest = build_manifest(
        "decide",
        seed=seed,
        protocol=protocol,
        jobs=jobs,
        outcome=outcome,
        diagnostics=_checked(protocol=protocol),
        n=n,
        total=total,
        attempts=4,
        max_steps=max_steps,
    )
    return ObservedRun("decide", recorder, metrics, outcome, manifest)


def run_pipeline(
    *,
    n: int = 2,
    recorder: Optional[TraceRecorder] = None,
    metrics: Optional[MetricsObserver] = None,
    **_ignored: Any,
) -> ObservedRun:
    """Time the program → machine → protocol compilation pipeline."""
    from repro.conversion.pipeline import compile_threshold_protocol

    metrics = metrics or MetricsObserver()
    result = compile_threshold_protocol(n, observer=_observer(recorder, metrics))
    outcome = (
        f"pipeline lipton-n{n}: machine-size={result.machine_size} "
        f"inner-states={result.inner_state_count} states={result.state_count} "
        f"(bound {result.state_bound})"
    )
    # Program-level checks only: protocol checks on the compiled protocol
    # rebuild its full transition table, disproportionate for a timing
    # trace of the compiler itself (``repro check lipton`` covers it).
    manifest = build_manifest(
        "pipeline",
        program=result.program,
        protocol=result.protocol,
        outcome=outcome,
        diagnostics=_checked(program=result.program, name=f"lipton-n{n}"),
        n=n,
        states=result.state_count,
    )
    return ObservedRun("pipeline", recorder, metrics, outcome, manifest)


TARGETS: Dict[str, Callable[..., ObservedRun]] = {
    "theorem3": run_theorem3,
    "protocol": run_protocol,
    "decide": run_decide,
    "machine": run_machine_target,
    "pipeline": run_pipeline,
}
