"""Standard remainder protocol — decides ``x ≡ r (mod m)`` with Θ(m) states.

The paper's conclusion asks whether remainder predicates admit very
succinct protocols; this module provides the *textbook* construction as a
reference point and as an exercise of the core model: active agents sum
their values modulo ``m``; the unique surviving active agent knows
``x mod m`` and converts the passive agents to its verdict.
"""

from __future__ import annotations

from typing import List

from repro.core.predicates import Remainder
from repro.core.protocol import PopulationProtocol, Transition


def _active(v: int) -> str:
    return f"a{v}"


def _passive(accept: bool) -> str:
    return "pT" if accept else "pF"


def remainder_protocol(m: int, r: int = 0) -> PopulationProtocol:
    """Build the protocol deciding ``x ≡ r (mod m)`` (input state a1)."""
    if m < 1:
        raise ValueError("modulus must be positive")
    r = r % m
    states: List[str] = [_active(v) for v in range(m)] + [_passive(True), _passive(False)]
    transitions: List[Transition] = []
    for v in range(m):
        for w in range(m):
            total = (v + w) % m
            transitions.append(
                Transition(_active(v), _active(w), _active(total), _passive(total == r))
            )
        for b in (True, False):
            if (v % m == r) != b:
                transitions.append(
                    Transition(_active(v), _passive(b), _active(v), _passive(v % m == r))
                )
    accepting = [_active(v) for v in range(m) if v == r] + [_passive(True)]
    return PopulationProtocol(
        states=states,
        transitions=transitions,
        input_states=[_active(1 % m)],
        accepting_states=accepting,
        name=f"remainder(x={r} mod {m})",
    )


def remainder_predicate(m: int, r: int = 0) -> Remainder:
    return Remainder(m, r)
