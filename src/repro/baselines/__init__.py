"""Baseline protocols for Table 1 and for exercising the core model."""

from repro.baselines.binary import (
    binary_state_count,
    binary_threshold_predicate,
    binary_threshold_protocol,
    set_bits_descending,
)
from repro.baselines.majority import majority_predicate, majority_protocol
from repro.baselines.remainder import remainder_predicate, remainder_protocol
from repro.baselines.unary import (
    unary_state_count,
    unary_threshold_predicate,
    unary_threshold_protocol,
)

__all__ = [
    "majority_protocol",
    "majority_predicate",
    "unary_threshold_protocol",
    "unary_threshold_predicate",
    "unary_state_count",
    "binary_threshold_protocol",
    "binary_threshold_predicate",
    "binary_state_count",
    "set_bits_descending",
    "remainder_protocol",
    "remainder_predicate",
]
