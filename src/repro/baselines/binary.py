"""Succinct binary threshold protocol — Θ(log k) states, 1-aware.

This plays the role of the leaderless Blondin–Esparza–Jaax construction
([14] in the paper, Table 1 row 1): it decides ``x ≥ k`` for *arbitrary*
``k`` with Θ(log k) states.

Construction (combine / split / collect):

* value agents hold 0 or a power of two ``2^i`` with ``i ≤ L`` where
  ``2^L`` is the highest set bit of ``k``;
* equal powers combine (``2^i, 2^i ↦ 2^{i+1}, 0``) and, crucially, powers
  can *split back* (``2^{i+1}, 0 ↦ 2^i, 2^i``), which makes the
  non-accepting region reversible and rules out over-combination deadlocks;
* a *collector* assembles the binary digits of ``k`` from the highest bit
  down: ``c_j`` holds exactly the ``j`` highest set bits of ``k``.
  Collectors can also disassemble step by step, again for reversibility;
* the full collector ``c_B`` holds exactly ``k`` units — a sound witness,
  since agent values are conserved — and converts the population to the
  permanent accepting state ``⊤``.

Soundness: an agent's value never exceeds the total ``x``, so ``c_B``
(value exactly ``k``) can only appear when ``x ≥ k``.  Completeness: below
acceptance every move is reversible, so from any reachable configuration
the canonical assembly of ``k`` is reachable whenever ``x ≥ k``; fairness
then guarantees acceptance.  Both directions are verified *exactly* for
small ``k`` in the test suite via terminal-SCC analysis.

The protocol is 1-aware: ``c_B`` certifies the threshold.

Note on speed: reversibility buys correctness, not time — when ``x`` is
close to ``k`` the random walk's hitting time for the exact assembly grows
quickly (the construction trades convergence speed for state count, as
succinct constructions generally do).  Sampled runs should allow slack
above the threshold; tight boundaries are best checked exactly.
"""

from __future__ import annotations

from typing import List

from repro.core.predicates import Threshold
from repro.core.protocol import PopulationProtocol, Transition

TOP = "TOP"


def set_bits_descending(k: int) -> List[int]:
    """The exponents of the set bits of ``k``, highest first."""
    return [i for i in range(k.bit_length() - 1, -1, -1) if k >> i & 1]


def _power(i: int) -> str:
    return f"p{i}"


def _collector(j: int) -> str:
    return f"c{j}"


def binary_threshold_protocol(k: int) -> PopulationProtocol:
    """Build the Θ(log k)-state protocol deciding ``x ≥ k``."""
    if k < 1:
        raise ValueError("threshold must be at least 1")
    if k == 1:
        # x >= 1 holds on every nonempty population: the input state accepts.
        return PopulationProtocol(
            states=["p0"],
            transitions=[],
            input_states=["p0"],
            accepting_states=["p0"],
            name="binary-threshold(k=1)",
        )

    bits = set_bits_descending(k)
    top_bit = bits[0]
    n_bits = len(bits)
    zero = "z"
    powers = [_power(i) for i in range(top_bit + 1)]
    collectors = [_collector(j) for j in range(1, n_bits + 1)]
    states = [zero] + powers + collectors + [TOP]

    transitions: List[Transition] = []
    # Combine and split equal powers (reversible pair).
    for i in range(top_bit):
        transitions.append(Transition(_power(i), _power(i), _power(i + 1), zero))
        transitions.append(Transition(_power(i + 1), zero, _power(i), _power(i)))
    # Collector formation / disassembly: an agent holding the top bit of k
    # may declare itself collector c1, and c1 may step back down.
    for w in states:
        transitions.append(Transition(_power(top_bit), w, _collector(1), w))
        transitions.append(Transition(_collector(1), w, _power(top_bit), w))
    # Collect the remaining bits of k, highest first (reversible).
    for j in range(1, n_bits):
        needed = _power(bits[j])
        transitions.append(Transition(_collector(j), needed, _collector(j + 1), zero))
        transitions.append(Transition(_collector(j + 1), zero, _collector(j), needed))
    # The full collector is a sound witness; acceptance spreads permanently.
    full = _collector(n_bits)
    for w in states:
        if w not in (full, TOP):
            transitions.append(Transition(full, w, full, TOP))
        transitions.append(Transition(TOP, w, TOP, TOP))

    return PopulationProtocol(
        states=states,
        transitions=transitions,
        input_states=[_power(0)],
        accepting_states=[full, TOP],
        name=f"binary-threshold(k={k})",
    )


def binary_threshold_predicate(k: int) -> Threshold:
    return Threshold(k)


def binary_state_count(k: int) -> int:
    """Number of states used by :func:`binary_threshold_protocol`."""
    if k == 1:
        return 1
    return 1 + k.bit_length() + bin(k).count("1") + 1
