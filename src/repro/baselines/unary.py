"""Classic unary threshold protocol — Θ(k) states, 1-aware.

This is the original "flock of birds" construction (Angluin et al. [4],
Table 1 context): every agent holds a partial sum in {0, …, k}; two agents
merge their sums, and an agent reaching ``k`` becomes a permanent accepting
witness that converts everyone.  It is the canonical *1-aware* protocol:
the state ``k`` is reachable iff the threshold is met, and any agent in it
knows the predicate holds.
"""

from __future__ import annotations

from repro.core.predicates import Threshold
from repro.core.protocol import PopulationProtocol, Transition


def unary_threshold_protocol(k: int) -> PopulationProtocol:
    """Build the (k+1)-state protocol deciding ``x ≥ k`` (k ≥ 1).

    States are integers 0…k; the input state is 1; k is accepting.
    """
    if k < 1:
        raise ValueError("threshold must be at least 1")
    transitions = []
    for a in range(1, k):
        for b in range(1, k):
            if a + b < k:
                transitions.append(Transition(a, b, a + b, 0))
            else:
                transitions.append(Transition(a, b, k, k))
    for a in range(0, k):
        transitions.append(Transition(k, a, k, k))
    return PopulationProtocol(
        states=range(k + 1),
        transitions=transitions,
        input_states=[1] if k > 1 else [1],
        accepting_states=[k],
        name=f"unary-threshold(k={k})",
    )


def unary_threshold_predicate(k: int) -> Threshold:
    return Threshold(k)


def unary_state_count(k: int) -> int:
    """Number of states used by :func:`unary_threshold_protocol`."""
    return k + 1
