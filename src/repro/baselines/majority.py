"""The classic 4-state majority protocol (``φ(x, y) ⇔ x ≥ y``).

This is the introductory example of the paper (Section 1) and a standard
exercise for the core model: active agents ``X`` / ``Y`` cancel in pairs
(ties resolve towards acceptance, matching ``x ≥ y``), and survivors
convert the passive agents to their opinion.
"""

from __future__ import annotations

from repro.core.predicates import Majority
from repro.core.protocol import PopulationProtocol, Transition

ACTIVE_X = "X"
ACTIVE_Y = "Y"
PASSIVE_X = "x"
PASSIVE_Y = "y"

INPUT_MAP = {ACTIVE_X: "x", ACTIVE_Y: "y"}


def majority_protocol() -> PopulationProtocol:
    """Build the 4-state majority protocol deciding ``x ≥ y``."""
    transitions = [
        # Cancellation: active opponents neutralise each other.
        Transition(ACTIVE_X, ACTIVE_Y, PASSIVE_X, PASSIVE_Y),
        Transition(ACTIVE_Y, ACTIVE_X, PASSIVE_Y, PASSIVE_X),
        # Survivors convert passives to their opinion.
        Transition(ACTIVE_X, PASSIVE_Y, ACTIVE_X, PASSIVE_X),
        Transition(ACTIVE_Y, PASSIVE_X, ACTIVE_Y, PASSIVE_Y),
        # Tie-break among passives towards acceptance (phi is x >= y, so a
        # fully cancelled population must converge to the accepting opinion).
        Transition(PASSIVE_X, PASSIVE_Y, PASSIVE_X, PASSIVE_X),
    ]
    return PopulationProtocol(
        states=[ACTIVE_X, ACTIVE_Y, PASSIVE_X, PASSIVE_Y],
        transitions=transitions,
        input_states=[ACTIVE_X, ACTIVE_Y],
        accepting_states=[ACTIVE_X, PASSIVE_X],
        name="majority(x>=y)",
    )


def majority_predicate() -> Majority:
    return Majority()
