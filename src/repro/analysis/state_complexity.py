"""State-complexity accounting — the data behind Table 1 and Theorem 1.

For each construction we report the number of protocol states as a
function of the decided threshold ``k`` (and of ``|φ| = bit_length(k)``):

* ``classic unary``  (Angluin et al. [4]-style): ``k + 1`` states — Θ(k);
* ``binary (BEJ-style)`` ([14] leaderless): Θ(log k);
* ``leader-assisted`` ([14] with leaders, modelled as the bare Lipton
  counter under trusted initialisation): Θ(log log k);
* ``this paper`` (leaderless, Theorem 1): Θ(log log k) — the protocol
  obtained from the full pipeline, counted in closed form.

The paper's upper bounds hold for *infinitely many* k (the family
``k_n = threshold(n)``); the classic and binary rows hold for all k.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.baselines.binary import binary_state_count
from repro.baselines.unary import unary_state_count
from repro.core.predicates import binary_length
from repro.lipton.construction import build_threshold_program
from repro.lipton.levels import threshold
from repro.machines.lowering import lower_program
from repro.programs.size import program_size
from repro.conversion.protocol_from_machine import final_state_count


@dataclass(frozen=True)
class Table1Row:
    """One threshold family member with all constructions' state counts."""

    n: int  # number of levels of this paper's construction
    k: int  # threshold(n)
    formula_size: int  # |φ| = bit_length(k)
    unary_states: Optional[int]  # None when k is absurdly large
    binary_states: int
    leader_states: int  # bare Lipton counter (trusted init) via pipeline
    this_paper_states: int  # Theorem 1 protocol
    program_size: int  # Theorem 3 program size
    machine_size: int  # Proposition 14 machine size


def table1_row(n: int, *, unary_cap: int = 10**6) -> Table1Row:
    """Compute one row of the Table 1 reproduction for ``k = threshold(n)``."""
    k = threshold(n)
    full_program = build_threshold_program(n, error_checking=True)
    bare_program = build_threshold_program(n, error_checking=False)
    full_machine = lower_program(full_program, name=f"lipton-{n}")
    bare_machine = lower_program(bare_program, name=f"bare-{n}")
    return Table1Row(
        n=n,
        k=k,
        formula_size=binary_length(k),
        unary_states=unary_state_count(k) if k <= unary_cap else None,
        binary_states=binary_state_count(k),
        leader_states=final_state_count(bare_machine),
        this_paper_states=final_state_count(full_machine),
        program_size=program_size(full_program).total,
        machine_size=full_machine.size(),
    )


def table1_rows(max_n: int, *, unary_cap: int = 10**6) -> List[Table1Row]:
    return [table1_row(n, unary_cap=unary_cap) for n in range(1, max_n + 1)]


@dataclass(frozen=True)
class Theorem1Datum:
    """Theorem 1 check for a single n: states ∈ O(n), k ≥ 2^(2^(n-1))."""

    n: int
    k: int
    states: int
    states_per_level: float
    double_exponential_bound: int
    bound_met: bool


def theorem1_data(max_n: int) -> List[Theorem1Datum]:
    """States of the Theorem 1 protocol vs the double-exponential bound."""
    rows: List[Theorem1Datum] = []
    for n in range(1, max_n + 1):
        k = threshold(n)
        machine = lower_program(build_threshold_program(n))
        states = final_state_count(machine)
        bound = 2 ** (2 ** (n - 1))
        rows.append(
            Theorem1Datum(
                n=n,
                k=k,
                states=states,
                states_per_level=states / n,
                double_exponential_bound=bound,
                bound_met=k >= bound,
            )
        )
    return rows
