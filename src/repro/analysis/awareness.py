"""1-awareness probing (Section 2 discussion).

A threshold protocol is *1-aware* (Blondin–Esparza–Jaax [14]) when, on
accepting runs, some agent at some point *knows* the threshold has been
exceeded — operationally, the protocol has *certificate states* that are
reachable only from initial configurations satisfying the predicate.  All
pre-2023 constructions are 1-aware; the paper's construction evades the
Ω(log k) conditional lower bound for 1-aware protocols by never committing:
it accepts provisionally and keeps re-checking.

Two probes:

* :func:`certificate_states_exact` — exhaustive reachability on small
  instances: states reachable for some accepting input but for *no*
  rejecting input;
* :func:`certificate_states_sampled` — the same criterion on sampled runs
  (for protocols whose configuration graphs are too large), reporting
  which states were ever observed below/above the threshold.

For the unary and binary baselines the exact probe finds nonempty
certificates (the witness states ``k`` / ``c_B``); for the converted
construction the sampled probe comes up empty — every state it ever
occupies above the threshold also occurs below it.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, FrozenSet, Iterable, Set

from repro.core.multiset import Multiset
from repro.core.protocol import PopulationProtocol
from repro.core.scheduler import EnabledTransitionScheduler
from repro.core.semantics import reachable_configurations, apply_transition_inplace


def reachable_states(
    protocol: PopulationProtocol,
    config: Multiset,
    max_configurations: int = 200_000,
) -> FrozenSet[object]:
    """All states occupied in some configuration reachable from ``config``."""
    nodes = reachable_configurations(protocol, config, max_configurations)
    occupied: Set[object] = set()
    for snapshot in nodes.values():
        occupied.update(snapshot.support())
    return frozenset(occupied)


@dataclass(frozen=True)
class AwarenessProbe:
    """Result of a certificate-state search."""

    below_states: FrozenSet[object]
    above_states: FrozenSet[object]
    certificate_states: FrozenSet[object]

    @property
    def is_one_aware_evidence(self) -> bool:
        """Nonempty certificates are (necessary) evidence of 1-awareness."""
        return bool(self.certificate_states)


def certificate_states_exact(
    protocol: PopulationProtocol,
    make_initial: Callable[[int], Multiset],
    below: Iterable[int],
    above: Iterable[int],
    max_configurations: int = 200_000,
) -> AwarenessProbe:
    """Exact probe: states reachable for every input in ``above`` but for
    no input in ``below``."""
    below_states: Set[object] = set()
    for x in below:
        below_states |= reachable_states(protocol, make_initial(x), max_configurations)
    above_states: Set[object] = set()
    first = True
    common_above: Set[object] = set()
    for x in above:
        reached = reachable_states(protocol, make_initial(x), max_configurations)
        above_states |= reached
        if first:
            common_above = set(reached)
            first = False
        else:
            common_above &= reached
    return AwarenessProbe(
        below_states=frozenset(below_states),
        above_states=frozenset(above_states),
        certificate_states=frozenset(common_above - below_states),
    )


def sampled_occupied_states(
    protocol: PopulationProtocol,
    config: Multiset,
    *,
    seed: int = 0,
    steps: int = 200_000,
) -> FrozenSet[object]:
    """States occupied along one sampled run of ``steps`` productive
    interactions (enabled-transition scheduler)."""
    rng = random.Random(seed)
    scheduler = EnabledTransitionScheduler()
    current = config.copy()
    occupied: Set[object] = set(current.support())
    for _ in range(steps):
        step = scheduler.select(protocol, current, rng)
        if step.transition is None:
            break
        apply_transition_inplace(current, step.transition)
        occupied.add(step.transition.q2)
        occupied.add(step.transition.r2)
    return frozenset(occupied)


@dataclass(frozen=True)
class PoisoningProbe:
    """Result of a single-agent poisoning experiment.

    1-aware protocols have *witness* states: placing one noise agent in
    such a state forces acceptance even below the threshold (the unary
    protocol's state ``k``, the binary protocol's collector).  The paper's
    construction "only accepts provisionally and continues to check", so
    no single state can force acceptance — poisoning any state of a
    below-threshold population still stabilises to *false*.
    """

    state_verdicts: dict
    population: int

    @property
    def resistant(self) -> bool:
        """True when no poisoned state flipped the verdict to accept."""
        return all(v is False for v in self.state_verdicts.values())

    @property
    def poisoning_states(self) -> FrozenSet[object]:
        return frozenset(
            q for q, v in self.state_verdicts.items() if v is not False
        )


def poisoning_probe_exact(
    protocol: PopulationProtocol,
    below_config: Multiset,
    states: Iterable[object],
    max_configurations: int = 300_000,
) -> PoisoningProbe:
    """Exact poisoning probe: add one agent in each candidate state to a
    below-threshold configuration and compute the exact fair-run verdict."""
    from repro.core.multiset import Multiset as _Multiset
    from repro.core.stability import stabilisation_verdict

    verdicts = {}
    for q in states:
        poisoned = below_config + _Multiset.singleton(q)
        verdicts[q] = stabilisation_verdict(protocol, poisoned, max_configurations)
    return PoisoningProbe(state_verdicts=verdicts, population=below_config.size + 1)


def poisoning_probe_sampled(
    protocol: PopulationProtocol,
    below_config: Multiset,
    states: Iterable[object],
    *,
    seed: int = 0,
    max_interactions: int = 2_000_000,
    convergence_window: int = 80_000,
) -> PoisoningProbe:
    """Sampled poisoning probe for protocols too large for exact checking
    (one run per candidate state; a verdict of ``None`` means the budget
    ran out, which is reported as-is, not as acceptance)."""
    from repro.core.multiset import Multiset as _Multiset
    from repro.core.simulation import simulate

    rng = random.Random(seed)
    verdicts = {}
    for q in states:
        poisoned = below_config + _Multiset.singleton(q)
        result = simulate(
            protocol,
            poisoned,
            seed=rng.randrange(2**31),
            max_interactions=max_interactions,
            convergence_window=convergence_window,
        )
        verdicts[q] = result.verdict
    return PoisoningProbe(state_verdicts=verdicts, population=below_config.size + 1)


def certificate_states_sampled(
    protocol: PopulationProtocol,
    make_initial: Callable[[int], Multiset],
    below: Iterable[int],
    above: Iterable[int],
    *,
    seed: int = 0,
    steps: int = 200_000,
    runs_per_input: int = 3,
) -> AwarenessProbe:
    """Sampled probe: states seen on above-threshold runs minus states seen
    on below-threshold runs (a *heuristic under-approximation* of
    certificates: an empty result is evidence of non-1-awareness)."""
    rng = random.Random(seed)
    below_states: Set[object] = set()
    for x in below:
        for _ in range(runs_per_input):
            below_states |= sampled_occupied_states(
                protocol, make_initial(x), seed=rng.randrange(2**31), steps=steps
            )
    above_common: Set[object] = set()
    above_states: Set[object] = set()
    first = True
    for x in above:
        for _ in range(runs_per_input):
            reached = sampled_occupied_states(
                protocol, make_initial(x), seed=rng.randrange(2**31), steps=steps
            )
            above_states |= reached
            if first:
                above_common = set(reached)
                first = False
            else:
                above_common &= reached
    return AwarenessProbe(
        below_states=frozenset(below_states),
        above_states=frozenset(above_states),
        certificate_states=frozenset(above_common - below_states),
    )
