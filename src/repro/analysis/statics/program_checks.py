"""Static checks over population programs beyond well-formedness.

Well-formedness (PRG001–PRG007) lives in
:mod:`repro.programs.validate` and is re-used here verbatim; this module
adds the structural analyses that need whole-program context:

* ``PRG008`` (warning) — unreachable statement: code after a statement
  that always terminates the procedure (``return``, ``restart``, an
  ``if`` whose both branches terminate, or a ``while true`` loop, which
  never falls through);
* ``PRG009`` (warning) — register read but never written: a ``detect``
  or move-source on a register no instruction ever moves *into*.  With
  no unit ever present the detects are constantly false and the moves
  hang.  Suppressed when the program contains a ``restart``: a restart
  redistributes the population over *all* registers nondeterministically,
  so every register is potentially written (Figure 1's ``z`` is exactly
  this pattern);
* ``PRG010`` (info) — register declared but never read (moves into it
  are allowed: a write-only register is a sink, common and harmless);
* ``PRG011`` (warning) — dead procedure: not reachable from Main in the
  call graph (it still inflates ``L`` and the lowered machine);
* ``PRG012`` (error) — swap-size inconsistency: the checker's own
  independent union-find over swap instructions disagrees with
  :func:`repro.programs.size.swap_size` (engine invariant; catches a
  drifted size metric), plus one info diagnostic per nontrivial swap
  component (each component of ``c`` registers contributes ``c·(c−1)``
  to the paper's size metric — worth seeing explicitly).

All diagnostics carry the program name in ``target`` and the procedure
name (where applicable) in ``location``.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Sequence, Set, Tuple

from repro.core.diagnostics import Diagnostic, ERROR, INFO, WARNING
from repro.programs.ast import (
    Const,
    Detect,
    If,
    Move,
    PopulationProgram,
    Restart,
    Return,
    Statement,
    Swap,
    While,
    condition_atoms,
    iter_statements,
)
from repro.programs.size import swap_components, swap_size
from repro.programs.validate import call_graph, validate_diagnostics


def _terminates(stmt: Statement) -> bool:
    """Whether control never reaches the statement after ``stmt``.

    ``return`` and ``restart`` leave the procedure; an ``if`` is terminal
    iff both branches are; ``while true`` never falls through (inside it,
    only a ``return``/``restart`` exits — both leave the procedure
    entirely, not just the loop).
    """
    if isinstance(stmt, (Return, Restart)):
        return True
    if isinstance(stmt, If):
        return _body_terminates(stmt.then_body) and _body_terminates(stmt.else_body)
    if isinstance(stmt, While):
        cond = stmt.condition
        return isinstance(cond, Const) and cond.value
    return False


def _body_terminates(body: Sequence[Statement]) -> bool:
    return any(_terminates(stmt) for stmt in body)


def _unreachable_after(body: Sequence[Statement]) -> List[Tuple[Statement, str]]:
    """``(dead_statement, why)`` pairs for every statement that follows a
    terminating one, recursing into the live prefix's nested bodies."""
    out: List[Tuple[Statement, str]] = []
    for idx, stmt in enumerate(body):
        if isinstance(stmt, If):
            out.extend(_unreachable_after(stmt.then_body))
            out.extend(_unreachable_after(stmt.else_body))
        elif isinstance(stmt, While):
            out.extend(_unreachable_after(stmt.body))
        if _terminates(stmt):
            why = str(stmt) if not isinstance(stmt, (If, While)) else (
                "while true loop" if isinstance(stmt, While) else "if with terminating branches"
            )
            out.extend((dead, why) for dead in body[idx + 1 :])
            break
    return out


def _register_usage(
    program: PopulationProgram,
) -> Tuple[Set[str], Set[str]]:
    """``(read, written)`` register sets over the whole program.

    A move reads its source and writes its target; a swap both reads and
    writes both sides; a detect reads its register.
    """
    read: Set[str] = set()
    written: Set[str] = set()
    for proc in program.procedures.values():
        for stmt in iter_statements(proc.body):
            if isinstance(stmt, Move):
                read.add(stmt.src)
                written.add(stmt.dst)
            elif isinstance(stmt, Swap):
                read.update((stmt.a, stmt.b))
                written.update((stmt.a, stmt.b))
            elif isinstance(stmt, (If, While)):
                for atom in condition_atoms(stmt.condition):
                    if isinstance(atom, Detect):
                        read.add(atom.register)
    return read, written


def _reachable_procedures(program: PopulationProgram) -> Set[str]:
    graph = call_graph(program)
    seen: Set[str] = set()
    stack = [program.main]
    while stack:
        name = stack.pop()
        if name in seen or name not in program.procedures:
            continue
        seen.add(name)
        stack.extend(graph.get(name, ()))
    return seen


def check_program(
    program: PopulationProgram, *, name: str = "program"
) -> List[Diagnostic]:
    """All static diagnostics for ``program`` (see module doc for codes).

    Starts from :func:`repro.programs.validate.validate_diagnostics`
    (PRG001–PRG007) and layers the whole-program analyses on top.
    """
    out = [replace(d, target=name) for d in validate_diagnostics(program)]

    # -- PRG008: unreachable statements --------------------------------
    for proc in program.procedures.values():
        for dead, why in _unreachable_after(proc.body):
            out.append(
                Diagnostic(
                    code="PRG008",
                    severity=WARNING,
                    message=f"unreachable statement after {why}: {dead}",
                    target=name,
                    location=proc.name,
                )
            )

    # -- PRG009 / PRG010: register liveness ----------------------------
    read, written = _register_usage(program)
    has_restart = any(
        isinstance(stmt, Restart)
        for proc in program.procedures.values()
        for stmt in iter_statements(proc.body)
    )
    for reg in program.registers:
        if reg in read and reg not in written and not has_restart:
            out.append(
                Diagnostic(
                    code="PRG009",
                    severity=WARNING,
                    message=f"register {reg!r} is read but never written: "
                    "detects are constantly false and moves out of it hang "
                    "unless the input places units there",
                    target=name,
                    location=reg,
                )
            )
        if reg not in read:
            used = "written but never read" if reg in written else "never used"
            out.append(
                Diagnostic(
                    code="PRG010",
                    severity=INFO,
                    message=f"register {reg!r} is {used}",
                    target=name,
                    location=reg,
                )
            )

    # -- PRG011: dead procedures ---------------------------------------
    reachable = _reachable_procedures(program)
    for proc_name in sorted(program.procedures):
        if proc_name not in reachable:
            out.append(
                Diagnostic(
                    code="PRG011",
                    severity=WARNING,
                    message=f"procedure {proc_name!r} is not reachable from "
                    f"{program.main!r}",
                    target=name,
                    location=proc_name,
                )
            )

    # -- PRG012: swap-size cross-check + component report --------------
    out.extend(_swap_diagnostics(program, name))
    return out


def _swap_diagnostics(program: PopulationProgram, name: str) -> List[Diagnostic]:
    """Recompute the swap transitive closure independently of
    ``programs/size.py`` (plain BFS over an adjacency map instead of its
    union-find) and compare."""
    adj: Dict[str, Set[str]] = {}
    for proc in program.procedures.values():
        for stmt in iter_statements(proc.body):
            if isinstance(stmt, Swap):
                adj.setdefault(stmt.a, set()).add(stmt.b)
                adj.setdefault(stmt.b, set()).add(stmt.a)
    components: List[Tuple[str, ...]] = []
    seen: Set[str] = set()
    for start in sorted(adj):
        if start in seen:
            continue
        comp = {start}
        frontier = [start]
        while frontier:
            reg = frontier.pop()
            for nxt in adj.get(reg, ()):
                if nxt not in comp:
                    comp.add(nxt)
                    frontier.append(nxt)
        seen |= comp
        components.append(tuple(sorted(comp)))

    independent = sum(len(c) * (len(c) - 1) for c in components if len(c) >= 2)
    official = swap_size(program)
    out: List[Diagnostic] = []
    if independent != official:
        out.append(
            Diagnostic(
                code="PRG012",
                severity=ERROR,
                message=f"swap-size mismatch: size.py reports {official}, "
                f"independent closure computes {independent}",
                target=name,
                data={
                    "official": official,
                    "independent": independent,
                    "official_components": sorted(
                        swap_components(program).values()
                    ),
                },
            )
        )
    for comp in components:
        if len(comp) >= 2:
            out.append(
                Diagnostic(
                    code="PRG012",
                    severity=INFO,
                    message=f"swap component {comp!r} contributes "
                    f"{len(comp) * (len(comp) - 1)} to the size metric",
                    target=name,
                    data={"component": list(comp)},
                )
            )
    return out
