"""Named check targets and the fingerprint-cached check runner.

``python -m repro check <target>`` resolves names here.  A target is a
named bundle of artifacts (protocols, programs, machines); running it
produces the concatenated diagnostics of every artifact's checker.

Check results are cached through :func:`repro.runtime.cache.artifact_cache`
keyed by a content fingerprint of the artifact *plus* a checker version —
re-checking an unchanged protocol is a dict lookup (or a disk read with
``REPRO_CACHE_DIR`` set), and bumping :data:`CHECKER_VERSION` after a
checker change invalidates exactly the stale results.  Cached values are
the ``to_dict`` forms, so disk entries stay readable across refactors of
the ``Diagnostic`` class itself.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence, Tuple

from repro.core.diagnostics import Diagnostic

#: Bump when any checker's behaviour changes; keys cached check results.
CHECKER_VERSION = 1


# ----------------------------------------------------------------------
# Cached single-artifact checks
# ----------------------------------------------------------------------
def _cached(kind: str, fingerprint: str, run: Callable[[], List[Diagnostic]]):
    from repro.runtime.cache import artifact_cache

    key = f"check-{kind}-v{CHECKER_VERSION}-{fingerprint}"
    raw = artifact_cache().get_or_build(
        key, lambda: [d.to_dict() for d in run()]
    )
    return [Diagnostic.from_dict(entry) for entry in raw]


def check_protocol_cached(protocol) -> List[Diagnostic]:
    from repro.analysis.statics.protocol_checks import check_protocol
    from repro.runtime.cache import protocol_fingerprint

    return _cached(
        "protocol", protocol_fingerprint(protocol), lambda: check_protocol(protocol)
    )


def check_program_cached(program, *, name: str = "program") -> List[Diagnostic]:
    from repro.analysis.statics.program_checks import check_program
    from repro.runtime.cache import program_fingerprint

    return _cached(
        "program",
        program_fingerprint(program),
        lambda: check_program(program, name=name),
    )


def check_machine_cached(machine) -> List[Diagnostic]:
    from repro.analysis.statics.machine_checks import check_machine
    from repro.runtime.cache import machine_fingerprint

    return _cached(
        "machine", machine_fingerprint(machine), lambda: check_machine(machine)
    )


def check_pipeline(program, *, name: str) -> List[Diagnostic]:
    """Check all three IRs of a compiled program: the program itself, the
    lowered machine, and the final protocol (via the compilation cache,
    so the expensive build happens at most once per content address)."""
    from repro.runtime.cache import cached_compile_program

    result = cached_compile_program(program, name)
    out = check_program_cached(program, name=name)
    out.extend(check_machine_cached(result.machine))
    out.extend(check_protocol_cached(result.protocol))
    return out


# ----------------------------------------------------------------------
# The registry
# ----------------------------------------------------------------------
def _check_examples() -> List[Diagnostic]:
    from repro.programs.examples import figure1_program, simple_threshold_program

    out = check_program_cached(figure1_program(), name="figure1")
    out.extend(
        check_program_cached(simple_threshold_program(3), name="simple-threshold-3")
    )
    return out


def _check_baselines() -> List[Diagnostic]:
    from repro.baselines.binary import binary_threshold_protocol
    from repro.baselines.majority import majority_protocol
    from repro.baselines.remainder import remainder_protocol
    from repro.baselines.unary import unary_threshold_protocol

    out: List[Diagnostic] = []
    for protocol in (
        unary_threshold_protocol(5),
        binary_threshold_protocol(13),
        majority_protocol(),
        remainder_protocol(3, 1),
    ):
        out.extend(check_protocol_cached(protocol))
    return out


def _check_pipelines() -> List[Diagnostic]:
    from repro.programs.examples import simple_threshold_program

    return check_pipeline(simple_threshold_program(2), name="simple-threshold-2")


def _check_lipton() -> List[Diagnostic]:
    # n = 1 keeps the target tractable: the converted protocol already has
    # ~430k transitions there, and n = 2 compiles to a table too large to
    # check interactively (the double-exponential is doing its job).
    from repro.lipton.construction import build_threshold_program

    return check_pipeline(build_threshold_program(1), name="lipton-n1")


#: name → (description, runner).  ``all`` is synthesised below.
TARGETS: Dict[str, Tuple[str, Callable[[], List[Diagnostic]]]] = {
    "examples": (
        "the example programs (figure1, simple-threshold)",
        _check_examples,
    ),
    "baselines": (
        "the baseline protocols (unary, binary, majority, remainder)",
        _check_baselines,
    ),
    "pipeline": (
        "a full program → machine → protocol compilation (simple-threshold)",
        _check_pipelines,
    ),
    "lipton": (
        "the Theorem 1 construction at n = 1, through all three IRs",
        _check_lipton,
    ),
}


def target_names() -> List[str]:
    return [*TARGETS, "all"]


def run_target(name: str) -> List[Diagnostic]:
    """Diagnostics for one named target (``all`` = every registered one).

    Raises ``KeyError`` for unknown names; the CLI turns that into a
    usage error (exit 2).
    """
    if name == "all":
        out: List[Diagnostic] = []
        for _description, runner in TARGETS.values():
            out.extend(runner())
        return out
    return TARGETS[name][1]()


def run_targets(names: Sequence[str]) -> List[Diagnostic]:
    out: List[Diagnostic] = []
    for name in names:
        out.extend(run_target(name))
    return out
