"""Static verification layer over the three IRs (protocols, programs,
machines).

One checker per IR, all reporting uniform
:class:`~repro.core.diagnostics.Diagnostic` records:

* :func:`check_protocol` — coverability-based dead-transition and
  unreachable-state analysis, shadowing, output-partition completeness,
  silence certificates, compiled-table conservation (``PROT001–007``);
* :func:`check_program` — well-formedness (via
  :func:`repro.programs.validate.validate_diagnostics`) plus unreachable
  statements, register liveness, dead procedures and the swap-size
  cross-check (``PRG001–012``);
* :func:`check_machine` — IP-graph reachability, dead pointer-domain
  values, return-pointer discipline, end-hang detection (``MCH001–004``).

The ``*_cached`` variants and the named-target registry used by
``python -m repro check`` live in :mod:`repro.analysis.statics.targets`;
the source lint (``LNT*``) is the separate :mod:`repro.lint` package.
The full code table is in DESIGN.md §12.
"""

from repro.core.diagnostics import (
    Diagnostic,
    DiagnosticError,
    at_or_above,
    count_by_severity,
    diagnostics_to_json,
    max_severity,
    render_diagnostics,
    severity_rank,
)
from repro.analysis.statics.machine_checks import (
    check_machine,
    instruction_successors,
    reachable_instructions,
)
from repro.analysis.statics.program_checks import check_program
from repro.analysis.statics.protocol_checks import (
    check_protocol,
    check_table_conservation,
    coverable_states,
    self_silent_states,
)
from repro.analysis.statics.targets import (
    TARGETS,
    check_machine_cached,
    check_pipeline,
    check_program_cached,
    check_protocol_cached,
    run_target,
    run_targets,
    target_names,
)

__all__ = [
    "Diagnostic",
    "DiagnosticError",
    "at_or_above",
    "count_by_severity",
    "diagnostics_to_json",
    "max_severity",
    "render_diagnostics",
    "severity_rank",
    "check_protocol",
    "check_table_conservation",
    "coverable_states",
    "self_silent_states",
    "check_program",
    "check_machine",
    "instruction_successors",
    "reachable_instructions",
    "TARGETS",
    "run_target",
    "run_targets",
    "target_names",
    "check_protocol_cached",
    "check_program_cached",
    "check_machine_cached",
    "check_pipeline",
]
