"""Static checks over population protocols (the bottom IR).

All checks are purely structural — no simulation, no sampling — and run
in (near-)linear time in ``|Q| + |δ|``, so they are cheap enough to gate
every run.

The reachability core is the *counter abstraction*: the set of states
coverable from **some** initial configuration.  Because initial
configurations are arbitrary multisets over the input states (``ℕ^I``),
the abstraction is exact for per-state coverability: two runs on disjoint
sub-populations can be glued side by side, so if ``q`` and ``r`` are each
coverable then a configuration containing both simultaneously is
reachable (and likewise two agents in one coverable state, by doubling
the witness population).  States outside the closure are therefore
*provably* unreachable, and a transition whose precondition pair can
never be covered is *provably* dead — no Monte Carlo involved.  This is
the saturation used in the state-complexity lower-bound line of work
(Czerner–Esparza–Leroux, arXiv:2102.11619), where reachable states, dead
transitions and certificate states are first-class objects.

Diagnostic codes (table in DESIGN.md §12):

* ``PROT001`` (warning) — dead transition: its precondition pair is not
  simultaneously coverable from any initial configuration;
* ``PROT002`` (warning) — state unreachable from every initial
  configuration (counts against ``|Q|``, the paper's complexity measure,
  without contributing behaviour);
* ``PROT003`` (warning) — shadowed transition: an earlier transition on
  the same ordered precondition has the identical post multiset, so the
  later one only skews tie-break weights;
* ``PROT004`` (warning) — trivial output partition: no reachable state
  is accepting (the protocol can never output *true*) or every reachable
  state is (never *false*);
* ``PROT005`` (info) — silence certificate: the reachable self-silent
  states, split by output side.  A silent configuration with two agents
  sharing a state must be supported on these;
* ``PROT006`` (info) — explicit no-op transition (harmless, but a real
  sampling candidate in uniform mode and dead weight in ``|δ|``);
* ``PROT007`` (error) — conservation violation: a compiled
  :class:`~repro.core.fastpath.TransitionTable` candidate whose net
  deltas do not sum to zero agents.  Impossible for tables compiled from
  well-formed transitions; guards alternative engines and cache
  corruption.

Large protocols aggregate: per code, at most :data:`DETAIL_LIMIT`
itemised findings are emitted, then one summary diagnostic carries the
remainder count (the ``data`` payload always has the exact totals).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Set, Tuple

from repro.core.diagnostics import Diagnostic, ERROR, INFO, WARNING
from repro.core.multiset import Multiset
from repro.core.protocol import PopulationProtocol

#: Itemised findings per code before aggregation kicks in.
DETAIL_LIMIT = 25


def coverable_states(protocol: PopulationProtocol) -> FrozenSet[object]:
    """States occupied in some configuration reachable from some initial
    configuration (exact, via the counter abstraction — see module doc).

    Worklist saturation: a transition fires once both its pre-states are
    covered; input states seed the closure.
    """
    covered: Set[object] = set(protocol.input_states)
    # Index transitions by each pre-state so the worklist touches only
    # transitions that might newly fire.
    by_pre: Dict[object, List[Tuple[object, object, object]]] = {}
    for t in protocol.transitions:
        by_pre.setdefault(t.q, []).append((t.r, t.q2, t.r2))
        if t.r != t.q:
            by_pre.setdefault(t.r, []).append((t.q, t.q2, t.r2))
    worklist = list(covered)
    while worklist:
        state = worklist.pop()
        for other, q2, r2 in by_pre.get(state, ()):
            if other in covered:
                for post in (q2, r2):
                    if post not in covered:
                        covered.add(post)
                        worklist.append(post)
    return frozenset(covered)


def self_silent_states(protocol: PopulationProtocol) -> FrozenSet[object]:
    """States ``q`` such that the ordered pair ``(q, q)`` has no
    configuration-changing transition."""
    noisy: Set[object] = set()
    for t in protocol.transitions:
        if t.q == t.r and Multiset([t.q2, t.r2]) != Multiset([t.q, t.r]):
            noisy.add(t.q)
    return frozenset(protocol.states - noisy)


def _aggregate(
    findings: List[Diagnostic], code: str, summary: str, total: int
) -> List[Diagnostic]:
    """Cap itemised findings, appending a remainder summary."""
    if total <= DETAIL_LIMIT:
        return findings
    kept = findings[:DETAIL_LIMIT]
    sample = kept[0]
    kept.append(
        Diagnostic(
            code=code,
            severity=sample.severity,
            message=f"{summary} ({total - DETAIL_LIMIT} more not itemised)",
            target=sample.target,
            data={"total": total},
        )
    )
    return kept


def check_protocol(protocol: PopulationProtocol) -> List[Diagnostic]:
    """All static diagnostics for ``protocol`` (see module doc for codes)."""
    name = protocol.name
    out: List[Diagnostic] = []
    covered = coverable_states(protocol)

    # -- PROT002: unreachable states -----------------------------------
    unreachable = sorted(protocol.states - covered, key=repr)
    findings = [
        Diagnostic(
            code="PROT002",
            severity=WARNING,
            message=f"state {state!r} is unreachable from every initial "
            "configuration",
            target=name,
            location=repr(state),
        )
        for state in unreachable[:DETAIL_LIMIT]
    ]
    out.extend(
        _aggregate(
            findings,
            "PROT002",
            f"{len(unreachable)} of {len(protocol.states)} states are "
            "unreachable from every initial configuration",
            len(unreachable),
        )
    )

    # -- PROT001 dead + PROT003 shadowed + PROT006 no-op ----------------
    dead: List[Diagnostic] = []
    shadowed: List[Diagnostic] = []
    noops: List[Diagnostic] = []
    n_dead = n_shadowed = n_noops = 0
    seen_effects: Dict[Tuple[object, object], List[Multiset]] = {}
    for t in protocol.transitions:
        live = t.q in covered and t.r in covered
        if not live:
            n_dead += 1
            if len(dead) < DETAIL_LIMIT:
                dead.append(
                    Diagnostic(
                        code="PROT001",
                        severity=WARNING,
                        message=f"dead transition {t!r}: precondition "
                        "is never simultaneously coverable",
                        target=name,
                        location=repr(t),
                    )
                )
        if t.is_noop():
            n_noops += 1
            if len(noops) < DETAIL_LIMIT:
                noops.append(
                    Diagnostic(
                        code="PROT006",
                        severity=INFO,
                        message=f"explicit no-op transition {t!r}",
                        target=name,
                        location=repr(t),
                    )
                )
        effects = seen_effects.setdefault((t.q, t.r), [])
        post = t.post()
        if post in effects:
            n_shadowed += 1
            if len(shadowed) < DETAIL_LIMIT:
                shadowed.append(
                    Diagnostic(
                        code="PROT003",
                        severity=WARNING,
                        message=f"transition {t!r} is shadowed: an earlier "
                        "transition on the same ordered pair has the same "
                        "post multiset",
                        target=name,
                        location=repr(t),
                    )
                )
        else:
            effects.append(post)
    out.extend(_aggregate(dead, "PROT001", f"{n_dead} dead transitions", n_dead))
    out.extend(
        _aggregate(
            shadowed, "PROT003", f"{n_shadowed} shadowed transitions", n_shadowed
        )
    )
    out.extend(
        _aggregate(noops, "PROT006", f"{n_noops} no-op transitions", n_noops)
    )

    # -- PROT004: output-partition completeness over reachable states ---
    reachable_accepting = covered & protocol.accepting_states
    reachable_rejecting = covered - protocol.accepting_states
    if not reachable_accepting:
        out.append(
            Diagnostic(
                code="PROT004",
                severity=WARNING,
                message="no reachable state is accepting: the protocol can "
                "never output true",
                target=name,
                data={"reachable": len(covered)},
            )
        )
    if not reachable_rejecting:
        out.append(
            Diagnostic(
                code="PROT004",
                severity=WARNING,
                message="every reachable state is accepting: the protocol can "
                "never output false",
                target=name,
                data={"reachable": len(covered)},
            )
        )

    # -- PROT005: silence certificates ---------------------------------
    silent = self_silent_states(protocol) & covered
    silent_true = sorted(silent & protocol.accepting_states, key=repr)
    silent_false = sorted(silent - protocol.accepting_states, key=repr)
    out.append(
        Diagnostic(
            code="PROT005",
            severity=INFO,
            message=f"silence certificate: {len(silent_true)} reachable "
            f"self-silent accepting state(s), {len(silent_false)} rejecting",
            target=name,
            data={
                "accepting": [repr(s) for s in silent_true[:DETAIL_LIMIT]],
                "rejecting": [repr(s) for s in silent_false[:DETAIL_LIMIT]],
                "accepting_total": len(silent_true),
                "rejecting_total": len(silent_false),
            },
        )
    )

    # -- PROT007: compiled-table conservation --------------------------
    out.extend(check_table_conservation(protocol))
    return out


def check_table_conservation(protocol: PopulationProtocol) -> List[Diagnostic]:
    """PROT007 — every compiled candidate's net deltas must sum to zero
    agents, in both sampling modes (pairwise interactions conserve the
    population; a nonzero sum means a corrupted or miscompiled table)."""
    from repro.runtime.cache import cached_transition_table

    table = cached_transition_table(protocol)
    out: List[Diagnostic] = []
    for mode_name, mode in (("enabled", table.enabled), ("uniform", table.uniform)):
        for key in mode.keys:
            for cand in key[4]:
                deltas = cand[6]
                if sum(d for _s, d in deltas) != 0:
                    out.append(
                        Diagnostic(
                            code="PROT007",
                            severity=ERROR,
                            message=f"compiled candidate {cand[7]!r} does not "
                            f"conserve agents in {mode_name} mode "
                            f"(net {sum(d for _s, d in deltas):+d})",
                            target=protocol.name,
                            location=repr(cand[7]),
                            data={"mode": mode_name},
                        )
                    )
    return out
