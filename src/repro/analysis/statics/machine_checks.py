"""Static checks over population machines (the middle IR).

The control-flow graph over instruction addresses ``1..L`` is exact: a
``move``/``detect`` or a non-IP assignment at address ``i`` steps to
``i + 1`` (stepping past ``L`` hangs); an assignment ``IP := f(Y)`` jumps
to every value of ``f`` (the machine validator already guarantees these
lie in ``{1..L}``).  Nondeterminism (detect, hangs) only prunes paths,
never adds them, so reachability over this graph over-approximates
dynamic reachability — an instruction unreachable here is unreachable,
period.

Diagnostic codes:

* ``MCH001`` (warning) — unreachable instruction: no CFG path from
  address 1 (dead weight in ``|𝓘|``, the machine size metric);
* ``MCH002`` (warning) — dead pointer-domain value: never produced by
  any assignment to that pointer and not its canonical initial value, so
  it inflates ``Σ_X |𝓕_X|`` without being usable.  ``IP``/``OF``/``CF``
  are exempt (their domains are fixed by Definition 6) and detect
  instructions count as writing both booleans to ``CF``;
* ``MCH003`` (warning) — return-pointer discipline: an indirect jump
  ``IP := f(X)`` through a pointer other than ``CF`` must forward the
  stored address verbatim (``f`` = identity), and a write into a
  return-address pointer (``P[...]``, per the lowering's naming) must be
  a constant assignment — anything else means the lowering's call
  protocol (Figure 6) is broken;
* ``MCH004`` (info) — reachable end-hang: control can step past the
  last instruction, which hangs the machine.  The lowering always ends
  control flow in the ``3: IP := 3`` spin, so a fall-off end usually
  marks a hand-built machine relying on the implicit hang.
"""

from __future__ import annotations

from typing import Dict, List, Set

from repro.core.diagnostics import Diagnostic, INFO, WARNING
from repro.machines.machine import (
    AssignInstr,
    CF,
    DetectInstr,
    IP,
    OF,
    PopulationMachine,
    register_map_pointer,
)

_FIXED_DOMAIN = (IP, OF, CF)


def instruction_successors(
    machine: PopulationMachine, address: int
) -> List[int]:
    """CFG successors of the instruction at 1-indexed ``address``."""
    instr = machine.instruction_at(address)
    if isinstance(instr, AssignInstr) and instr.target == IP:
        return sorted(set(instr.mapping.values()))
    if address == machine.length:
        return []  # stepping past L hangs: no successor
    return [address + 1]


def reachable_instructions(machine: PopulationMachine) -> Set[int]:
    """Addresses reachable from the entry (address 1) in the CFG."""
    seen: Set[int] = set()
    stack = [1]
    while stack:
        address = stack.pop()
        if address in seen:
            continue
        seen.add(address)
        stack.extend(a for a in instruction_successors(machine, address) if a not in seen)
    return seen


def _initial_pointer_values(machine: PopulationMachine) -> Dict[str, Set[object]]:
    """The values each pointer can hold before any instruction runs.

    Mirrors :meth:`PopulationMachine.initial_configuration`: identity
    register map, ``IP = 1``, flags false, everything else its first
    domain value.
    """
    out: Dict[str, Set[object]] = {
        pointer: {domain[0]} for pointer, domain in machine.pointer_domains.items()
    }
    out[IP] = {1}
    out[OF] = {False}
    out[CF] = {False}
    for reg in machine.registers:
        out[register_map_pointer(reg)] = {reg}
    return out


def check_machine(machine: PopulationMachine) -> List[Diagnostic]:
    """All static diagnostics for ``machine`` (see module doc for codes)."""
    name = machine.name
    out: List[Diagnostic] = []

    # -- MCH001: unreachable instructions ------------------------------
    reachable = reachable_instructions(machine)
    for address in range(1, machine.length + 1):
        if address not in reachable:
            out.append(
                Diagnostic(
                    code="MCH001",
                    severity=WARNING,
                    message=f"instruction {address} "
                    f"({machine.instruction_at(address)}) is unreachable",
                    target=name,
                    location=str(address),
                )
            )

    # -- MCH002: dead pointer-domain values ----------------------------
    possible = _initial_pointer_values(machine)
    for instr in machine.instructions:
        if isinstance(instr, AssignInstr):
            possible.setdefault(instr.target, set()).update(instr.mapping.values())
        elif isinstance(instr, DetectInstr):
            # move touches no pointer; detect writes CF (either boolean)
            possible[CF].update((False, True))
    for pointer, domain in machine.pointer_domains.items():
        if pointer in _FIXED_DOMAIN:
            continue
        for value in domain:
            if value not in possible.get(pointer, ()):
                out.append(
                    Diagnostic(
                        code="MCH002",
                        severity=WARNING,
                        message=f"pointer {pointer} domain value {value!r} is "
                        "never assigned and is not the initial value",
                        target=name,
                        location=pointer,
                    )
                )

    # -- MCH003: return-pointer discipline -----------------------------
    for address, instr in enumerate(machine.instructions, start=1):
        if not isinstance(instr, AssignInstr):
            continue
        if instr.target == IP and instr.source not in (CF, IP):
            broken = {k: v for k, v in instr.mapping.items() if k != v}
            if broken:
                out.append(
                    Diagnostic(
                        code="MCH003",
                        severity=WARNING,
                        message=f"instruction {address}: indirect jump through "
                        f"{instr.source} rewrites stored addresses "
                        f"({len(broken)} of {len(instr.mapping)} entries)",
                        target=name,
                        location=str(address),
                        data={"pointer": instr.source},
                    )
                )
        if (
            instr.target.startswith("P[")
            and instr.target != IP
            and len(set(instr.mapping.values())) > 1
        ):
            out.append(
                Diagnostic(
                    code="MCH003",
                    severity=WARNING,
                    message=f"instruction {address}: non-constant write into "
                    f"return pointer {instr.target}",
                    target=name,
                    location=str(address),
                    data={"pointer": instr.target},
                )
            )

    # -- MCH004: reachable end-hang ------------------------------------
    last = machine.instructions[-1]
    falls_off = not (isinstance(last, AssignInstr) and last.target == IP)
    if falls_off and machine.length in reachable:
        out.append(
            Diagnostic(
                code="MCH004",
                severity=INFO,
                message=f"control can step past the last instruction "
                f"({machine.length}: {last}) and hang",
                target=name,
                location=str(machine.length),
            )
        )
    return out
