"""Analysis: state complexity (Table 1), 1-awareness, robustness."""

from repro.analysis.awareness import (
    AwarenessProbe,
    PoisoningProbe,
    certificate_states_exact,
    certificate_states_sampled,
    poisoning_probe_exact,
    poisoning_probe_sampled,
    reachable_states,
    sampled_occupied_states,
)
from repro.analysis.robustness import (
    AblationSummary,
    TrialOutcome,
    ablation_error_checks,
    election_recovery_trial,
    program_selfstab_trial,
    protocol_selfstab_trial,
    random_noise_configuration,
)
from repro.analysis.state_complexity import (
    Table1Row,
    Theorem1Datum,
    table1_row,
    table1_rows,
    theorem1_data,
)

__all__ = [
    "table1_row",
    "table1_rows",
    "Table1Row",
    "theorem1_data",
    "Theorem1Datum",
    "certificate_states_exact",
    "certificate_states_sampled",
    "reachable_states",
    "sampled_occupied_states",
    "AwarenessProbe",
    "PoisoningProbe",
    "poisoning_probe_exact",
    "poisoning_probe_sampled",
    "program_selfstab_trial",
    "protocol_selfstab_trial",
    "election_recovery_trial",
    "random_noise_configuration",
    "ablation_error_checks",
    "AblationSummary",
    "TrialOutcome",
]
