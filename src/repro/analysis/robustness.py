"""Almost-self-stabilisation experiments (Section 8, Theorem 2).

Three levels, matching the paper's argument structure:

* **Program level** — population programs give *no* initialisation
  guarantees, so they are self-stabilising by definition; we verify the
  Section 6 program decides correctly from arbitrary register
  configurations (:func:`program_selfstab_trial`).
* **Election level** — Lemma 15: from any protocol configuration with at
  least ``|F|`` agents in the initial state, the ⟨elect⟩ transitions
  funnel the population into a π-image of an initial machine configuration
  (:func:`election_recovery_trial`).
* **Protocol level** — Definition 7 end-to-end: seed a converted protocol
  with arbitrary noise agents plus enough initial-state agents and check
  the sampled run stabilises to ``φ(|C|)``
  (:func:`protocol_selfstab_trial`).

The ablation experiment (X2) reuses the program-level harness on the
construction with ``error_checking=False`` and reports its failure rate.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.multiset import Multiset
from repro.core.scheduler import EnabledTransitionScheduler
from repro.core.semantics import apply_transition_inplace
from repro.core.simulation import simulate
from repro.lipton.canonical import canonical_restart_policy
from repro.lipton.construction import build_threshold_program
from repro.lipton.levels import all_registers, threshold
from repro.programs.ast import PopulationProgram
from repro.programs.interpreter import decide_program
from repro.programs.restart import uniform_composition
from repro.conversion.mapping import inverse_pi
from repro.conversion.protocol_from_machine import ConvertedProtocol


@dataclass
class TrialOutcome:
    """One robustness trial: the sampled verdict vs the ground truth."""

    total: int
    expected: bool
    got: Optional[bool]

    @property
    def correct(self) -> bool:
        return self.got is not None and self.got == self.expected


def program_selfstab_trial(
    n: int,
    total: int,
    *,
    seed: int,
    error_checking: bool = True,
    quiet_window: Optional[int] = None,
    max_steps: int = 20_000_000,
    program: Optional[PopulationProgram] = None,
) -> TrialOutcome:
    """Run the n-level program from a *uniformly random* register
    configuration (fully adversarial initialisation) and compare the
    stabilised output with ``total ≥ threshold(n)``."""
    rng = random.Random(seed)
    if quiet_window is None:
        from repro.lipton.construction import suggested_quiet_window

        quiet_window = suggested_quiet_window(n)
    if program is None:
        program = build_threshold_program(n, error_checking=error_checking)
    registers = tuple(all_registers(n))
    initial = uniform_composition(total, registers, rng)
    got = decide_program(
        program,
        initial,
        seed=rng.randrange(2**31),
        restart_policy=canonical_restart_policy(n),
        quiet_window=quiet_window,
        max_steps=max_steps,
        strict=False,
    )
    return TrialOutcome(total=total, expected=total >= threshold(n), got=got)


def random_noise_configuration(
    conversion: ConvertedProtocol,
    noise_agents: int,
    initial_agents: int,
    rng: random.Random,
) -> Multiset:
    """``C_N + C_I``: ``noise_agents`` in arbitrary (inner-protocol)
    states plus ``initial_agents`` in the initial state."""
    protocol = conversion.protocol
    states = sorted(protocol.states, key=repr)
    counts: Dict[object, int] = {}
    for _ in range(noise_agents):
        state = rng.choice(states)
        counts[state] = counts.get(state, 0) + 1
    init = conversion.initial_state
    counts[init] = counts.get(init, 0) + initial_agents
    return Multiset(counts)


def election_recovery_trial(
    conversion: ConvertedProtocol,
    *,
    noise_agents: int,
    initial_agents: Optional[int] = None,
    seed: int = 0,
    max_interactions: int = 500_000,
) -> Optional[int]:
    """Lemma 15: run the inner protocol from a noisy configuration with
    ``initial_agents ≥ |F|`` agents in the initial state; return the number
    of interactions until a π-image of an *initial* machine configuration
    is reached (``None`` if not reached within the budget)."""
    rng = random.Random(seed)
    if initial_agents is None:
        initial_agents = conversion.shift
    if initial_agents < conversion.shift:
        raise ValueError("Lemma 15 requires at least |F| initial-state agents")
    config = random_noise_configuration(conversion, noise_agents, initial_agents, rng)
    protocol = conversion.protocol
    scheduler = EnabledTransitionScheduler()
    machine = conversion.machine
    for step in range(1, max_interactions + 1):
        recovered = inverse_pi(conversion, config)
        if recovered is not None:
            from repro.machines.machine import IP, register_map_pointer

            identity_map = all(
                recovered.pointers[register_map_pointer(r)] == r
                for r in machine.registers
            )
            if recovered.pointers[IP] == 1 and identity_map:
                return step - 1
        chosen = scheduler.select(protocol, config, rng)
        if chosen.transition is None:
            return None
        apply_transition_inplace(config, chosen.transition)
    return None


def protocol_selfstab_trial(
    pipeline,
    predicate,
    *,
    noise_agents: int,
    initial_agents: int,
    seed: int = 0,
    max_interactions: int = 2_000_000,
    convergence_window: int = 100_000,
) -> TrialOutcome:
    """Definition 7 end-to-end on the broadcast protocol.

    ``pipeline`` is a :class:`repro.conversion.pipeline.PipelineResult`;
    ``predicate`` maps the total agent count to the expected verdict
    (φ'(|C|), i.e. already shifted).  Noise agents are drawn from the
    *broadcast* state space (arbitrary opinions included).
    """
    rng = random.Random(seed)
    protocol = pipeline.protocol
    states = sorted(protocol.states, key=repr)
    counts: Dict[object, int] = {}
    for _ in range(noise_agents):
        state = rng.choice(states)
        counts[state] = counts.get(state, 0) + 1
    init = next(iter(protocol.input_states))
    counts[init] = counts.get(init, 0) + initial_agents
    config = Multiset(counts)
    result = simulate(
        protocol,
        config,
        seed=rng.randrange(2**31),
        max_interactions=max_interactions,
        convergence_window=convergence_window,
    )
    return TrialOutcome(
        total=config.size, expected=predicate(config.size), got=result.verdict
    )


@dataclass
class AblationSummary:
    """X2: failure rates of the construction with error checking on/off."""

    with_checks_correct: int
    with_checks_total: int
    without_checks_correct: int
    without_checks_total: int


def ablation_error_checks(
    n: int,
    totals: List[int],
    *,
    trials_per_total: int = 3,
    seed: int = 0,
    quiet_window: int = 30_000,
    max_steps: int = 10_000_000,
) -> AblationSummary:
    """Run adversarial-initialisation trials with and without the §5.2
    error-checking machinery; the bare counter should misbehave."""
    rng = random.Random(seed)
    checked = build_threshold_program(n, error_checking=True)
    bare = build_threshold_program(n, error_checking=False)
    results = {True: [0, 0], False: [0, 0]}
    for program, key in ((checked, True), (bare, False)):
        for total in totals:
            for _ in range(trials_per_total):
                outcome = program_selfstab_trial(
                    n,
                    total,
                    seed=rng.randrange(2**31),
                    quiet_window=quiet_window,
                    max_steps=max_steps,
                    program=program,
                )
                results[key][1] += 1
                results[key][0] += outcome.correct
    return AblationSummary(
        with_checks_correct=results[True][0],
        with_checks_total=results[True][1],
        without_checks_correct=results[False][0],
        without_checks_total=results[False][1],
    )
