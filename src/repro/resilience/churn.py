"""Dynamic populations: churn fault kinds and the adversarial scheduler.

Every engine in this repository originally assumed a population of fixed
size ``n`` — the model of the paper, where ``|C|`` is conserved by every
transition.  The self-stabilisation claim of Theorem 2, however, is about
recovery from *arbitrary* transient perturbation, and the natural
strengthening studied by the dynamic-population literature (and by
size-oblivious protocols, arXiv:2408.10027) lets the adversary add and
remove agents mid-run.  This module supplies that adversary as four new
fault-plan kinds, consumed through the exact same
:class:`~repro.resilience.FaultPlan` / :class:`~repro.resilience.FaultInjector`
machinery as the population-preserving faults:

========================  ==============================================
:class:`JoinAgents`       ``agents`` new agents appear in one state
                          (given, or drawn from the injector stream)
:class:`LeaveAgents`      ``agents`` agents depart (from a given state,
                          or occupancy-weighted across the population)
:class:`ChurnProcess`     a sustained churn window: seeded arrival and
                          departure rates, expanded *deterministically*
                          into a schedule of joins/leaves at bind time
:class:`AdversarialScheduler`  a window in which the scheduler plays the
                          worst-case enabled pair, within a fairness
                          budget (one fair step in every ``fairness``)
========================  ==============================================

Determinism contract (same as the rest of the resilience layer): the
expansion of a :class:`ChurnProcess` and every in-fire random choice come
from streams derived from the injector's base seed, never from the
simulation stream — so ``(seed, plan)`` replays bit-identically, a plan
without churn kinds binds to exactly the queue it always did, and an
empty plan leaves a run bit-identical to an uninjected one.

Per-engine resize strategy (see DESIGN.md §13 for the full story):

* legacy schedulers read ``config.size`` per step and need no repair;
* the fast path mutates the :class:`~repro.core.fastpath.EnabledIndex`
  count array and re-establishes the weight invariant with
  ``fix_state`` (``EnabledIndex.grow``/``shrink``), then the driver
  refreshes its cached ``m`` and ``T = m(m-1)`` from the view's
  ``size_delta``;
* the batched engine resizes only *between* batches: the next fault
  trigger is a batch barrier, and the sampler's cached
  ``lgamma``-inversion constants are re-derived via ``set_population``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, List, Optional, Tuple


# ----------------------------------------------------------------------
# Fault records (pure data, frozen — the FaultPlan contract)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class JoinAgents:
    """``agents`` new agents join the population in state ``state`` (must
    be a state of the simulated system) — or, when ``state`` is ``None``,
    in a state drawn uniformly from the injector's stream.  Models fresh
    nodes booting into the protocol; joining an *input* state is the
    dynamic-population analogue of changing the input mid-run."""

    at: int
    agents: int = 1
    state: Any = None


@dataclass(frozen=True)
class LeaveAgents:
    """``agents`` agents leave the population: from ``state`` when given
    (capped at its occupancy), else one at a time with sources weighted
    by occupancy — a crash/departure fault.  The population may shrink
    below 2 (no pair is then enabled) or even to 0 (the configuration
    has no output; drivers report ``verdict=None``)."""

    at: int
    agents: int = 1
    state: Any = None


@dataclass(frozen=True)
class ChurnProcess:
    """Sustained churn over the window ``[at, at + length)``: agents
    arrive at rate ``join_rate`` and depart at rate ``leave_rate`` (both
    expected events per interaction, i.e. probabilities per step for
    small values).  Arrivals join ``state`` (or a fresh uniform draw per
    event when ``None``); departures are occupancy-weighted.

    The process is *pure data*: binding the plan expands it into a
    deterministic schedule of :class:`JoinAgents`/:class:`LeaveAgents`
    events using a dedicated stream (seed path ``("faults", "churn",
    index)``), so the expansion never shifts the draws of the other
    faults in the plan and the same ``(seed, plan)`` pair always churns
    identically.
    """

    at: int
    length: int = 10_000
    join_rate: float = 0.0
    leave_rate: float = 0.0
    state: Any = None
    agents: int = 1

    def __post_init__(self):
        if self.length <= 0:
            raise ValueError("ChurnProcess length must be positive")
        if self.join_rate < 0 or self.leave_rate < 0:
            raise ValueError("churn rates must be non-negative")


@dataclass(frozen=True)
class AdversarialScheduler:
    """For the ``length`` steps after ``at`` the scheduler plays the
    *worst-case* enabled pair instead of sampling fairly — but within a
    fairness budget: one step in every ``fairness`` is still sampled
    fairly (``fairness=0`` means none, a maximally unfair window).

    "Worst case" is convergence-directed, unlike the fixed lowest-ranked
    pick of :class:`~repro.resilience.UnfairWindow`: when the current
    output is defined, the adversary plays the enabled candidate that
    moves the accepting-agent count *away* from that consensus; when the
    output is undefined it pushes the count toward ``m/2``, keeping the
    output undefined as long as it can.  Adversarial picks are
    deterministic and consume no simulation randomness, so the window
    never shifts the downstream random stream.
    """

    at: int
    length: int = 100
    fairness: int = 4

    def __post_init__(self):
        if self.fairness < 0:
            raise ValueError("fairness budget must be non-negative")


#: kind strings for the observer events (merged into faults._FAULT_KINDS).
CHURN_FAULT_KINDS = {
    JoinAgents: "join",
    LeaveAgents: "leave",
    ChurnProcess: "churn",
    AdversarialScheduler: "adversarial",
}


# ----------------------------------------------------------------------
# ChurnProcess expansion
# ----------------------------------------------------------------------
def _arrival_steps(
    rng: random.Random, start: int, length: int, rate: float
) -> List[int]:
    """Deterministic event times in ``[start, start + length)`` for a
    Poisson-ish process of the given per-interaction rate: exponential
    inter-arrival gaps, rounded up so events land on distinct-ish integer
    steps and the count concentrates around ``rate * length``."""
    steps: List[int] = []
    if rate <= 0:
        return steps
    t = start
    while True:
        gap = rng.expovariate(rate)
        t += max(1, int(gap))
        if t >= start + length:
            return steps
        steps.append(t)


def expand_churn(fault: ChurnProcess, rng: random.Random) -> List[Any]:
    """The concrete join/leave schedule of one :class:`ChurnProcess`,
    drawn from ``rng`` (a dedicated stream — see the class docstring).
    Joins are generated first, then leaves, so the expansion is a pure
    function of the stream; the injector merges and stably sorts."""
    events: List[Any] = []
    for at in _arrival_steps(rng, fault.at, fault.length, fault.join_rate):
        events.append(JoinAgents(at=at, agents=fault.agents, state=fault.state))
    for at in _arrival_steps(rng, fault.at, fault.length, fault.leave_rate):
        events.append(LeaveAgents(at=at, agents=fault.agents))
    return events


# ----------------------------------------------------------------------
# Worst-case enabled picks (consume no randomness; deterministic)
# ----------------------------------------------------------------------
def _badness(accept: int, ad: int, m: int, out: Optional[bool]):
    """Sort key: smaller is worse (more adversarial).  ``ad`` is the
    candidate's accepting-count delta."""
    if out is True:
        return ad  # most negative first: drag the run away from all-accept
    if out is False:
        return -ad  # most positive first: drag it away from none-accept
    # Output undefined: stay undefined — minimise distance from m/2.
    return abs(2 * (accept + ad) - m)


def adversarial_index_pick(
    index, accept: int, m: int, out: Optional[bool]
) -> Tuple[int, int]:
    """The worst-case enabled ``(key, candidate)`` of a fast-path
    :class:`~repro.core.fastpath.EnabledIndex` under the current output
    category.  Scans ``sorted(active)`` (tiny compared to a step's work,
    and order-independent of insertion history) and tie-breaks by lowest
    key then candidate index, so the pick is a pure function of the
    configuration — replay-stable and hash-salt independent."""
    best: Optional[Tuple[Any, int, int]] = None
    hot = index.hot
    changing = index.changing
    for i in sorted(index.active):
        if not changing[i]:
            continue
        for j, (ch, ad, _deltas) in enumerate(hot[i]):
            if not ch:
                continue
            key = _badness(accept, ad, m, out)
            if best is None or key < best[0]:
                best = (key, i, j)
    if best is None:  # no changing candidate enabled: play any no-op
        return min(index.active), 0
    return best[1], best[2]


def adversarial_enabled_transition(protocol, config, out: Optional[bool]):
    """Legacy-loop twin of :func:`adversarial_index_pick`: the enabled
    productive transition with the worst accepting-count delta (``None``
    when the configuration is silent).  Repr-sorted scan, so the choice
    matches across processes like
    :func:`repro.core.scheduler.first_enabled_transition`."""
    from repro.core.scheduler import ordered_pair_weight

    accepting = protocol.accepting_states
    accept = sum(c for s, c in config.items() if s in accepting)
    m = config.size
    if m < 2:
        return None
    support = sorted(config.support(), key=repr)
    best = None
    for q in support:
        for r in support:
            if ordered_pair_weight(config, q, r) <= 0:
                continue
            for t in protocol.productive_transitions_from(q, r):
                ad = (
                    int(t.q2 in accepting)
                    + int(t.r2 in accepting)
                    - int(t.q in accepting)
                    - int(t.r in accepting)
                )
                key = _badness(accept, ad, m, out)
                if best is None or key < best[0]:
                    best = (key, t)
    return None if best is None else best[1]
