"""Resilience layer: deterministic fault injection and recovery tooling.

Public surface:

* :class:`FaultPlan` / fault records — a pure-data schedule of mid-run
  perturbations (agent corruption, resets, dropped/duplicated
  interactions, unfair scheduler windows);
* the churn kinds (:mod:`repro.resilience.churn`) — dynamic populations:
  :class:`JoinAgents` / :class:`LeaveAgents` / :class:`ChurnProcess`
  resize the population mid-run, :class:`AdversarialScheduler` plays
  worst-case enabled pairs within a fairness budget;
* :class:`FaultInjector` — a plan bound to a seed, consumed by the
  simulation drivers (``simulate(..., faults=plan)``,
  ``run_program(..., faults=plan)``);
* the view classes — the adapters faults use to touch each layer's state
  representation while preserving its invariants.

The hardened-runtime half of the resilience story (pool retries,
timeouts, graceful degradation, cache integrity) lives in
:mod:`repro.runtime`.
"""

from repro.resilience.churn import (
    AdversarialScheduler,
    ChurnProcess,
    JoinAgents,
    LeaveAgents,
    adversarial_enabled_transition,
    adversarial_index_pick,
    expand_churn,
)
from repro.resilience.faults import (
    CorruptAgents,
    DenseView,
    DropInteractions,
    DuplicateInteractions,
    Fault,
    FaultInjector,
    FaultPlan,
    IndexView,
    MultisetView,
    RegisterView,
    ResetAgents,
    UnfairWindow,
    resolve_injector,
)

__all__ = [
    "AdversarialScheduler",
    "ChurnProcess",
    "CorruptAgents",
    "DenseView",
    "DropInteractions",
    "DuplicateInteractions",
    "Fault",
    "FaultInjector",
    "FaultPlan",
    "IndexView",
    "JoinAgents",
    "LeaveAgents",
    "MultisetView",
    "RegisterView",
    "ResetAgents",
    "UnfairWindow",
    "adversarial_enabled_transition",
    "adversarial_index_pick",
    "expand_churn",
    "resolve_injector",
]
