"""Resilience layer: deterministic fault injection and recovery tooling.

Public surface:

* :class:`FaultPlan` / fault records — a pure-data schedule of mid-run
  perturbations (agent corruption, resets, dropped/duplicated
  interactions, unfair scheduler windows);
* :class:`FaultInjector` — a plan bound to a seed, consumed by the
  simulation drivers (``simulate(..., faults=plan)``,
  ``run_program(..., faults=plan)``);
* the view classes — the adapters faults use to touch each layer's state
  representation while preserving its invariants.

The hardened-runtime half of the resilience story (pool retries,
timeouts, graceful degradation, cache integrity) lives in
:mod:`repro.runtime`.
"""

from repro.resilience.faults import (
    CorruptAgents,
    DropInteractions,
    DuplicateInteractions,
    Fault,
    FaultInjector,
    FaultPlan,
    IndexView,
    MultisetView,
    RegisterView,
    ResetAgents,
    UnfairWindow,
    resolve_injector,
)

__all__ = [
    "CorruptAgents",
    "DropInteractions",
    "DuplicateInteractions",
    "Fault",
    "FaultInjector",
    "FaultPlan",
    "IndexView",
    "MultisetView",
    "RegisterView",
    "ResetAgents",
    "UnfairWindow",
    "resolve_injector",
]
