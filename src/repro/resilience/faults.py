"""Deterministic fault injection for simulated populations.

Self-stabilisation (Theorem 2 / Definition 7) promises recovery from
*transient* faults: an adversary may corrupt the configuration mid-run,
and a fair continuation still stabilises to the right output.  The
existing robustness harness (:mod:`repro.analysis.robustness`) only
exercises adversarial *initial* configurations; this module supplies the
missing half — scheduled mid-run perturbations — as a first-class,
reproducible part of the simulator.

Two design commitments shape the API:

* **Determinism.**  A :class:`FaultPlan` is pure data (frozen fault
  records with explicit trigger steps).  Binding a plan to a base seed
  yields a :class:`FaultInjector` whose randomness comes from its *own*
  stream, derived via :func:`repro.runtime.seeds.derive_seed_path` under
  the label ``"faults"``.  The injector therefore never touches the
  simulation's random stream: the same ``(seed, plan)`` pair replays
  bit-identically, and an *empty* plan leaves a seeded run bit-identical
  to an uninjected one.
* **Layer independence.**  Faults mutate the simulated system through a
  small *view* protocol (``states`` / ``count`` / ``move``) with three
  implementations: :class:`MultisetView` for the legacy scheduler loop,
  :class:`IndexView` for the fast path (which repairs the
  :class:`~repro.core.fastpath.EnabledIndex` and accumulates the
  accepting-count delta so the driver's O(Δ) output tracking stays
  exact), and :class:`RegisterView` for program-level register
  corruption.  The injector itself is layer-agnostic.

Fault taxonomy — the population-preserving kinds live here, the
dynamic-population kinds in :mod:`repro.resilience.churn` (same plan and
injector machinery; a :class:`~repro.resilience.churn.ChurnProcess` is
expanded into concrete join/leave events at bind time from a dedicated
seed stream):

========================  ==============================================
:class:`CorruptAgents`    move ``agents`` agents to random *other* states
:class:`ResetAgents`      move ``agents`` agents onto one target state
:class:`DropInteractions` silently discard the next ``count`` scheduled
                          interactions (they consume steps, change nothing)
:class:`DuplicateInteractions`  re-apply the next ``count`` productive
                          interactions a second time (if still enabled)
:class:`UnfairWindow`     for ``length`` steps the scheduler is
                          adversarial: deterministically pick the
                          lowest-ranked enabled transition instead of
                          sampling fairly
``churn.JoinAgents``      ``agents`` new agents appear in one state
``churn.LeaveAgents``     ``agents`` agents depart the population
``churn.ChurnProcess``    seeded sustained arrival/departure process
``churn.AdversarialScheduler``  worst-case enabled picks within a
                          fairness budget
========================  ==============================================

A fault with trigger step ``at`` fires after the ``at``-th interaction
(program faults: after the ``at``-th primitive step) and before the next
one; drivers check ``injector.next_at`` at the top of their loops.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.observability import spans as _spans
from repro.observability.events import LAYER_PROTOCOL
from repro.resilience.churn import (
    CHURN_FAULT_KINDS,
    AdversarialScheduler,
    ChurnProcess,
    JoinAgents,
    LeaveAgents,
    expand_churn,
)

_INFINITY = float("inf")


# ----------------------------------------------------------------------
# Fault records (pure data, frozen, orderable by trigger step)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CorruptAgents:
    """Move ``agents`` agents from their current states to uniformly
    random *different* states (sources weighted by occupancy) — the
    generic transient corruption of the self-stabilisation literature."""

    at: int
    agents: int = 1


@dataclass(frozen=True)
class ResetAgents:
    """Move ``agents`` agents onto one target state: ``state`` when
    given (it must exist in the simulated system), else a state drawn
    from the injector's stream.  Models a batch of agents rebooting into
    a fixed (possibly wrong) state."""

    at: int
    agents: int = 1
    state: Any = None


@dataclass(frozen=True)
class DropInteractions:
    """The next ``count`` scheduled interactions are lost: the scheduler
    picks them and the step counter advances, but the configuration does
    not change (message loss)."""

    at: int
    count: int = 1


@dataclass(frozen=True)
class DuplicateInteractions:
    """The next ``count`` productive interactions are applied *twice*
    (when still enabled after the first application) — a re-delivery
    fault.  The duplicate application counts as productive work but not
    as a scheduler step."""

    at: int
    count: int = 1


@dataclass(frozen=True)
class UnfairWindow:
    """For the ``length`` steps after ``at`` the scheduler abandons fair
    sampling and deterministically plays the lowest-ranked enabled
    transition — a bounded violation of the fairness assumption every
    convergence argument leans on."""

    at: int
    length: int = 100


Fault = Union[
    CorruptAgents,
    ResetAgents,
    DropInteractions,
    DuplicateInteractions,
    UnfairWindow,
    JoinAgents,
    LeaveAgents,
    ChurnProcess,
    AdversarialScheduler,
]

_FAULT_KINDS = {
    CorruptAgents: "corrupt",
    ResetAgents: "reset",
    DropInteractions: "drop_scheduled",
    DuplicateInteractions: "duplicate_scheduled",
    UnfairWindow: "unfair",
    **CHURN_FAULT_KINDS,
}


class FaultPlan:
    """An immutable, ordered schedule of faults.

    Plans are pure data: binding one to a seed (:meth:`bind`) produces
    the stateful :class:`FaultInjector` a driver consumes.  One plan may
    be bound many times — each binding is independent and deterministic.
    """

    __slots__ = ("faults",)

    def __init__(self, faults: Sequence[Fault] = ()):
        for fault in faults:
            if type(fault) not in _FAULT_KINDS:
                raise TypeError(f"not a fault record: {fault!r}")
            if fault.at < 0:
                raise ValueError(f"fault trigger step must be >= 0: {fault!r}")
        # Stable sort: faults sharing a trigger step fire in plan order.
        self.faults: Tuple[Fault, ...] = tuple(
            sorted(faults, key=lambda f: f.at)
        )

    @classmethod
    def periodic_corruption(
        cls, *, start: int, period: int, count: int, agents: int = 1
    ) -> "FaultPlan":
        """``count`` :class:`CorruptAgents` faults of ``agents`` agents
        each, at ``start, start+period, ...`` — the standard recovering-
        under-repeated-hits workload."""
        if period <= 0:
            raise ValueError("period must be positive")
        return cls(
            [CorruptAgents(at=start + i * period, agents=agents) for i in range(count)]
        )

    def bind(self, seed: int) -> "FaultInjector":
        """A fresh injector for this plan, with its own random stream
        derived from ``seed`` (label ``"faults"``, so the stream is
        independent of every simulation/attempt stream)."""
        return FaultInjector(self, seed)

    def is_empty(self) -> bool:
        return not self.faults

    def __len__(self) -> int:
        return len(self.faults)

    def __iter__(self):
        return iter(self.faults)

    def __repr__(self) -> str:
        return f"FaultPlan({list(self.faults)!r})"


# ----------------------------------------------------------------------
# Views: how faults touch each layer's state representation
# ----------------------------------------------------------------------
class MultisetView:
    """Corruption view over a legacy-loop :class:`Multiset` configuration.

    ``move``/``add``/``remove`` go through ``inc``/``dec``, so any
    attached watchers (an :class:`EnabledIndex` observing the multiset)
    stay exact for free.  ``size_delta`` accumulates the net population
    change of churn faults; the legacy loop reads ``config.size`` fresh
    after a fire, so it only needs the accumulator for reporting.
    """

    __slots__ = ("states", "_config", "accept_delta", "size_delta")

    def __init__(self, protocol, config):
        # Sorted by repr: the injector's choices must not depend on the
        # process hash salt (same rule as the schedulers).
        self.states: Tuple[Any, ...] = tuple(sorted(protocol.states, key=repr))
        self._config = config
        self.accept_delta = 0  # unused: the legacy loop recomputes output
        self.size_delta = 0

    def count(self, state) -> int:
        return self._config[state]

    def move(self, src, dst, k: int = 1) -> None:
        self._config.dec(src, k)
        self._config.inc(dst, k)

    def add(self, state, k: int = 1) -> None:
        self._config.inc(state, k)
        self.size_delta += k

    def remove(self, state, k: int = 1) -> None:
        self._config.dec(state, k)
        self.size_delta -= k


class IndexView:
    """Corruption view over a fast-path :class:`EnabledIndex`.

    Mutates the flat count array and repairs the index via
    ``fix_state`` after every move, so the weight/active/total invariant
    holds at all times.  ``accept_delta`` accumulates the net change in
    the number of accepting agents; the fast loops fold it into their
    O(Δ) output tracking instead of rescanning the configuration.
    """

    __slots__ = ("index", "states", "accept_delta", "size_delta")

    def __init__(self, index):
        self.index = index
        self.states: Tuple[Any, ...] = index.table.states
        self.accept_delta = 0
        self.size_delta = 0

    def count(self, state) -> int:
        return self.index.cnt[self.index.table.sid[state]]

    def move(self, src, dst, k: int = 1) -> None:
        index = self.index
        sid = index.table.sid
        a, b = sid[src], sid[dst]
        index.cnt[a] -= k
        index.cnt[b] += k
        index.fix_state(a)
        index.fix_state(b)
        accepting = index.table.accepting
        self.accept_delta += k * (int(accepting[b]) - int(accepting[a]))

    def add(self, state, k: int = 1) -> None:
        index = self.index
        s = index.table.sid[state]
        index.grow(s, k)
        self.accept_delta += k * int(index.table.accepting[s])
        self.size_delta += k

    def remove(self, state, k: int = 1) -> None:
        index = self.index
        s = index.table.sid[state]
        index.shrink(s, k)
        self.accept_delta -= k * int(index.table.accepting[s])
        self.size_delta -= k


class RegisterView:
    """Corruption view over a program interpreter's register dict."""

    __slots__ = ("states", "_registers", "accept_delta", "size_delta")

    def __init__(self, registers: Dict[str, int]):
        self.states: Tuple[str, ...] = tuple(sorted(registers))
        self._registers = registers
        self.accept_delta = 0
        self.size_delta = 0

    def count(self, state) -> int:
        return self._registers.get(state, 0)

    def move(self, src, dst, k: int = 1) -> None:
        self._registers[src] -= k
        self._registers[dst] = self._registers.get(dst, 0) + k

    def add(self, state, k: int = 1) -> None:
        self._registers[state] = self._registers.get(state, 0) + k
        self.size_delta += k

    def remove(self, state, k: int = 1) -> None:
        self._registers[state] -= k
        self.size_delta -= k


class DenseView:
    """Corruption view over the batched engine's ``DenseConfig``.

    The batched engine only fires faults at batch barriers, so the view
    mutates the dense count array directly (firing the multiset change
    hooks via ``inc``/``dec`` keeps any attached accepting-count watcher
    exact) and accumulates ``accept_delta``/``size_delta`` for the
    driver's between-batch bookkeeping.
    """

    __slots__ = ("states", "_dense", "_accepting", "accept_delta", "size_delta")

    def __init__(self, dense, accepting):
        self.states: Tuple[Any, ...] = dense.states
        self._dense = dense
        self._accepting = accepting
        self.accept_delta = 0
        self.size_delta = 0

    def count(self, state) -> int:
        return self._dense[state]

    def move(self, src, dst, k: int = 1) -> None:
        self._dense.dec(src, k)
        self._dense.inc(dst, k)
        sid = self._dense.sid
        self.accept_delta += k * (
            int(self._accepting[sid[dst]]) - int(self._accepting[sid[src]])
        )

    def add(self, state, k: int = 1) -> None:
        self._dense.inc(state, k)
        self.accept_delta += k * int(self._accepting[self._dense.sid[state]])
        self.size_delta += k

    def remove(self, state, k: int = 1) -> None:
        self._dense.dec(state, k)
        self.accept_delta -= k * int(self._accepting[self._dense.sid[state]])
        self.size_delta -= k


# ----------------------------------------------------------------------
# The injector
# ----------------------------------------------------------------------
class FaultInjector:
    """Stateful executor of one bound :class:`FaultPlan`.

    Driver contract (both scheduler loops, the fast path, and the
    program interpreter follow it):

    * at the top of each step, if the layer's step counter has reached
      :attr:`next_at`, call :meth:`fire` with a view of the current
      state — this applies every due corruption/reset and arms the
      drop/duplicate/unfair effects;
    * after selecting an interaction, consume one drop token via
      :meth:`take_drop` (a ``True`` return means: count the step, skip
      the application);
    * after *applying* a productive interaction that is still enabled,
      consume one duplicate token via :meth:`take_duplicate`;
    * when :meth:`unfair_active` holds for the upcoming step, bypass the
      fair sampler and play the deterministic adversarial choice.

    :attr:`next_at` is ``inf`` once the plan is exhausted, so the hot
    loops pay a single integer compare per step.
    """

    def __init__(self, plan: FaultPlan, seed: int):
        # Late import: runtime.seeds imports core.simulation; keeping the
        # dependency out of module scope lets core modules import this
        # one (or vice versa) in any order.
        from repro.runtime.seeds import derive_seed_path

        self.plan = plan
        self.seed = seed
        self.rng = random.Random(derive_seed_path(seed, "faults"))
        # ChurnProcess records expand into concrete join/leave events
        # here, each process from its own stream (path "faults"/"churn"/
        # <plan index>) — so plans without churn bind to exactly the
        # queue they always did, with identical self.rng draws.
        queue: List[Fault] = []
        for i, fault in enumerate(plan.faults):
            if isinstance(fault, ChurnProcess):
                churn_rng = random.Random(
                    derive_seed_path(seed, "faults", "churn", i)
                )
                queue.extend(expand_churn(fault, churn_rng))
            else:
                queue.append(fault)
        queue.sort(key=lambda f: f.at)  # stable: ties keep plan order
        self._queue: Tuple[Fault, ...] = tuple(queue)
        self._pos = 0
        self.fired = 0
        self.drop_left = 0
        self.duplicate_left = 0
        self.unfair_until = -1  # inclusive: steps <= this are adversarial
        self.adv_until = -1  # inclusive: adversarial-scheduler window
        self.adv_fairness = 0
        self._adv_tick = 0
        self.joined = 0
        self.departed = 0
        self.next_at: float = (
            self._queue[0].at if self._queue else _INFINITY
        )

    # -- scheduling ------------------------------------------------------
    def unfair_active(self, step: int) -> bool:
        """Whether step number ``step`` falls inside an armed unfair
        window (windows cover the ``length`` steps after their trigger)."""
        return step <= self.unfair_until

    def take_drop(self) -> bool:
        if self.drop_left > 0:
            self.drop_left -= 1
            return True
        return False

    def take_duplicate(self) -> bool:
        if self.duplicate_left > 0:
            self.duplicate_left -= 1
            return True
        return False

    def adversarial_active(self, step: int) -> bool:
        """Whether step ``step`` falls inside an armed worst-case-pick
        window (see :class:`~repro.resilience.churn.AdversarialScheduler`)."""
        return step <= self.adv_until

    def take_adversarial(self) -> bool:
        """Consume one step of an active adversarial window.  ``True``
        means: play the worst-case pick.  ``False`` is the fairness
        budget — every ``fairness``-th step stays fairly sampled (never,
        when ``fairness`` is 0)."""
        self._adv_tick += 1
        if self.adv_fairness > 0 and self._adv_tick % self.adv_fairness == 0:
            return False
        return True

    # -- firing ----------------------------------------------------------
    def fire(self, step: int, view, obs=None, layer: str = LAYER_PROTOCOL) -> None:
        """Apply every fault whose trigger step is ≤ ``step``.

        ``view`` is one of the view classes above; ``obs`` (a live
        observer or ``None``) receives one ``fault`` event per applied
        fault.  Updates :attr:`next_at` to the next pending trigger.
        """
        queue = self._queue
        while self._pos < len(queue) and queue[self._pos].at <= step:
            fault = queue[self._pos]
            self._pos += 1
            self.fired += 1
            kind = _FAULT_KINDS[type(fault)]
            data: Dict[str, Any] = {"at": fault.at}
            if isinstance(fault, CorruptAgents):
                kind = "corrupt"
                data["moves"] = self._corrupt(view, fault.agents)
            elif isinstance(fault, ResetAgents):
                kind = "reset"
                target, moved = self._reset(view, fault.agents, fault.state)
                data["state"] = repr(target)
                data["moves"] = moved
            elif isinstance(fault, DropInteractions):
                kind = "drop_scheduled"
                self.drop_left += fault.count
                data["count"] = fault.count
            elif isinstance(fault, DuplicateInteractions):
                kind = "duplicate_scheduled"
                self.duplicate_left += fault.count
                data["count"] = fault.count
            elif isinstance(fault, JoinAgents):
                kind = "join"
                target, joined = self._join(view, fault.agents, fault.state)
                data["state"] = repr(target)
                data["agents"] = joined
            elif isinstance(fault, LeaveAgents):
                kind = "leave"
                departed = self._leave(view, fault.agents, fault.state)
                data["agents"] = departed
            elif isinstance(fault, AdversarialScheduler):
                kind = "adversarial"
                until = step + fault.length
                if until > self.adv_until:
                    self.adv_until = until
                self.adv_fairness = fault.fairness
                data["length"] = fault.length
                data["fairness"] = fault.fairness
            else:  # UnfairWindow
                kind = "unfair"
                until = step + fault.length
                if until > self.unfair_until:
                    self.unfair_until = until
                data["length"] = fault.length
            if obs is not None:
                obs.on_fault(step, kind, layer, **data)
            # Instant span so injected faults show up in the span tree
            # (no-op unless a tracer is active in this process).
            _spans.mark(f"fault:{kind}", step=step, at=fault.at)
        self.next_at = queue[self._pos].at if self._pos < len(queue) else _INFINITY

    # -- corruption mechanics -------------------------------------------
    def _occupied(self, view, exclude=None) -> Tuple[List[Any], List[int]]:
        states, weights = [], []
        for state in view.states:
            if exclude is not None and state == exclude:
                continue
            count = view.count(state)
            if count > 0:
                states.append(state)
                weights.append(count)
        return states, weights

    def _corrupt(self, view, agents: int) -> List[Tuple[str, str]]:
        """Move ``agents`` units, one at a time: source weighted by
        occupancy, destination uniform over the *other* states.  Returns
        the applied ``(src, dst)`` moves (repr'd, for the trace)."""
        moves: List[Tuple[str, str]] = []
        if len(view.states) < 2:
            return moves  # nowhere to move to: corruption degenerates
        for _ in range(agents):
            occupied, weights = self._occupied(view)
            if not occupied:
                break
            src = self.rng.choices(occupied, weights=weights)[0]
            others = [s for s in view.states if s != src]
            dst = self.rng.choice(others)
            view.move(src, dst, 1)
            moves.append((repr(src), repr(dst)))
        return moves

    def _reset(self, view, agents: int, state) -> Tuple[Any, int]:
        """Move ``agents`` units onto one target state; returns the
        target and how many actually moved."""
        if state is not None:
            if state not in view.states:
                raise ValueError(
                    f"ResetAgents target {state!r} is not a state of the "
                    f"simulated system"
                )
            target = state
        else:
            target = self.rng.choice(list(view.states))
        moved = 0
        for _ in range(agents):
            occupied, weights = self._occupied(view, exclude=target)
            if not occupied:
                break
            src = self.rng.choices(occupied, weights=weights)[0]
            view.move(src, target, 1)
            moved += 1
        return target, moved

    # -- churn mechanics -------------------------------------------------
    def _join(self, view, agents: int, state) -> Tuple[Any, int]:
        """``agents`` fresh agents appear in ``state`` (or a uniform draw
        from the injector stream); returns the target and the join count."""
        if state is not None:
            if state not in view.states:
                raise ValueError(
                    f"JoinAgents target {state!r} is not a state of the "
                    f"simulated system"
                )
            target = state
        else:
            target = self.rng.choice(list(view.states))
        view.add(target, agents)
        self.joined += agents
        return target, agents

    def _leave(self, view, agents: int, state) -> int:
        """``agents`` agents depart: from ``state`` when given (capped at
        its occupancy), else one at a time weighted by occupancy.
        Returns how many actually left — the population may drain to 0,
        after which departures degenerate to no-ops."""
        if state is not None:
            if state not in view.states:
                raise ValueError(
                    f"LeaveAgents source {state!r} is not a state of the "
                    f"simulated system"
                )
            gone = min(agents, view.count(state))
            if gone:
                view.remove(state, gone)
        else:
            gone = 0
            for _ in range(agents):
                occupied, weights = self._occupied(view)
                if not occupied:
                    break
                src = self.rng.choices(occupied, weights=weights)[0]
                view.remove(src, 1)
                gone += 1
        self.departed += gone
        return gone

    def exhausted(self) -> bool:
        """No pending triggers *and* no armed drop/duplicate tokens.
        (An open unfair window with no pending faults cannot make a
        silent configuration active again, so it is ignored here.)"""
        return (
            self._pos >= len(self._queue)
            and self.drop_left == 0
            and self.duplicate_left == 0
        )

    def inert(self) -> bool:
        """Stronger than :meth:`exhausted`: the injector can no longer
        influence the run in *any* way — nothing queued, no armed
        drop/duplicate tokens, and no unfair/adversarial window was ever
        opened.  An injector that is inert before its first step is
        behaviourally identical to no injector at all; the drivers use
        this to keep empty (and emptily-expanded) plans bit-identical to
        uninjected runs."""
        return (
            self._pos >= len(self._queue)
            and self.drop_left == 0
            and self.duplicate_left == 0
            and self.unfair_until < 0
            and self.adv_until < 0
        )

    def population_only(self) -> bool:
        """Whether every queued fault only resizes the population (joins
        and leaves).  Such plans fire at batch barriers without needing
        per-interaction granularity, so the batched engine can run them
        natively instead of degrading to the per-step fast path."""
        return all(
            isinstance(f, (JoinAgents, LeaveAgents)) for f in self._queue
        )

    def __repr__(self) -> str:
        return (
            f"FaultInjector(fired={self.fired}/{len(self._queue)}, "
            f"next_at={self.next_at})"
        )


def resolve_injector(faults, seed: Optional[int]) -> Optional[FaultInjector]:
    """Normalise a driver's ``faults=`` argument: ``None`` passes
    through, a :class:`FaultPlan` is bound to ``seed`` (0 when the driver
    was given only an ``rng``), an already-bound injector is used as-is
    (callers doing multi-segment runs can thread one injector through)."""
    if faults is None:
        return None
    if isinstance(faults, FaultInjector):
        return faults
    if isinstance(faults, FaultPlan):
        return faults.bind(seed if seed is not None else 0)
    raise TypeError(
        f"faults must be a FaultPlan or FaultInjector, got {type(faults).__name__}"
    )
