"""Deterministic fault injection for simulated populations.

Self-stabilisation (Theorem 2 / Definition 7) promises recovery from
*transient* faults: an adversary may corrupt the configuration mid-run,
and a fair continuation still stabilises to the right output.  The
existing robustness harness (:mod:`repro.analysis.robustness`) only
exercises adversarial *initial* configurations; this module supplies the
missing half — scheduled mid-run perturbations — as a first-class,
reproducible part of the simulator.

Two design commitments shape the API:

* **Determinism.**  A :class:`FaultPlan` is pure data (frozen fault
  records with explicit trigger steps).  Binding a plan to a base seed
  yields a :class:`FaultInjector` whose randomness comes from its *own*
  stream, derived via :func:`repro.runtime.seeds.derive_seed_path` under
  the label ``"faults"``.  The injector therefore never touches the
  simulation's random stream: the same ``(seed, plan)`` pair replays
  bit-identically, and an *empty* plan leaves a seeded run bit-identical
  to an uninjected one.
* **Layer independence.**  Faults mutate the simulated system through a
  small *view* protocol (``states`` / ``count`` / ``move``) with three
  implementations: :class:`MultisetView` for the legacy scheduler loop,
  :class:`IndexView` for the fast path (which repairs the
  :class:`~repro.core.fastpath.EnabledIndex` and accumulates the
  accepting-count delta so the driver's O(Δ) output tracking stays
  exact), and :class:`RegisterView` for program-level register
  corruption.  The injector itself is layer-agnostic.

Fault taxonomy (all population-preserving — the model has no churn):

========================  ==============================================
:class:`CorruptAgents`    move ``agents`` agents to random *other* states
:class:`ResetAgents`      move ``agents`` agents onto one target state
:class:`DropInteractions` silently discard the next ``count`` scheduled
                          interactions (they consume steps, change nothing)
:class:`DuplicateInteractions`  re-apply the next ``count`` productive
                          interactions a second time (if still enabled)
:class:`UnfairWindow`     for ``length`` steps the scheduler is
                          adversarial: deterministically pick the
                          lowest-ranked enabled transition instead of
                          sampling fairly
========================  ==============================================

A fault with trigger step ``at`` fires after the ``at``-th interaction
(program faults: after the ``at``-th primitive step) and before the next
one; drivers check ``injector.next_at`` at the top of their loops.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.observability import spans as _spans
from repro.observability.events import LAYER_PROTOCOL

_INFINITY = float("inf")


# ----------------------------------------------------------------------
# Fault records (pure data, frozen, orderable by trigger step)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CorruptAgents:
    """Move ``agents`` agents from their current states to uniformly
    random *different* states (sources weighted by occupancy) — the
    generic transient corruption of the self-stabilisation literature."""

    at: int
    agents: int = 1


@dataclass(frozen=True)
class ResetAgents:
    """Move ``agents`` agents onto one target state: ``state`` when
    given (it must exist in the simulated system), else a state drawn
    from the injector's stream.  Models a batch of agents rebooting into
    a fixed (possibly wrong) state."""

    at: int
    agents: int = 1
    state: Any = None


@dataclass(frozen=True)
class DropInteractions:
    """The next ``count`` scheduled interactions are lost: the scheduler
    picks them and the step counter advances, but the configuration does
    not change (message loss)."""

    at: int
    count: int = 1


@dataclass(frozen=True)
class DuplicateInteractions:
    """The next ``count`` productive interactions are applied *twice*
    (when still enabled after the first application) — a re-delivery
    fault.  The duplicate application counts as productive work but not
    as a scheduler step."""

    at: int
    count: int = 1


@dataclass(frozen=True)
class UnfairWindow:
    """For the ``length`` steps after ``at`` the scheduler abandons fair
    sampling and deterministically plays the lowest-ranked enabled
    transition — a bounded violation of the fairness assumption every
    convergence argument leans on."""

    at: int
    length: int = 100


Fault = Union[
    CorruptAgents, ResetAgents, DropInteractions, DuplicateInteractions, UnfairWindow
]

_FAULT_KINDS = {
    CorruptAgents: "corrupt",
    ResetAgents: "reset",
    DropInteractions: "drop_scheduled",
    DuplicateInteractions: "duplicate_scheduled",
    UnfairWindow: "unfair",
}


class FaultPlan:
    """An immutable, ordered schedule of faults.

    Plans are pure data: binding one to a seed (:meth:`bind`) produces
    the stateful :class:`FaultInjector` a driver consumes.  One plan may
    be bound many times — each binding is independent and deterministic.
    """

    __slots__ = ("faults",)

    def __init__(self, faults: Sequence[Fault] = ()):
        for fault in faults:
            if type(fault) not in _FAULT_KINDS:
                raise TypeError(f"not a fault record: {fault!r}")
            if fault.at < 0:
                raise ValueError(f"fault trigger step must be >= 0: {fault!r}")
        # Stable sort: faults sharing a trigger step fire in plan order.
        self.faults: Tuple[Fault, ...] = tuple(
            sorted(faults, key=lambda f: f.at)
        )

    @classmethod
    def periodic_corruption(
        cls, *, start: int, period: int, count: int, agents: int = 1
    ) -> "FaultPlan":
        """``count`` :class:`CorruptAgents` faults of ``agents`` agents
        each, at ``start, start+period, ...`` — the standard recovering-
        under-repeated-hits workload."""
        if period <= 0:
            raise ValueError("period must be positive")
        return cls(
            [CorruptAgents(at=start + i * period, agents=agents) for i in range(count)]
        )

    def bind(self, seed: int) -> "FaultInjector":
        """A fresh injector for this plan, with its own random stream
        derived from ``seed`` (label ``"faults"``, so the stream is
        independent of every simulation/attempt stream)."""
        return FaultInjector(self, seed)

    def is_empty(self) -> bool:
        return not self.faults

    def __len__(self) -> int:
        return len(self.faults)

    def __iter__(self):
        return iter(self.faults)

    def __repr__(self) -> str:
        return f"FaultPlan({list(self.faults)!r})"


# ----------------------------------------------------------------------
# Views: how faults touch each layer's state representation
# ----------------------------------------------------------------------
class MultisetView:
    """Corruption view over a legacy-loop :class:`Multiset` configuration.

    ``move`` goes through ``inc``/``dec``, so any attached watchers (an
    :class:`EnabledIndex` observing the multiset) stay exact for free.
    """

    __slots__ = ("states", "_config", "accept_delta")

    def __init__(self, protocol, config):
        # Sorted by repr: the injector's choices must not depend on the
        # process hash salt (same rule as the schedulers).
        self.states: Tuple[Any, ...] = tuple(sorted(protocol.states, key=repr))
        self._config = config
        self.accept_delta = 0  # unused: the legacy loop recomputes output

    def count(self, state) -> int:
        return self._config[state]

    def move(self, src, dst, k: int = 1) -> None:
        self._config.dec(src, k)
        self._config.inc(dst, k)


class IndexView:
    """Corruption view over a fast-path :class:`EnabledIndex`.

    Mutates the flat count array and repairs the index via
    ``fix_state`` after every move, so the weight/active/total invariant
    holds at all times.  ``accept_delta`` accumulates the net change in
    the number of accepting agents; the fast loops fold it into their
    O(Δ) output tracking instead of rescanning the configuration.
    """

    __slots__ = ("index", "states", "accept_delta")

    def __init__(self, index):
        self.index = index
        self.states: Tuple[Any, ...] = index.table.states
        self.accept_delta = 0

    def count(self, state) -> int:
        return self.index.cnt[self.index.table.sid[state]]

    def move(self, src, dst, k: int = 1) -> None:
        index = self.index
        sid = index.table.sid
        a, b = sid[src], sid[dst]
        index.cnt[a] -= k
        index.cnt[b] += k
        index.fix_state(a)
        index.fix_state(b)
        accepting = index.table.accepting
        self.accept_delta += k * (int(accepting[b]) - int(accepting[a]))


class RegisterView:
    """Corruption view over a program interpreter's register dict."""

    __slots__ = ("states", "_registers", "accept_delta")

    def __init__(self, registers: Dict[str, int]):
        self.states: Tuple[str, ...] = tuple(sorted(registers))
        self._registers = registers
        self.accept_delta = 0

    def count(self, state) -> int:
        return self._registers.get(state, 0)

    def move(self, src, dst, k: int = 1) -> None:
        self._registers[src] -= k
        self._registers[dst] = self._registers.get(dst, 0) + k


# ----------------------------------------------------------------------
# The injector
# ----------------------------------------------------------------------
class FaultInjector:
    """Stateful executor of one bound :class:`FaultPlan`.

    Driver contract (both scheduler loops, the fast path, and the
    program interpreter follow it):

    * at the top of each step, if the layer's step counter has reached
      :attr:`next_at`, call :meth:`fire` with a view of the current
      state — this applies every due corruption/reset and arms the
      drop/duplicate/unfair effects;
    * after selecting an interaction, consume one drop token via
      :meth:`take_drop` (a ``True`` return means: count the step, skip
      the application);
    * after *applying* a productive interaction that is still enabled,
      consume one duplicate token via :meth:`take_duplicate`;
    * when :meth:`unfair_active` holds for the upcoming step, bypass the
      fair sampler and play the deterministic adversarial choice.

    :attr:`next_at` is ``inf`` once the plan is exhausted, so the hot
    loops pay a single integer compare per step.
    """

    def __init__(self, plan: FaultPlan, seed: int):
        # Late import: runtime.seeds imports core.simulation; keeping the
        # dependency out of module scope lets core modules import this
        # one (or vice versa) in any order.
        from repro.runtime.seeds import derive_seed_path

        self.plan = plan
        self.seed = seed
        self.rng = random.Random(derive_seed_path(seed, "faults"))
        self._queue: Tuple[Fault, ...] = plan.faults
        self._pos = 0
        self.fired = 0
        self.drop_left = 0
        self.duplicate_left = 0
        self.unfair_until = -1  # inclusive: steps <= this are adversarial
        self.next_at: float = (
            self._queue[0].at if self._queue else _INFINITY
        )

    # -- scheduling ------------------------------------------------------
    def unfair_active(self, step: int) -> bool:
        """Whether step number ``step`` falls inside an armed unfair
        window (windows cover the ``length`` steps after their trigger)."""
        return step <= self.unfair_until

    def take_drop(self) -> bool:
        if self.drop_left > 0:
            self.drop_left -= 1
            return True
        return False

    def take_duplicate(self) -> bool:
        if self.duplicate_left > 0:
            self.duplicate_left -= 1
            return True
        return False

    # -- firing ----------------------------------------------------------
    def fire(self, step: int, view, obs=None, layer: str = LAYER_PROTOCOL) -> None:
        """Apply every fault whose trigger step is ≤ ``step``.

        ``view`` is one of the view classes above; ``obs`` (a live
        observer or ``None``) receives one ``fault`` event per applied
        fault.  Updates :attr:`next_at` to the next pending trigger.
        """
        queue = self._queue
        while self._pos < len(queue) and queue[self._pos].at <= step:
            fault = queue[self._pos]
            self._pos += 1
            self.fired += 1
            kind = _FAULT_KINDS[type(fault)]
            data: Dict[str, Any] = {"at": fault.at}
            if isinstance(fault, CorruptAgents):
                kind = "corrupt"
                data["moves"] = self._corrupt(view, fault.agents)
            elif isinstance(fault, ResetAgents):
                kind = "reset"
                target, moved = self._reset(view, fault.agents, fault.state)
                data["state"] = repr(target)
                data["moves"] = moved
            elif isinstance(fault, DropInteractions):
                kind = "drop_scheduled"
                self.drop_left += fault.count
                data["count"] = fault.count
            elif isinstance(fault, DuplicateInteractions):
                kind = "duplicate_scheduled"
                self.duplicate_left += fault.count
                data["count"] = fault.count
            else:  # UnfairWindow
                kind = "unfair"
                until = step + fault.length
                if until > self.unfair_until:
                    self.unfair_until = until
                data["length"] = fault.length
            if obs is not None:
                obs.on_fault(step, kind, layer, **data)
            # Instant span so injected faults show up in the span tree
            # (no-op unless a tracer is active in this process).
            _spans.mark(f"fault:{kind}", step=step, at=fault.at)
        self.next_at = queue[self._pos].at if self._pos < len(queue) else _INFINITY

    # -- corruption mechanics -------------------------------------------
    def _occupied(self, view, exclude=None) -> Tuple[List[Any], List[int]]:
        states, weights = [], []
        for state in view.states:
            if exclude is not None and state == exclude:
                continue
            count = view.count(state)
            if count > 0:
                states.append(state)
                weights.append(count)
        return states, weights

    def _corrupt(self, view, agents: int) -> List[Tuple[str, str]]:
        """Move ``agents`` units, one at a time: source weighted by
        occupancy, destination uniform over the *other* states.  Returns
        the applied ``(src, dst)`` moves (repr'd, for the trace)."""
        moves: List[Tuple[str, str]] = []
        if len(view.states) < 2:
            return moves  # nowhere to move to: corruption degenerates
        for _ in range(agents):
            occupied, weights = self._occupied(view)
            if not occupied:
                break
            src = self.rng.choices(occupied, weights=weights)[0]
            others = [s for s in view.states if s != src]
            dst = self.rng.choice(others)
            view.move(src, dst, 1)
            moves.append((repr(src), repr(dst)))
        return moves

    def _reset(self, view, agents: int, state) -> Tuple[Any, int]:
        """Move ``agents`` units onto one target state; returns the
        target and how many actually moved."""
        if state is not None:
            if state not in view.states:
                raise ValueError(
                    f"ResetAgents target {state!r} is not a state of the "
                    f"simulated system"
                )
            target = state
        else:
            target = self.rng.choice(list(view.states))
        moved = 0
        for _ in range(agents):
            occupied, weights = self._occupied(view, exclude=target)
            if not occupied:
                break
            src = self.rng.choices(occupied, weights=weights)[0]
            view.move(src, target, 1)
            moved += 1
        return target, moved

    def exhausted(self) -> bool:
        """No pending triggers *and* no armed drop/duplicate tokens.
        (An open unfair window with no pending faults cannot make a
        silent configuration active again, so it is ignored here.)"""
        return (
            self._pos >= len(self._queue)
            and self.drop_left == 0
            and self.duplicate_left == 0
        )

    def __repr__(self) -> str:
        return (
            f"FaultInjector(fired={self.fired}/{len(self._queue)}, "
            f"next_at={self.next_at})"
        )


def resolve_injector(faults, seed: Optional[int]) -> Optional[FaultInjector]:
    """Normalise a driver's ``faults=`` argument: ``None`` passes
    through, a :class:`FaultPlan` is bound to ``seed`` (0 when the driver
    was given only an ``rng``), an already-bound injector is used as-is
    (callers doing multi-segment runs can thread one injector through)."""
    if faults is None:
        return None
    if isinstance(faults, FaultInjector):
        return faults
    if isinstance(faults, FaultPlan):
        return faults.bind(seed if seed is not None else 0)
    raise TypeError(
        f"faults must be a FaultPlan or FaultInjector, got {type(faults).__name__}"
    )
