"""Experiment X3 — convergence cost of the construction.

The paper leaves runtime out of scope ("standard techniques could be used
to avoid restarts … beyond the scope of this paper"); this experiment
quantifies what that costs in the vanilla construction: interpreter steps
and restart counts until stabilisation, per level count n and input m,
under canonical restart sampling."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.experiments.report import render_table
from repro.lipton.canonical import canonical_restart_policy, good_configuration
from repro.lipton.construction import build_threshold_program
from repro.lipton.levels import threshold
from repro.programs.interpreter import run_program
from repro.runtime.pool import parallel_map
from repro.runtime.seeds import derive_seed_path


@dataclass
class ConvergenceSample:
    n: int
    m: int
    accepting: bool
    steps_to_stabilise: Optional[int]
    restarts: int


@dataclass
class ConvergenceReport:
    samples: List[ConvergenceSample]

    def render(self) -> str:
        header = ["n", "m", "accepting", "steps", "restarts"]
        rows = [
            (s.n, s.m, s.accepting, s.steps_to_stabilise, s.restarts)
            for s in self.samples
        ]
        return render_table(header, rows)

    def median_steps(self, n: int, accepting: bool) -> Optional[int]:
        values = sorted(
            s.steps_to_stabilise
            for s in self.samples
            if s.n == n and s.accepting == accepting
            and s.steps_to_stabilise is not None
        )
        if not values:
            return None
        return values[len(values) // 2]


def measure_convergence(
    n: int,
    m: int,
    *,
    seed: int = 0,
    max_steps: int = 20_000_000,
) -> ConvergenceSample:
    """Steps until the output flag reaches (and keeps) its final value.

    For accepting inputs we measure the first step at which OF became true
    (it never reverts without a restart, and we verify no restart follows);
    for rejecting inputs stabilisation is immediate modulo restarts, so we
    measure the step of the last restart.
    """
    from repro.lipton.construction import suggested_quiet_window

    program = build_threshold_program(n)
    policy = canonical_restart_policy(n)
    accepting = m >= threshold(n)
    window = suggested_quiet_window(n)

    def stop(state) -> bool:
        if accepting:
            return state.output  # stop at OF := true
        return state.quiet_steps >= window

    result = run_program(
        program,
        good_configuration(n, m),
        seed=seed,
        restart_policy=policy,
        max_steps=max_steps,
        stop_condition=stop,
    )
    if accepting:
        steps = result.steps if result.output else None
    else:
        steps = result.restart_steps[-1] if result.restart_steps else 0
    return ConvergenceSample(
        n=n,
        m=m,
        accepting=accepting,
        steps_to_stabilise=steps,
        restarts=result.restarts,
    )


def run_convergence(
    max_n: int = 3,
    *,
    trials: int = 3,
    seed: int = 0,
    max_steps: int = 20_000_000,
    jobs: int | str | None = None,
) -> ConvergenceReport:
    """Sweep (n, m, trial); ``jobs`` fans the samples across a process
    pool (identical results to sequential for the same seed — each
    sample's seed is a pure function of its (n, m, trial) path).

    The old per-sample scheme ``seed + 1000*n + 10*trial`` was
    collision-prone (any ``trials > 10`` reused neighbouring streams,
    and every (n, m) pair at the same n shared them); seeds now come
    from the :mod:`repro.runtime.seeds` tree.
    """
    grid = [
        (n, m, trial)
        for n in range(1, max_n + 1)
        for m in ((threshold(n) - 1), threshold(n), threshold(n) + 3)
        for trial in range(trials)
    ]
    tasks = [
        (n, m, derive_seed_path(seed, "convergence", n, m, trial), max_steps)
        for n, m, trial in grid
    ]
    samples: List[ConvergenceSample] = parallel_map(
        measure_convergence_task,
        tasks,
        jobs=jobs,
        paths=[("convergence", n, m, trial) for n, m, trial in grid],
    )
    return ConvergenceReport(samples)


def measure_convergence_task(
    n: int, m: int, seed: int, max_steps: int
) -> ConvergenceSample:
    """Module-level task wrapper so the pool can pickle it by reference."""
    return measure_convergence(n, m, seed=seed, max_steps=max_steps)


if __name__ == "__main__":
    report = run_convergence()
    print(report.render())
    for n in (1, 2, 3):
        print(f"n={n}: median accept steps {report.median_steps(n, True)}")
