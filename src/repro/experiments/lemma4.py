"""Experiment L4 — Lemma 4: Main's trichotomy.

For every register configuration of a small total ``m`` (or a sample of
them), classify it per Appendix A (j-low & (j+1)-empty / n-proper /
otherwise) and check that a sampled run of Main exhibits the predicted
behaviour: stabilise false / stabilise true / restart."""

from __future__ import annotations

import random
from dataclasses import dataclass
from itertools import combinations
from typing import Dict, Iterator, List, Optional

from repro.core.simulation import derive_seed
from repro.experiments.report import render_table
from repro.observability import spans as _spans
from repro.lipton.classify import MainBehaviour, classify
from repro.lipton.construction import build_threshold_program
from repro.lipton.levels import all_registers
from repro.programs.ast import PopulationProgram
from repro.programs.interpreter import run_program
from repro.programs.restart import UniformRestart
from repro.runtime.pool import parallel_map
from repro.runtime.seeds import derive_seed_path


def enumerate_register_configurations(
    n: int, total: int
) -> Iterator[Dict[str, int]]:
    """All register configurations with the given total (stars and bars)."""
    registers = all_registers(n)
    k = len(registers)
    for dividers in combinations(range(total + k - 1), k - 1):
        config: Dict[str, int] = {}
        previous = -1
        for name, divider in zip(registers, dividers):
            value = divider - previous - 1
            if value:
                config[name] = value
            previous = divider
        last = total + k - 2 - previous
        if last:
            config[registers[-1]] = last
        yield config


def observe_main_behaviour(
    program: PopulationProgram,
    config: Dict[str, int],
    *,
    seed: int = 0,
    quiet_window: int = 20_000,
    max_steps: int = 2_000_000,
) -> Optional[MainBehaviour]:
    """Run Main once; report RESTART if a restart fires, else the quiet
    output, else ``None`` (budget exhausted — treated as inconclusive)."""

    def stop(state) -> bool:
        return state.restarts >= 1 or state.quiet_steps >= quiet_window

    result = run_program(
        program,
        config,
        seed=seed,
        restart_policy=UniformRestart(),
        max_steps=max_steps,
        stop_condition=stop,
    )
    if result.restarts >= 1:
        return MainBehaviour.RESTART
    if result.hung or result.quiet_steps >= quiet_window:
        return (
            MainBehaviour.STABILISE_TRUE
            if result.output
            else MainBehaviour.STABILISE_FALSE
        )
    return None


def check_lemma4_case(
    program: PopulationProgram,
    config: Dict[str, int],
    predicted: MainBehaviour,
    *,
    base_seed: int = 0,
    attempts: int = 10,
    quiet_window: int = 20_000,
    max_steps: int = 2_000_000,
) -> Optional[MainBehaviour]:
    """Sample runs until the Lemma 4 verdict is settled.

    Lemma 4's (a)/(b) cases are *may*-statements: a good configuration may
    stabilise, but it may also restart first (e.g. AssertEmpty spotting the
    legitimate surplus in R); only "otherwise" configurations must *always*
    restart.  So:

    * ``predicted = RESTART``: any observed stabilisation refutes the lemma;
      an observed restart confirms it.
    * ``predicted = STABILISE_b``: an observed stabilisation to ``¬b``
      refutes it; restarts are retried (with the same initial
      configuration) until a stabilisation to ``b`` is found.

    Returns the settled observation (equal to ``predicted`` when
    consistent) or the refuting/inconclusive observation.
    """
    last: Optional[MainBehaviour] = None
    for attempt in range(attempts):
        # Per-attempt seeds are hash-derived (like decide's): the old
        # ``base_seed + attempt`` made adjacent base seeds share streams.
        observed = observe_main_behaviour(
            program,
            config,
            seed=derive_seed(base_seed, attempt),
            quiet_window=quiet_window,
            max_steps=max_steps,
        )
        last = observed
        if predicted == MainBehaviour.RESTART:
            return observed  # first observation settles it either way
        if observed == predicted:
            return observed
        if observed in (MainBehaviour.STABILISE_TRUE, MainBehaviour.STABILISE_FALSE):
            return observed  # stabilised to the wrong value: refuted
        # observed RESTART on a good configuration: legal, retry.
    return last


@dataclass
class Lemma4Trial:
    config: Dict[str, int]
    predicted: MainBehaviour
    observed: Optional[MainBehaviour]

    @property
    def consistent(self) -> bool:
        return self.observed is not None and self.observed == self.predicted


@dataclass
class Lemma4Report:
    n: int
    total: int
    trials: List[Lemma4Trial]

    @property
    def consistent(self) -> int:
        return sum(t.consistent for t in self.trials)

    def render(self) -> str:
        header = ["configuration", "predicted", "observed", "consistent"]
        rows = [
            (
                str(t.config),
                t.predicted.value,
                t.observed.value if t.observed else "-",
                t.consistent,
            )
            for t in self.trials
        ]
        return render_table(header, rows)


def run_lemma4(
    n: int = 1,
    total: int = 3,
    *,
    sample: Optional[int] = None,
    seed: int = 0,
    quiet_window: int = 20_000,
    max_steps: int = 2_000_000,
    jobs: Optional[int | str] = None,
) -> Lemma4Report:
    """Check Lemma 4 on all (or ``sample`` random) configurations of the
    given total.

    ``jobs`` fans the per-configuration checks across a process pool.
    Each check's base seed is derived from its configuration index via
    the seed tree (replacing the collision-prone ``seed + 100 * index``),
    so parallel and sequential runs observe identical samples.
    """
    program = build_threshold_program(n)
    configs = list(enumerate_register_configurations(n, total))
    rng = random.Random(seed)
    if sample is not None and sample < len(configs):
        configs = rng.sample(configs, sample)
    tasks = [
        (
            program,
            config,
            classify(config, n).behaviour,
            derive_seed_path(seed, "lemma4", index),
            quiet_window,
            max_steps,
        )
        for index, config in enumerate(configs)
    ]
    with _spans.span("lemma4", n=n, total=total, configs=len(configs)):
        trials = parallel_map(
            check_lemma4_task,
            tasks,
            jobs=jobs,
            span_labels=[f"config:{index}" for index in range(len(configs))],
            paths=[("lemma4", index) for index in range(len(configs))],
        )
    return Lemma4Report(n=n, total=total, trials=trials)


def check_lemma4_task(
    program: PopulationProgram,
    config: Dict[str, int],
    predicted: MainBehaviour,
    base_seed: int,
    quiet_window: int,
    max_steps: int,
) -> Lemma4Trial:
    """Module-level task wrapper so the pool can pickle it by reference."""
    observed = check_lemma4_case(
        program,
        config,
        predicted,
        base_seed=base_seed,
        quiet_window=quiet_window,
        max_steps=max_steps,
    )
    return Lemma4Trial(config=config, predicted=predicted, observed=observed)


if __name__ == "__main__":
    for total in (1, 2, 3, 4):
        report = run_lemma4(1, total)
        print(f"n=1 m={total}: {report.consistent}/{len(report.trials)} consistent")
