"""Experiment F3/F5/F6/F7 — the lowering gadgets of Figures 3, 5, 6, 7.

Each figure shows how one source construct compiles: Figure 3 (a while
loop with a swap), Figure 5 (a while loop with a negated detect),
Figure 6 (a procedure call with return value), Figure 7 (the restart
helper).  The driver compiles each fragment and extracts the structural
facts the figures depict: jump shapes, register-map assignments, return
pointers and the scramble loops of the restart helper."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.machines.lowering import lower_program
from repro.machines.machine import (
    AssignInstr,
    DetectInstr,
    IP,
    MoveInstr,
    PopulationMachine,
)
from repro.programs.ast import (
    CallExpr,
    Detect,
    If,
    Move,
    Not,
    Return,
    Swap,
    While,
)
from repro.programs.builder import procedure, program, seq, while_true


def figure3_machine() -> PopulationMachine:
    """Figure 3: ``while detect x > 0 do { x ↦ y; swap x, y }``."""
    main = procedure(
        "Main",
        While(Detect("x"), seq(Move("x", "y"), Swap("x", "y"))),
        while_true(),
    )
    return lower_program(program(["x", "y"], [main]), "figure3")


def figure5_machine() -> PopulationMachine:
    """Figure 5: ``while ¬(detect x > 0) do x ↦ y``."""
    main = procedure(
        "Main",
        While(Not(Detect("x")), seq(Move("x", "y"))),
        while_true(),
    )
    return lower_program(program(["x", "y"], [main]), "figure5")


def figure6_machine() -> PopulationMachine:
    """Figure 6: a call to ``AddTwo`` which moves twice and returns true."""
    add_two = procedure(
        "AddTwo",
        Move("x", "y"),
        Move("x", "y"),
        Return(True),
        returns_value=True,
    )
    main = procedure(
        "Main",
        If(CallExpr("AddTwo"), then_body=seq()),
        while_true(),
    )
    return lower_program(program(["x", "y"], [main, add_two]), "figure6")


def figure7_machine() -> PopulationMachine:
    """Figure 7: a program whose body is a single restart."""
    from repro.programs.ast import Restart

    main = procedure("Main", Restart(), while_true())
    return lower_program(program(["x", "y", "z"], [main]), "figure7")


@dataclass
class GadgetFacts:
    """Structural facts extracted from a compiled figure fragment."""

    name: str
    length: int
    detects: int
    moves: int
    ip_assignments: int
    register_map_assignments: int
    return_pointer_indirect_jumps: int
    restart_entry: int | None
    facts: Dict[str, bool]


def analyse(machine: PopulationMachine) -> GadgetFacts:
    detects = sum(isinstance(i, DetectInstr) for i in machine.instructions)
    moves = sum(isinstance(i, MoveInstr) for i in machine.instructions)
    ip_assigns = sum(
        isinstance(i, AssignInstr) and i.target == IP for i in machine.instructions
    )
    vmap_assigns = sum(
        isinstance(i, AssignInstr) and i.target.startswith("V[")
        for i in machine.instructions
    )
    indirect_returns = sum(
        isinstance(i, AssignInstr)
        and i.target == IP
        and i.source.startswith("P[")
        for i in machine.instructions
    )
    facts: Dict[str, bool] = {}
    # Figure 3/5 shape: a conditional branch on CF follows every detect.
    follows = []
    for index, instr in enumerate(machine.instructions[:-1]):
        if isinstance(instr, DetectInstr):
            nxt = machine.instructions[index + 1]
            follows.append(
                isinstance(nxt, AssignInstr)
                and nxt.target == IP
                and nxt.source == "CF"
            )
    facts["branch_follows_every_detect"] = bool(follows) and all(follows)
    # Figure 3 shape: swaps become exactly three register-map assignments.
    facts["swap_is_three_map_assignments"] = vmap_assigns % 3 == 0
    return GadgetFacts(
        name=machine.name,
        length=machine.length,
        detects=detects,
        moves=moves,
        ip_assignments=ip_assigns,
        register_map_assignments=vmap_assigns,
        return_pointer_indirect_jumps=indirect_returns,
        restart_entry=machine.restart_entry,
        facts=facts,
    )


def run_figures_lowering() -> List[GadgetFacts]:
    return [
        analyse(figure3_machine()),
        analyse(figure5_machine()),
        analyse(figure6_machine()),
        analyse(figure7_machine()),
    ]


if __name__ == "__main__":
    from repro.machines.machine import pretty_print

    for make in (figure3_machine, figure5_machine, figure6_machine, figure7_machine):
        machine = make()
        print(pretty_print(machine))
        print()
