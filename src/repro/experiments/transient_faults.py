"""Experiment X4 — transient faults: recovery of the Theorem 3
construction under mid-run corruption.

Experiment X2 (:mod:`repro.experiments.ablation`) shows the §5.2
error-checking machinery (AssertEmpty / AssertProper + restart) rescues
the construction from *adversarial initialisation*.  This experiment
probes the complementary self-stabilisation claim: start from a *good*
configuration (``x1 = total``), let the run make progress, then corrupt
the registers mid-flight with a deterministic
:class:`~repro.resilience.FaultPlan`.  The full construction detects the
inconsistency and restarts its way back to the correct verdict; the
assertion-stripped variant (``error_checking=False``) silently carries
the corrupted counter to a wrong — but perfectly quiet — answer, so its
failure rate is measurably higher.

A protocol-level probe rides along: the same fault plan applied to the
binary-threshold baseline under every scheduler family (legacy and
fastpath), primarily demonstrating that injection is deterministic and
invariant-preserving end-to-end.  Protocol-level corruption *may*
legitimately flip a verdict — plain protocols promise nothing under
faults — so the probe reports outcomes rather than asserting recovery.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.experiments.report import render_table
from repro.lipton.canonical import canonical_restart_policy
from repro.lipton.construction import build_threshold_program, suggested_quiet_window
from repro.lipton.levels import threshold
from repro.programs.interpreter import decide_program
from repro.resilience import FaultPlan


@dataclass
class FaultTrialOutcome:
    """One transient-fault trial: sampled verdict vs ground truth."""

    n: int
    total: int
    error_checking: bool
    expected: bool
    got: Optional[bool]

    @property
    def correct(self) -> bool:
        return self.got is not None and self.got == self.expected


def default_fault_plan(
    *, start: int = 40_000, period: int = 120_000, count: int = 3, agents: int = 2
) -> FaultPlan:
    """The standard workload: a few small corruption bursts, spaced far
    enough apart for the restart machinery to recover between hits."""
    return FaultPlan.periodic_corruption(
        start=start, period=period, count=count, agents=agents
    )


def transient_fault_trial(
    n: int,
    total: int,
    *,
    seed: int,
    error_checking: bool = True,
    fault_plan: Optional[FaultPlan] = None,
    quiet_window: Optional[int] = None,
    max_steps: int = 20_000_000,
    program=None,
) -> FaultTrialOutcome:
    """Run the n-level program from the *good* configuration
    ``x1 = total`` with mid-run register corruption, and compare the
    stabilised output with ``total ≥ threshold(n)``.

    Each fault re-opens the interpreter's quiet window, so a returned
    verdict certifies stabilisation *after* the final corruption."""
    if quiet_window is None:
        quiet_window = suggested_quiet_window(n)
    if fault_plan is None:
        fault_plan = default_fault_plan()
    if program is None:
        program = build_threshold_program(n, error_checking=error_checking)
    got = decide_program(
        program,
        {"x1": total},
        seed=seed,
        restart_policy=canonical_restart_policy(n),
        quiet_window=quiet_window,
        max_steps=max_steps,
        strict=False,
        faults=fault_plan,
    )
    return FaultTrialOutcome(
        n=n,
        total=total,
        error_checking=error_checking,
        expected=total >= threshold(n),
        got=got,
    )


_ARTIFACTS: dict = {}


def _program_for(n: int, error_checking: bool):
    key = (n, error_checking)
    if key not in _ARTIFACTS:
        _ARTIFACTS[key] = build_threshold_program(n, error_checking=error_checking)
    return _ARTIFACTS[key]


def transient_fault_task(
    n: int,
    total: int,
    error_checking: bool,
    seed: int,
    quiet_window: int,
    max_steps: int,
    plan_args: Dict[str, int],
) -> FaultTrialOutcome:
    """One trial, module-level so :func:`repro.runtime.pool.parallel_map`
    can pickle it by reference; programs are memoised per worker."""
    return transient_fault_trial(
        n,
        total,
        seed=seed,
        error_checking=error_checking,
        fault_plan=default_fault_plan(**plan_args),
        quiet_window=quiet_window,
        max_steps=max_steps,
        program=_program_for(n, error_checking),
    )


@dataclass
class SchedulerProbeRow:
    """Protocol-level probe: one scheduler family under the fault plan."""

    family: str
    verdict: Optional[bool]
    expected: bool
    interactions: int
    faults: int


@dataclass
class TransientFaultReport:
    """X4 headline numbers (see :meth:`render` for the table shape)."""

    n: int
    with_checks_correct: int
    with_checks_total: int
    without_checks_correct: int
    without_checks_total: int
    probes: List[SchedulerProbeRow] = field(default_factory=list)

    @property
    def with_checks_rate(self) -> float:
        return self.with_checks_correct / max(1, self.with_checks_total)

    @property
    def without_checks_rate(self) -> float:
        return self.without_checks_correct / max(1, self.without_checks_total)

    @property
    def checks_help(self) -> bool:
        """Full construction strictly more fault-tolerant than stripped."""
        return self.with_checks_rate > self.without_checks_rate

    def render(self) -> str:
        header = ["variant", "correct", "total", "rate"]
        rows = [
            (
                "with error checks",
                self.with_checks_correct,
                self.with_checks_total,
                round(self.with_checks_rate, 3),
            ),
            (
                "without (bare Lipton)",
                self.without_checks_correct,
                self.without_checks_total,
                round(self.without_checks_rate, 3),
            ),
        ]
        table = render_table(header, rows)
        if self.probes:
            header2 = ["scheduler family", "verdict", "expected", "interactions", "faults"]
            rows2 = [
                (p.family, p.verdict, p.expected, p.interactions, p.faults)
                for p in self.probes
            ]
            table += "\n\nprotocol-level probe (binary threshold):\n"
            table += render_table(header2, rows2)
        return table


def scheduler_family_probe(
    *, k: int = 5, population: int = 40, seed: int = 11
) -> List[SchedulerProbeRow]:
    """Run one faulted simulation per scheduler family on the
    binary-threshold baseline and report the (deterministic) outcomes.

    The plan mixes every fault kind, so this exercises the corrupt /
    reset / drop / duplicate / unfair paths of both the legacy loop and
    the fastpath loops in a single sweep."""
    from repro.baselines.binary import binary_threshold_protocol
    from repro.core.fastpath import FastEnabledScheduler, FastUniformScheduler
    from repro.core.multiset import Multiset
    from repro.core.scheduler import (
        EnabledTransitionScheduler,
        UniformPairScheduler,
    )
    from repro.core.simulation import simulate
    from repro.resilience import (
        CorruptAgents,
        DropInteractions,
        DuplicateInteractions,
        ResetAgents,
        UnfairWindow,
    )

    protocol = binary_threshold_protocol(k)
    config = Multiset({"p0": population})
    plan = FaultPlan(
        [
            CorruptAgents(at=30, agents=2),
            ResetAgents(at=80, agents=1),
            DropInteractions(at=140, count=2),
            DuplicateInteractions(at=200, count=2),
            UnfairWindow(at=260, length=40),
        ]
    )
    families = [
        ("fast_enabled", FastEnabledScheduler()),
        ("fast_uniform", FastUniformScheduler()),
        ("legacy_enabled", EnabledTransitionScheduler()),
        ("legacy_uniform", UniformPairScheduler()),
    ]
    rows = []
    for name, scheduler in families:
        result = simulate(
            protocol,
            config,
            seed=seed,
            scheduler=scheduler,
            faults=plan,
            max_interactions=500_000,
        )
        rows.append(
            SchedulerProbeRow(
                family=name,
                verdict=result.verdict,
                expected=population >= k,
                interactions=result.interactions,
                faults=len(plan),
            )
        )
    return rows


def run_transient_faults(
    n: int = 2,
    *,
    trials_per_total: int = 3,
    seed: int = 0,
    quiet_window: int = 30_000,
    max_steps: int = 10_000_000,
    fault_start: int = 40_000,
    fault_period: int = 120_000,
    fault_count: int = 3,
    fault_agents: int = 2,
    jobs: Optional[int | str] = None,
    probe: bool = True,
) -> TransientFaultReport:
    """The X4 driver: boundary totals × both variants × several trials,
    fanned across the pool, plus the protocol-level scheduler probe.

    Per-trial seeds are pure functions of the (variant, total, trial)
    path, so parallel and sequential runs sample identical trials."""
    from repro.runtime.pool import parallel_map
    from repro.runtime.seeds import derive_seed_path

    k = threshold(n)
    totals = [max(1, k - 3), k - 1, k, k + 2, k + 6]
    plan_args = {
        "start": fault_start,
        "period": fault_period,
        "count": fault_count,
        "agents": fault_agents,
    }
    tasks = []
    paths = []
    for error_checking in (True, False):
        for total in totals:
            for trial in range(trials_per_total):
                tasks.append(
                    (
                        n,
                        total,
                        error_checking,
                        derive_seed_path(
                            seed, "transient", int(error_checking), total, trial
                        ),
                        quiet_window,
                        max_steps,
                        plan_args,
                    )
                )
                paths.append(("transient", int(error_checking), total, trial))
    outcomes: List[FaultTrialOutcome] = parallel_map(
        transient_fault_task, tasks, jobs=jobs, paths=paths
    )
    tallies: Dict[bool, Tuple[int, int]] = {True: (0, 0), False: (0, 0)}
    for outcome in outcomes:
        correct, total_count = tallies[outcome.error_checking]
        tallies[outcome.error_checking] = (
            correct + outcome.correct,
            total_count + 1,
        )
    return TransientFaultReport(
        n=n,
        with_checks_correct=tallies[True][0],
        with_checks_total=tallies[True][1],
        without_checks_correct=tallies[False][0],
        without_checks_total=tallies[False][1],
        probes=scheduler_family_probe() if probe else [],
    )


if __name__ == "__main__":
    report = run_transient_faults()
    print(report.render())
    print("error checking helps under transient faults:", report.checks_help)
