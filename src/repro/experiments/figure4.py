"""Experiment F4 — Figure 4: instruction → transition gadgets.

Builds a four-instruction machine containing each instruction kind of the
figure (a move, a detect, a conditional jump and an OF assignment),
converts it, and reports the generated transition families per
instruction, checking the structural properties Figure 4 depicts."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.machines.machine import (
    AssignInstr,
    BOOL_DOMAIN,
    CF,
    DetectInstr,
    IP,
    MoveInstr,
    OF,
    PopulationMachine,
    register_map_pointer,
)
from repro.conversion.protocol_from_machine import ConvertedProtocol, convert_machine
from repro.conversion.states import (
    EMIT,
    FALSE,
    NONE,
    PointerState,
    TAKE,
    TRUE,
)


def figure4_machine() -> PopulationMachine:
    """The four-line machine of Figure 4:

    1. ``x ↦ y``
    2. ``detect x > 0``
    3. ``IP := 1 if CF else 4``
    4. ``OF := ¬CF``  (a general pointer assignment)
    5. ``IP := 1``    (loop back, so instruction 4 is not terminal)
    """
    instructions = (
        MoveInstr("x", "y"),
        DetectInstr("x"),
        AssignInstr(IP, CF, {True: 1, False: 4}),
        AssignInstr(OF, CF, {True: False, False: True}),
        AssignInstr(IP, CF, {True: 1, False: 1}),
    )
    domains = {
        OF: BOOL_DOMAIN,
        CF: BOOL_DOMAIN,
        IP: (1, 2, 3, 4, 5),
        register_map_pointer("x"): ("x",),
        register_map_pointer("y"): ("y",),
        register_map_pointer("#"): ("x",),
    }
    return PopulationMachine(
        registers=("x", "y"),
        pointer_domains=domains,
        instructions=instructions,
        name="figure4",
    )


@dataclass
class Figure4Report:
    conversion: ConvertedProtocol
    per_instruction_counts: Dict[int, int]
    facts: Dict[str, bool]


def run_figure4() -> Figure4Report:
    machine = figure4_machine()
    conversion = convert_machine(machine, "figure4")
    counts = {
        index: len(gadget)
        for index, gadget in conversion.instruction_transitions.items()
    }
    vx = register_map_pointer("x")
    vy = register_map_pointer("y")
    gadget1 = conversion.instruction_transitions[1]
    gadget2 = conversion.instruction_transitions[2]
    gadget3 = conversion.instruction_transitions[3]
    gadget4 = conversion.instruction_transitions[4]

    facts = {
        # (move) recruits V_x into emit and V_y into take.
        "move_has_emit": any(
            isinstance(t.r2, PointerState) and t.r2.stage == EMIT for t in gadget1
        ),
        "move_has_take": any(
            isinstance(t.r2, PointerState) and t.r2.stage == TAKE for t in gadget1
        ),
        # (test) has a true-branch on meeting the register's own state and
        # false-branches on meeting anything else.
        "test_true_on_own_state": any(
            isinstance(t.q2, PointerState)
            and t.q2.stage == TRUE
            and t.r == "x"
            for t in gadget2
        ),
        "test_false_on_other_states": sum(
            isinstance(t.q2, PointerState) and t.q2.stage == FALSE for t in gadget2
        )
        > 1,
        # (pointer) conditional jump reads CF directly (two-agent rule).
        "jump_reads_cf": all(
            isinstance(t.r, PointerState) and t.r.pointer == CF
            for t in gadget3
            if isinstance(t.q, PointerState) and t.q.stage == NONE
        ),
        # OF := not CF is a general assignment going through a map state.
        "of_assignment_uses_map_state": any(
            type(t.r2).__name__ == "MapState" or type(t.q2).__name__ == "MapState"
            for t in gadget4
        ),
    }
    return Figure4Report(
        conversion=conversion, per_instruction_counts=counts, facts=facts
    )


if __name__ == "__main__":
    report = run_figure4()
    print("transitions per instruction:", report.per_instruction_counts)
    for name, value in report.facts.items():
        print(f"{name}: {value}")
