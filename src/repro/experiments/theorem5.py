"""Experiment TH5 — Theorem 5 / Propositions 14 & 16: conversion overhead.

Size side: program size → machine size → protocol states, verifying the
O(·) relationships and Proposition 16's explicit bound.  Behaviour side:
*lockstep co-simulation* — drive the converted protocol with a random
scheduler and check that the sequence of π-image configurations it passes
through is a legal run of the machine."""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional

from repro.core.errors import ReproError
from repro.core.scheduler import EnabledTransitionScheduler
from repro.core.semantics import apply_transition_inplace
from repro.experiments.report import render_table
from repro.lipton.construction import build_threshold_program
from repro.machines.interpreter import machine_successors
from repro.programs.examples import figure1_program, simple_threshold_program
from repro.conversion.mapping import inverse_pi, pi
from repro.conversion.pipeline import PipelineResult, compile_program
from repro.conversion.protocol_from_machine import proposition16_state_bound


@dataclass
class ConversionRow:
    name: str
    program_size: int
    machine_size: int
    inner_states: int
    bound: int
    final_states: int
    shift: int

    @property
    def bound_holds(self) -> bool:
        return self.inner_states <= self.bound


def conversion_rows(
    builders: Optional[List] = None,
) -> List[ConversionRow]:
    if builders is None:
        builders = [
            ("thr2", lambda: simple_threshold_program(2)),
            ("thr5", lambda: simple_threshold_program(5)),
            ("figure1", figure1_program),
            ("lipton-n1", lambda: build_threshold_program(1)),
            ("lipton-n2", lambda: build_threshold_program(2)),
        ]
    rows = []
    for name, make in builders:
        result = compile_program(make(), name)
        rows.append(
            ConversionRow(
                name=name,
                program_size=result.program_size.total,
                machine_size=result.machine_size,
                inner_states=result.inner_state_count,
                bound=proposition16_state_bound(result.machine),
                final_states=result.state_count,
                shift=result.shift,
            )
        )
    return rows


def render_conversion(rows: List[ConversionRow]) -> str:
    header = [
        "program",
        "prog size",
        "machine size",
        "|Q*|",
        "P16 bound",
        "|Q'|",
        "shift |F|",
        "bound ok",
    ]
    return render_table(
        header,
        [
            (
                r.name,
                r.program_size,
                r.machine_size,
                r.inner_states,
                r.bound,
                r.final_states,
                r.shift,
                r.bound_holds,
            )
            for r in rows
        ],
    )


class LockstepViolation(ReproError):
    """The protocol visited a π-image that is not machine-reachable."""


def lockstep_check(
    pipeline: PipelineResult,
    register_values,
    *,
    seed: int = 0,
    interactions: int = 200_000,
) -> int:
    """Drive the *inner* protocol from π(initial machine config) and verify
    every consecutive pair of distinct π-images is a machine step.

    Returns the number of verified machine steps.  Raises
    :class:`LockstepViolation` on a mismatch.
    """
    conversion = pipeline.conversion
    machine = pipeline.machine
    current_machine = machine.initial_configuration(register_values)
    config = pi(conversion, current_machine)
    protocol = conversion.protocol
    rng = random.Random(seed)
    scheduler = EnabledTransitionScheduler()
    verified = 0
    for _ in range(interactions):
        step = scheduler.select(protocol, config, rng)
        if step.transition is None:
            break
        apply_transition_inplace(config, step.transition)
        observed = inverse_pi(conversion, config)
        if observed is None:
            continue
        if observed.freeze() == current_machine.freeze():
            continue
        legal = [s.freeze() for s in machine_successors(machine, current_machine)]
        if observed.freeze() not in legal:
            raise LockstepViolation(
                f"protocol reached pi-image {observed.pointers} not a machine "
                f"successor of {current_machine.pointers}"
            )
        current_machine = observed
        verified += 1
    return verified


if __name__ == "__main__":
    rows = conversion_rows()
    print(render_conversion(rows))
    pipeline = compile_program(simple_threshold_program(2), "thr2")
    print("verified lockstep machine steps:", lockstep_check(pipeline, {"x": 3}))
