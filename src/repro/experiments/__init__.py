"""Experiment drivers — one per table/figure/theorem of the paper.

See DESIGN.md §4 for the experiment index and EXPERIMENTS.md for the
recorded results.  Every driver is also exposed through a benchmark in
``benchmarks/``.
"""

from repro.experiments.ablation import AblationReport, run_ablation
from repro.experiments.awareness_probe import AwarenessReport, run_awareness
from repro.experiments.convergence import (
    ConvergenceReport,
    measure_convergence,
    run_convergence,
)
from repro.experiments.figure1 import Figure1Report, run_figure1
from repro.experiments.figure2 import (
    Figure2Report,
    figure2_configurations,
    run_figure2,
)
from repro.experiments.figure4 import Figure4Report, figure4_machine, run_figure4
from repro.experiments.figures_lowering import (
    GadgetFacts,
    analyse,
    figure3_machine,
    figure5_machine,
    figure6_machine,
    figure7_machine,
    run_figures_lowering,
)
from repro.experiments.lemma4 import (
    Lemma4Report,
    check_lemma4_case,
    enumerate_register_configurations,
    observe_main_behaviour,
    run_lemma4,
)
from repro.experiments.lemma15 import ElectionReport, run_lemma15
from repro.experiments.report import render_table
from repro.experiments.table1 import Table1Report, run_table1
from repro.experiments.theorem1 import (
    Theorem1Report,
    run_theorem1_end_to_end,
    run_theorem1_sizes,
)
from repro.experiments.theorem2 import (
    SelfStabReport,
    run_program_selfstab,
    run_protocol_selfstab,
)
from repro.experiments.theorem3 import (
    Theorem3Report,
    run_theorem3_decisions,
    run_theorem3_sizes,
)
from repro.experiments.theorem5 import (
    LockstepViolation,
    conversion_rows,
    lockstep_check,
    render_conversion,
)
from repro.experiments.churn_recovery import (
    ChurnRecoveryReport,
    ChurnTrialOutcome,
    EngineProbeRow,
    churn_trial,
    engine_churn_probe,
    run_churn_recovery,
)
from repro.experiments.transient_faults import (
    FaultTrialOutcome,
    SchedulerProbeRow,
    TransientFaultReport,
    run_transient_faults,
    scheduler_family_probe,
    transient_fault_trial,
)

__all__ = [
    "render_table",
    "run_table1",
    "Table1Report",
    "run_theorem1_sizes",
    "run_theorem1_end_to_end",
    "Theorem1Report",
    "run_theorem3_sizes",
    "run_theorem3_decisions",
    "Theorem3Report",
    "conversion_rows",
    "render_conversion",
    "lockstep_check",
    "LockstepViolation",
    "run_program_selfstab",
    "run_protocol_selfstab",
    "SelfStabReport",
    "run_lemma4",
    "Lemma4Report",
    "enumerate_register_configurations",
    "observe_main_behaviour",
    "check_lemma4_case",
    "run_lemma15",
    "ElectionReport",
    "run_figure1",
    "Figure1Report",
    "run_figure2",
    "Figure2Report",
    "figure2_configurations",
    "run_figure4",
    "Figure4Report",
    "figure4_machine",
    "run_figures_lowering",
    "GadgetFacts",
    "analyse",
    "figure3_machine",
    "figure5_machine",
    "figure6_machine",
    "figure7_machine",
    "run_awareness",
    "AwarenessReport",
    "run_ablation",
    "run_convergence",
    "measure_convergence",
    "ConvergenceReport",
    "AblationReport",
    "run_transient_faults",
    "transient_fault_trial",
    "scheduler_family_probe",
    "TransientFaultReport",
    "FaultTrialOutcome",
    "SchedulerProbeRow",
    "run_churn_recovery",
    "churn_trial",
    "engine_churn_probe",
    "ChurnRecoveryReport",
    "ChurnTrialOutcome",
    "EngineProbeRow",
]
