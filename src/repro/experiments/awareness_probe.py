"""Experiment X1 — 1-awareness: baselines vs this paper's construction.

Two complementary probes:

* *Certificate states* (exact reachability): the unary and binary
  baselines have witness states that occur only above the threshold —
  they are 1-aware.
* *Poisoning* (the operational consequence): placing a single noise agent
  in a witness state of a 1-aware protocol forces acceptance below the
  threshold.  The paper's construction accepts only provisionally and
  keeps re-checking, so no single state can force acceptance — poisoning
  *any* state of a below-threshold population still stabilises to false
  (this is the ``C_N`` robustness of Section 8 in its smallest form).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional

from repro.analysis.awareness import (
    AwarenessProbe,
    PoisoningProbe,
    certificate_states_exact,
    poisoning_probe_exact,
    poisoning_probe_sampled,
)
from repro.baselines.binary import binary_threshold_protocol
from repro.baselines.unary import unary_threshold_protocol
from repro.core.multiset import Multiset
from repro.conversion.pipeline import PipelineResult, compile_threshold_protocol


@dataclass
class AwarenessReport:
    unary_certificates: AwarenessProbe
    binary_certificates: AwarenessProbe
    unary_poisoning: PoisoningProbe
    this_paper_poisoning: PoisoningProbe

    @property
    def baselines_are_aware(self) -> bool:
        return (
            self.unary_certificates.is_one_aware_evidence
            and self.binary_certificates.is_one_aware_evidence
        )

    @property
    def baseline_poisonable(self) -> bool:
        """The unary witness state forces acceptance below the threshold."""
        return not self.unary_poisoning.resistant

    @property
    def construction_resists_poisoning(self) -> bool:
        return self.this_paper_poisoning.resistant


def sample_poison_states(
    pipeline: PipelineResult, count: int, rng: random.Random
) -> List[object]:
    """A spread of candidate poison states: accepting (opinion-true)
    states, the OF-true pointer state, and random others."""
    states = sorted(pipeline.protocol.states, key=repr)
    accepting = [s for s in states if s in pipeline.protocol.accepting_states]
    chosen = [rng.choice(accepting)]
    of_true = [
        s
        for s in accepting
        if getattr(s.base, "pointer", None) == "OF" and s.base.value is True
    ]
    if of_true:
        chosen.append(of_true[0])
    while len(chosen) < count:
        candidate = rng.choice(states)
        if candidate not in chosen:
            chosen.append(candidate)
    return chosen


def run_awareness(
    k: int = 3,
    *,
    pipeline: Optional[PipelineResult] = None,
    seed: int = 0,
    poison_state_count: int = 5,
    max_interactions: int = 2_000_000,
    convergence_window: int = 80_000,
) -> AwarenessReport:
    rng = random.Random(seed)
    unary = unary_threshold_protocol(k)
    unary_certs = certificate_states_exact(
        unary,
        lambda x: Multiset({1: x}),
        below=range(1, k),
        above=range(k, k + 3),
    )
    binary_certs = certificate_states_exact(
        binary_threshold_protocol(k),
        lambda x: Multiset({"p0": x}),
        below=range(1, k),
        above=range(k, k + 3),
    )
    # Poison the unary protocol's witness state below the threshold.
    unary_poison = poisoning_probe_exact(
        unary, Multiset({1: k - 2 if k > 2 else 1}), states=[k]
    )
    if pipeline is None:
        pipeline = compile_threshold_protocol(1)
    initial = next(iter(pipeline.protocol.input_states))
    below = Multiset({initial: pipeline.shift})  # m = 0 < k_1 = 2 after shift
    ours_poison = poisoning_probe_sampled(
        pipeline.protocol,
        below,
        states=sample_poison_states(pipeline, poison_state_count, rng),
        seed=seed,
        max_interactions=max_interactions,
        convergence_window=convergence_window,
    )
    return AwarenessReport(
        unary_certificates=unary_certs,
        binary_certificates=binary_certs,
        unary_poisoning=unary_poison,
        this_paper_poisoning=ours_poison,
    )


if __name__ == "__main__":
    report = run_awareness()
    print("unary certificates:",
          sorted(map(repr, report.unary_certificates.certificate_states)))
    print("binary certificates:",
          sorted(map(repr, report.binary_certificates.certificate_states)))
    print("unary poisonable:", report.baseline_poisonable)
    print("construction resists poisoning:",
          report.construction_resists_poisoning)
