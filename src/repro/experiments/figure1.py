"""Experiment F1 — Figure 1: the worked example program (4 ≤ x < 7).

Rebuilds the figure's program verbatim and samples its decision for a
sweep of totals, including totals split across noise registers."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.core.predicates import Interval
from repro.experiments.report import render_table
from repro.programs.examples import figure1_program
from repro.programs.interpreter import decide_program


@dataclass
class Figure1Trial:
    initial: Dict[str, int]
    total: int
    expected: bool
    got: bool

    @property
    def correct(self) -> bool:
        return self.expected == self.got


@dataclass
class Figure1Report:
    trials: List[Figure1Trial]

    @property
    def correct(self) -> int:
        return sum(t.correct for t in self.trials)

    def render(self) -> str:
        header = ["initial registers", "m", "4 <= m < 7", "program output", "correct"]
        rows = [
            (str(t.initial), t.total, t.expected, t.got, t.correct)
            for t in self.trials
        ]
        return render_table(header, rows)


def run_figure1(
    *,
    seed: int = 0,
    quiet_window: int = 20_000,
    max_steps: int = 5_000_000,
) -> Figure1Report:
    program = figure1_program()
    predicate = Interval(4, 7)
    cases: List[Dict[str, int]] = [{"x": m} for m in range(1, 11)]
    cases += [
        {"x": 2, "y": 3, "z": 1},
        {"x": 1, "y": 1, "z": 3},
        {"x": 0, "y": 5, "z": 0},
        {"x": 3, "y": 0, "z": 2},
    ]
    trials = []
    for index, initial in enumerate(cases):
        total = sum(initial.values())
        got = decide_program(
            program,
            initial,
            seed=seed + index,
            quiet_window=quiet_window,
            max_steps=max_steps,
        )
        trials.append(
            Figure1Trial(
                initial=initial,
                total=total,
                expected=predicate.evaluate({"x": total}),
                got=got,
            )
        )
    return Figure1Report(trials)


if __name__ == "__main__":
    report = run_figure1()
    print(report.render())
    print(f"correct: {report.correct}/{len(report.trials)}")
