"""Experiment T1 — regenerate Table 1 (state complexity of thresholds).

The paper's Table 1 lists asymptotic bounds; the reproduction reports the
*measured* state counts of the four constructions on the threshold family
``k_n = threshold(n)``, verifying the claimed ordering

    classic Θ(k)  ≫  binary Θ(log k)  ≫  this paper Θ(log log k)

and that the leaderless Theorem 1 protocol matches the leader-assisted
size up to a constant factor (the paper's headline).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.analysis.state_complexity import Table1Row
from repro.experiments.report import render_table


@dataclass
class Table1Report:
    rows: List[Table1Row]

    def ordering_holds(self) -> bool:
        """For every row large enough to compare: unary > binary >
        this-paper growth (the latter checked as states ∈ O(n) via a
        per-level constant)."""
        counts = [row.this_paper_states for row in self.rows]
        increments = [b - a for a, b in zip(counts, counts[1:])]
        linear = len(set(increments[2:])) <= 1
        ordered = all(
            row.unary_states is None or row.unary_states > row.binary_states
            for row in self.rows
            if row.n >= 3
        )
        return linear and ordered

    def render(self) -> str:
        header = [
            "n",
            "k",
            "|phi|",
            "classic unary",
            "binary (BEJ)",
            "leader (bare Lipton)",
            "this paper (Thm 1)",
        ]
        rows = [
            (
                row.n,
                row.k,
                row.formula_size,
                row.unary_states,
                row.binary_states,
                row.leader_states,
                row.this_paper_states,
            )
            for row in self.rows
        ]
        return render_table(header, rows)


def run_table1(max_n: int = 6, *, jobs: int | str | None = None) -> Table1Report:
    """Regenerate Table 1; ``jobs`` fans the per-``n`` row constructions
    (each a full build-and-count of four protocol families) across a
    process pool.  Rows are deterministic, so parallel output is
    identical to sequential."""
    from repro.analysis.state_complexity import table1_row
    from repro.observability import spans as _spans
    from repro.runtime.pool import parallel_map

    with _spans.span("table1", max_n=max_n):
        rows = parallel_map(
            table1_row,
            [(n,) for n in range(1, max_n + 1)],
            jobs=jobs,
            span_labels=[f"row:n{n}" for n in range(1, max_n + 1)],
            paths=[("table1", n) for n in range(1, max_n + 1)],
        )
    return Table1Report(rows=rows)


if __name__ == "__main__":
    report = run_table1()
    print(report.render())
    print("\nasymptotic ordering holds:", report.ordering_holds())
