"""Experiment X2 — ablation: remove the §5.2 error-checking machinery.

The paper's central technical contribution over Lipton's counter is the
detect–restart error handling.  With it, adversarial initialisation is
harmless (Theorem 2); without it, the bare counter silently accepts or
rejects incorrectly.  This driver measures both failure rates."""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.robustness import AblationSummary, ablation_error_checks
from repro.experiments.report import render_table
from repro.lipton.levels import threshold


@dataclass
class AblationReport:
    n: int
    summary: AblationSummary

    @property
    def checks_help(self) -> bool:
        """With checks strictly more correct than without."""
        with_rate = self.summary.with_checks_correct / self.summary.with_checks_total
        without_rate = (
            self.summary.without_checks_correct / self.summary.without_checks_total
        )
        return with_rate > without_rate

    def render(self) -> str:
        header = ["variant", "correct", "total", "rate"]
        s = self.summary
        rows = [
            (
                "with error checks",
                s.with_checks_correct,
                s.with_checks_total,
                s.with_checks_correct / s.with_checks_total,
            ),
            (
                "without (bare Lipton)",
                s.without_checks_correct,
                s.without_checks_total,
                s.without_checks_correct / s.without_checks_total,
            ),
        ]
        return render_table(header, rows)


def run_ablation(
    n: int = 2,
    *,
    trials_per_total: int = 3,
    seed: int = 0,
    quiet_window: int = 30_000,
    max_steps: int = 10_000_000,
) -> AblationReport:
    k = threshold(n)
    totals = [max(1, k - 3), k - 1, k, k + 2, k + 6]
    summary = ablation_error_checks(
        n,
        totals,
        trials_per_total=trials_per_total,
        seed=seed,
        quiet_window=quiet_window,
        max_steps=max_steps,
    )
    return AblationReport(n=n, summary=summary)


if __name__ == "__main__":
    report = run_ablation()
    print(report.render())
    print("error checking helps:", report.checks_help)
