"""Experiment L15 — Lemma 15: leader election recovers pointer agents.

From random protocol configurations with at least ``|F|`` agents in the
initial state (plus arbitrary noise), the ⟨elect⟩ transitions funnel the
population into the π-image of an initial machine configuration."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.analysis.robustness import election_recovery_trial
from repro.experiments.report import render_table
from repro.programs.examples import simple_threshold_program
from repro.conversion.pipeline import PipelineResult, compile_program


@dataclass
class ElectionTrial:
    noise_agents: int
    initial_agents: int
    recovered_after: Optional[int]

    @property
    def recovered(self) -> bool:
        return self.recovered_after is not None


@dataclass
class ElectionReport:
    trials: List[ElectionTrial]

    @property
    def recovered(self) -> int:
        return sum(t.recovered for t in self.trials)

    def render(self) -> str:
        header = ["noise agents", "initial agents", "recovered after", "ok"]
        rows = [
            (t.noise_agents, t.initial_agents, t.recovered_after, t.recovered)
            for t in self.trials
        ]
        return render_table(header, rows)


def run_lemma15(
    *,
    pipeline: Optional[PipelineResult] = None,
    noise_levels: Optional[List[int]] = None,
    trials_per_level: int = 3,
    seed: int = 0,
    max_interactions: int = 500_000,
) -> ElectionReport:
    if pipeline is None:
        pipeline = compile_program(simple_threshold_program(2), "thr2")
    conversion = pipeline.conversion
    if noise_levels is None:
        noise_levels = [0, 3, 8, 15]
    trials: List[ElectionTrial] = []
    for level_index, noise in enumerate(noise_levels):
        for trial in range(trials_per_level):
            initial_agents = conversion.shift + trial  # >= |F|
            recovered = election_recovery_trial(
                conversion,
                noise_agents=noise,
                initial_agents=initial_agents,
                seed=seed + 100 * level_index + trial,
                max_interactions=max_interactions,
            )
            trials.append(
                ElectionTrial(
                    noise_agents=noise,
                    initial_agents=initial_agents,
                    recovered_after=recovered,
                )
            )
    return ElectionReport(trials)


if __name__ == "__main__":
    report = run_lemma15()
    print(report.render())
    print(f"recovered: {report.recovered}/{len(report.trials)}")
