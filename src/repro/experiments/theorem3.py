"""Experiment TH3 — Theorem 3: population programs of size O(n) decide
``m ≥ k_n`` with ``k_n ≥ 2^(2^(n-1))``.

Size side: the |Q| + L + S decomposition per n.  Behaviour side: sampled
program-level decisions across the threshold boundary (n ≤ 3 by default —
see DESIGN.md's simulation-scale notes)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.experiments.report import render_table
from repro.lipton.canonical import canonical_restart_policy
from repro.lipton.construction import build_threshold_program
from repro.lipton.construction import suggested_quiet_window
from repro.lipton.levels import double_exponential_lower_bound, threshold
from repro.programs.interpreter import decide_program
from repro.programs.size import ProgramSize, program_size


@dataclass
class Theorem3SizeRow:
    n: int
    k: int
    size: ProgramSize
    bound: int

    @property
    def bound_met(self) -> bool:
        return self.k >= self.bound


@dataclass
class Theorem3Report:
    rows: List[Theorem3SizeRow]

    def linear_size(self) -> bool:
        """O(n): the per-level size increment becomes exactly constant."""
        totals = [row.size.total for row in self.rows]
        increments = [b - a for a, b in zip(totals, totals[1:])]
        return len(set(increments[2:])) <= 1

    def render(self) -> str:
        header = ["n", "k", "|Q|", "L", "S", "total", "2^(2^(n-1))", "k >= bound"]
        rows = [
            (
                row.n,
                row.k,
                row.size.registers,
                row.size.instructions,
                row.size.swap_size,
                row.size.total,
                row.bound,
                row.bound_met,
            )
            for row in self.rows
        ]
        return render_table(header, rows)


def run_theorem3_sizes(max_n: int = 10) -> Theorem3Report:
    rows = []
    for n in range(1, max_n + 1):
        rows.append(
            Theorem3SizeRow(
                n=n,
                k=threshold(n),
                size=program_size(build_threshold_program(n)),
                bound=double_exponential_lower_bound(n),
            )
        )
    return Theorem3Report(rows)


@dataclass
class DecisionTrial:
    n: int
    total: int
    expected: bool
    got: bool

    @property
    def correct(self) -> bool:
        return self.expected == self.got


def run_theorem3_decisions(
    n: int,
    totals: Optional[List[int]] = None,
    *,
    seed: int = 0,
    quiet_window: int | None = None,
    max_steps: int = 50_000_000,
    jobs: int | str | None = None,
) -> List[DecisionTrial]:
    """Sample program decisions around the threshold boundary.

    ``jobs`` fans the per-total decisions across a process pool; each
    decision's seed is a pure function of its (n, total) path (replacing
    the collision-prone ``seed + index``), so parallel and sequential
    runs sample identical decisions.
    """
    from repro.runtime.pool import parallel_map
    from repro.runtime.seeds import derive_seed_path

    if quiet_window is None:
        quiet_window = suggested_quiet_window(n)
    k = threshold(n)
    if totals is None:
        totals = [max(1, k - 2), k - 1, k, k + 1, k + 5]
    tasks = [
        (
            n,
            total,
            derive_seed_path(seed, "theorem3", n, total),
            quiet_window,
            max_steps,
        )
        for total in totals
    ]
    return parallel_map(
        decide_threshold_task,
        tasks,
        jobs=jobs,
        paths=[("theorem3", n, total) for total in totals],
    )


def decide_threshold_task(
    n: int, total: int, seed: int, quiet_window: int, max_steps: int
) -> DecisionTrial:
    """One boundary decision (module-level so the pool can pickle it by
    reference).  The program and restart policy are rebuilt per process —
    the canonical policy closes over a local chooser and cannot cross a
    pickle boundary — and memoised for the worker's lifetime."""
    program, policy = _threshold_artifacts(n)
    got = decide_program(
        program,
        {"x1": total},
        seed=seed,
        restart_policy=policy,
        quiet_window=quiet_window,
        max_steps=max_steps,
    )
    return DecisionTrial(n=n, total=total, expected=total >= threshold(n), got=got)


_ARTIFACTS: dict = {}


def _threshold_artifacts(n: int):
    if n not in _ARTIFACTS:
        _ARTIFACTS[n] = (build_threshold_program(n), canonical_restart_policy(n))
    return _ARTIFACTS[n]


if __name__ == "__main__":
    print(run_theorem3_sizes().render())
    for n in (1, 2, 3):
        trials = run_theorem3_decisions(n)
        status = "OK" if all(t.correct for t in trials) else "MISMATCH"
        print(f"n={n}: {[(t.total, t.got) for t in trials]} -> {status}")
