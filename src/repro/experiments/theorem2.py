"""Experiment TH2 — Theorem 2 / Definition 7: almost self-stabilisation.

Program level: the Section 6 program from uniformly random (fully
adversarial) register configurations must still stabilise to
``m ≥ threshold(n)``.  Protocol level: the converted protocol seeded with
arbitrary noise agents plus enough initial-state agents must stabilise to
``φ'(|C|)``."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.analysis.robustness import (
    TrialOutcome,
    program_selfstab_trial,
    protocol_selfstab_trial,
)
from repro.core.predicates import ShiftedThreshold, Threshold
from repro.experiments.report import render_table
from repro.lipton.construction import suggested_quiet_window
from repro.lipton.levels import threshold
from repro.conversion.pipeline import PipelineResult, compile_threshold_protocol


@dataclass
class SelfStabReport:
    outcomes: List[TrialOutcome]

    @property
    def correct(self) -> int:
        return sum(outcome.correct for outcome in self.outcomes)

    @property
    def total(self) -> int:
        return len(self.outcomes)

    def render(self) -> str:
        header = ["total agents", "expected", "stabilised to", "correct"]
        rows = [
            (o.total, o.expected, o.got, o.correct) for o in self.outcomes
        ]
        return render_table(header, rows)


def run_program_selfstab(
    n: int = 2,
    *,
    totals: List[int] | None = None,
    trials_per_total: int = 3,
    seed: int = 0,
    quiet_window: int | None = None,
    max_steps: int = 20_000_000,
) -> SelfStabReport:
    if quiet_window is None:
        quiet_window = suggested_quiet_window(n)
    k = threshold(n)
    if totals is None:
        totals = [max(1, k - 3), k - 1, k, k + 2, k + 7]
    outcomes = []
    for index, total in enumerate(totals):
        for trial in range(trials_per_total):
            outcomes.append(
                program_selfstab_trial(
                    n,
                    total,
                    seed=seed + 1000 * index + trial,
                    quiet_window=quiet_window,
                    max_steps=max_steps,
                )
            )
    return SelfStabReport(outcomes)


def run_protocol_selfstab(
    *,
    pipeline: PipelineResult | None = None,
    cases: List[tuple] | None = None,
    seed: int = 0,
    max_interactions: int = 30_000_000,
    convergence_window: int = 300_000,
) -> SelfStabReport:
    """Definition 7 on the n=1 protocol: noise + (≥ |F|) initial agents.

    ``cases`` is a list of ``(noise_agents, initial_agents)`` pairs; the
    default exercises one rejecting and one accepting population.  Accepting
    populations need the large default budgets (see run_theorem1_end_to_end).
    """
    if pipeline is None:
        pipeline = compile_threshold_protocol(1)
    k = threshold(1)
    predicate = ShiftedThreshold(Threshold(k), pipeline.shift)

    def phi(total: int) -> bool:
        return predicate.evaluate({"x": total})

    if cases is None:
        # Rejecting populations with noise (totals |F|+1 and |F|+1 with
        # noise spread differently).  The accepting side of Definition 7
        # is exercised by run_theorem1_end_to_end (same protocol, no
        # noise) and by the thr2-pipeline test in tests/analysis — an
        # accepting lipton-n1 run *with* noise needs tens of millions of
        # interactions, beyond a benchmark's budget.
        # (Definition 7 needs >= |F| initial agents, and rejection needs
        # total <= |F| + k - 1 = |F| + 1, so exactly one default case.)
        cases = [(1, pipeline.shift)]
    outcomes = []
    for index, (noise_agents, initial_agents) in enumerate(cases):
        outcomes.append(
            protocol_selfstab_trial(
                pipeline,
                phi,
                noise_agents=noise_agents,
                initial_agents=initial_agents,
                seed=seed + index,
                max_interactions=max_interactions,
                convergence_window=convergence_window,
            )
        )
    return SelfStabReport(outcomes)


if __name__ == "__main__":
    report = run_program_selfstab()
    print(report.render())
    print(f"program level: {report.correct}/{report.total} correct")
