"""Plain-text table rendering for experiment reports."""

from __future__ import annotations

from typing import Iterable, List, Sequence


def render_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render a fixed-width text table (right-aligned numbers)."""
    materialised: List[List[str]] = [[str(h) for h in headers]]
    for row in rows:
        materialised.append([_fmt(cell) for cell in row])
    widths = [
        max(len(r[col]) for r in materialised)
        for col in range(len(materialised[0]))
    ]
    lines = []
    for index, row in enumerate(materialised):
        line = "  ".join(cell.rjust(width) for cell, width in zip(row, widths))
        lines.append(line)
        if index == 0:
            lines.append("  ".join("-" * width for width in widths))
    return "\n".join(lines)


def _fmt(cell: object) -> str:
    if isinstance(cell, bool):
        return "yes" if cell else "no"
    if isinstance(cell, float):
        return f"{cell:.2f}"
    if isinstance(cell, int) and abs(cell) >= 10**15:
        return f"{cell:.3e}"
    if cell is None:
        return "-"
    return str(cell)
