"""Experiment F2 — Figure 2: example configurations of each type.

Figure 2 sketches, for a level i, one example each of an i-proper, weakly
i-proper, i-low, i-high and i-empty configuration.  We materialise the
figure's register patterns (for i = 3, where N_i = 25 accommodates the
figure's offsets 3 and 7) and check that the classifier of
:mod:`repro.lipton.classify` assigns exactly the claimed types."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.experiments.report import render_table
from repro.lipton.classify import (
    is_i_empty,
    is_i_high,
    is_i_low,
    is_i_proper,
    is_weakly_i_proper,
)
from repro.lipton.levels import level_constant, x, xbar, y, ybar


def _proper_prefix(i: int) -> Dict[str, int]:
    config: Dict[str, int] = {}
    for j in range(1, i):
        nj = level_constant(j)
        config[xbar(j)] = nj
        config[ybar(j)] = nj
    return config


def figure2_configurations(i: int = 3) -> Dict[str, Dict[str, int]]:
    """The five example rows of Figure 2, for level ``i`` (default 3 so
    the figure's offsets 3 and 7 fit below N_i)."""
    ni = level_constant(i)
    if ni <= 7:
        raise ValueError("need N_i > 7 to reproduce the figure's offsets")
    rows: Dict[str, Dict[str, int]] = {}

    proper = _proper_prefix(i)
    proper.update({xbar(i): ni, ybar(i): ni})
    rows["i-proper"] = proper

    weakly = _proper_prefix(i)
    weakly.update({x(i): 3, xbar(i): ni - 3, y(i): ni - 7, ybar(i): 7})
    rows["weakly i-proper"] = weakly

    low = _proper_prefix(i)
    low.update({xbar(i): ni - 3, ybar(i): ni})
    rows["i-low"] = low

    high = _proper_prefix(i)
    high.update({x(i): 3, xbar(i): ni, y(i): 7, ybar(i): ni - 5})
    rows["i-high"] = high

    # i-empty: junk below level i, nothing at level i or above.
    empty = {
        x(1): 2, xbar(1): 4, y(1): 8, ybar(1): 3,
    }
    if i >= 3:
        empty.update({x(2): 5, xbar(2): 3, ybar(2): 7})
    rows["i-empty"] = empty
    return rows


@dataclass
class Figure2Row:
    label: str
    config: Dict[str, int]
    i_proper: bool
    weakly: bool
    low: bool
    high: bool
    empty: bool

    def matches(self) -> bool:
        expectations = {
            "i-proper": self.i_proper and self.weakly and not self.low and not self.high,
            "weakly i-proper": self.weakly and not self.i_proper,
            "i-low": self.low and not self.high and not self.i_proper,
            "i-high": self.high and not self.low and not self.i_proper,
            "i-empty": self.empty,
        }
        return expectations[self.label]


@dataclass
class Figure2Report:
    i: int
    n: int
    rows: List[Figure2Row]

    @property
    def all_match(self) -> bool:
        return all(row.matches() for row in self.rows)

    def render(self) -> str:
        header = ["example", "proper", "weakly", "low", "high", "empty", "matches"]
        rows = [
            (r.label, r.i_proper, r.weakly, r.low, r.high, r.empty, r.matches())
            for r in self.rows
        ]
        return render_table(header, rows)


def run_figure2(i: int = 3, n: int = 3) -> Figure2Report:
    configs = figure2_configurations(i)
    rows = []
    for label, config in configs.items():
        rows.append(
            Figure2Row(
                label=label,
                config=config,
                i_proper=is_i_proper(config, i),
                weakly=is_weakly_i_proper(config, i),
                low=is_i_low(config, i),
                high=is_i_high(config, i),
                empty=is_i_empty(config, i, n),
            )
        )
    return Figure2Report(i=i, n=n, rows=rows)


if __name__ == "__main__":
    report = run_figure2()
    print(report.render())
    print("all examples classified as in the figure:", report.all_match)
