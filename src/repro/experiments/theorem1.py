"""Experiment TH1 — Theorem 1: O(n) states decide k ≥ 2^(2^(n-1)).

Two parts: (a) the *size* side — build the full pipeline for a sweep of n
and verify states grow linearly while k grows double-exponentially;
(b) the *behaviour* side — for small n, sample end-to-end decisions of the
final broadcast protocol around its threshold ``k_n + |F|``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.analysis.state_complexity import Theorem1Datum, theorem1_data
from repro.core.multiset import Multiset
from repro.core.simulation import simulate
from repro.experiments.report import render_table
from repro.lipton.levels import threshold
from repro.conversion.pipeline import PipelineResult


@dataclass
class Theorem1Report:
    data: List[Theorem1Datum]

    def linear_states(self) -> bool:
        """O(n) growth: the per-level state increment becomes constant."""
        counts = [d.states for d in self.data]
        increments = [b - a for a, b in zip(counts, counts[1:])]
        return len(set(increments[2:])) <= 1

    def double_exponential(self) -> bool:
        return all(d.bound_met for d in self.data)

    def render(self) -> str:
        header = ["n", "k", "states |Q'|", "states/n", "2^(2^(n-1))", "k >= bound"]
        rows = [
            (d.n, d.k, d.states, d.states_per_level, d.double_exponential_bound, d.bound_met)
            for d in self.data
        ]
        return render_table(header, rows)


def run_theorem1_sizes(max_n: int = 8) -> Theorem1Report:
    return Theorem1Report(data=theorem1_data(max_n))


@dataclass
class EndToEndTrial:
    population: int
    expected: bool
    verdict: Optional[bool]
    interactions: int


def run_theorem1_end_to_end(
    *,
    seed: int = 0,
    max_interactions: int = 30_000_000,
    convergence_window: int = 300_000,
    pipeline: Optional[PipelineResult] = None,
    offsets: tuple = (-1, 0),
    jobs: int | str | None = None,
) -> List[EndToEndTrial]:
    """Sample the n=1 protocol's decisions just below / at its shifted
    threshold ``k_1 + |F|``.

    ``jobs`` fans the per-offset runs across a process pool (the compiled
    protocol ships to workers stripped of its transition table, which
    they recover from the artifact cache rather than recompiling).

    Budget note: under true pairwise scheduling the detect primitive
    answers *false* with probability ≈ (m-1)/m per encounter, so accepting
    runs need hundreds of thousands of interactions (measured ~260-400k);
    the convergence window must exceed the longest all-false stretch."""
    if pipeline is None:
        from repro.runtime.cache import cached_compile_threshold_protocol

        pipeline = cached_compile_threshold_protocol(1)
    shift = pipeline.shift
    k = threshold(1)
    initial_state = next(iter(pipeline.protocol.input_states))
    from repro.runtime.pool import parallel_map

    tasks = [
        (
            pipeline.protocol,
            initial_state,
            shift + k + offset,
            shift,
            k,
            seed + offset,
            max_interactions,
            convergence_window,
        )
        for offset in offsets
    ]
    return parallel_map(
        end_to_end_task,
        tasks,
        jobs=jobs,
        paths=[("theorem1", offset) for offset in offsets],
    )


def end_to_end_task(
    protocol,
    initial_state,
    population: int,
    shift: int,
    k: int,
    seed: int,
    max_interactions: int,
    convergence_window: int,
) -> EndToEndTrial:
    """One end-to-end simulation (module-level so the pool can pickle it
    by reference)."""
    result = simulate(
        protocol,
        Multiset({initial_state: population}),
        seed=seed,
        max_interactions=max_interactions,
        convergence_window=convergence_window,
    )
    return EndToEndTrial(
        population=population,
        expected=population - shift >= k,
        verdict=result.verdict,
        interactions=result.interactions,
    )


if __name__ == "__main__":
    report = run_theorem1_sizes()
    print(report.render())
    print("linear state growth:", report.linear_states())
    print("double-exponential thresholds:", report.double_exponential())
