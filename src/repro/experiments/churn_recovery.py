"""Experiment X5 — churn recovery: self-stabilisation of the Theorem 3
construction under a *dynamic* population.

Experiment X4 (:mod:`repro.experiments.transient_faults`) corrupts
registers while the total agent count stays fixed.  This experiment
lifts the fixed-``n`` assumption entirely: a seeded
:class:`~repro.resilience.ChurnProcess` lets agents join and leave
mid-run, so the quantity the program is *counting* drifts while the
computation is in flight.  The §5.2 error-checking machinery
(AssertEmpty / AssertProper + restart) detects the resulting
inconsistencies and restarts against the *live* population, converging
to the verdict for the post-churn total; the assertion-stripped variant
(``error_checking=False``) silently carries stale counts and its
recovery rate is measurably lower.  The headline number is
``churn.recovery_gap`` — the difference between the two recovery rates.

Ground truth is judged against the population *after* churn: each trial
compares the stabilised output with ``final_total ≥ threshold(n)``,
where ``final_total`` is read back from the run's final registers
(agent counts are conserved by program steps and by restarts, so the
final total is exactly ``initial + joined − departed``).

A protocol-level probe rides along: the same churn plan applied to the
binary-threshold baseline under every engine family — legacy
schedulers, both fastpath loops, and the batched engine (which runs
population-only plans natively at batch barriers) — demonstrating that
dynamic populations are deterministic and invariant-preserving
end-to-end.  Plain protocols promise nothing under churn, so the probe
reports outcomes rather than asserting recovery.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.experiments.report import render_table
from repro.lipton.canonical import canonical_restart_policy
from repro.lipton.construction import build_threshold_program, suggested_quiet_window
from repro.lipton.levels import threshold
from repro.programs.interpreter import run_program
from repro.resilience import ChurnProcess, FaultPlan


@dataclass
class ChurnTrialOutcome:
    """One churn trial: stabilised verdict vs post-churn ground truth."""

    n: int
    total: int
    final_total: int
    error_checking: bool
    expected: bool
    got: Optional[bool]

    @property
    def correct(self) -> bool:
        return self.got is not None and self.got == self.expected


def default_churn_plan(
    *,
    start: int = 20_000,
    length: int = 200_000,
    join_rate: float = 5e-5,
    leave_rate: float = 5e-5,
    state: str = "x1",
) -> FaultPlan:
    """The standard workload: one sustained churn window with matched
    arrival/departure rates.  Joins land in the input register ``x1``
    (new agents arrive uninitialised-but-counted, exactly like fresh
    input); departures are occupancy-weighted across all registers."""
    return FaultPlan(
        [
            ChurnProcess(
                at=start,
                length=length,
                join_rate=join_rate,
                leave_rate=leave_rate,
                state=state,
            )
        ]
    )


def churn_trial(
    n: int,
    total: int,
    *,
    seed: int,
    error_checking: bool = True,
    churn_plan: Optional[FaultPlan] = None,
    quiet_window: Optional[int] = None,
    max_steps: int = 20_000_000,
    program=None,
) -> ChurnTrialOutcome:
    """Run the n-level program from ``x1 = total`` under sustained churn
    and compare the stabilised output with ``final_total ≥ threshold(n)``.

    Every join/leave event re-opens the interpreter's quiet window, so a
    returned verdict certifies stabilisation *after* churn subsides."""
    if quiet_window is None:
        quiet_window = suggested_quiet_window(n)
    if churn_plan is None:
        churn_plan = default_churn_plan()
    if program is None:
        program = build_threshold_program(n, error_checking=error_checking)

    def stop(state) -> bool:
        return state.quiet_steps >= quiet_window

    result = run_program(
        program,
        {"x1": total},
        seed=seed,
        restart_policy=canonical_restart_policy(n),
        max_steps=max_steps,
        stop_condition=stop,
        faults=churn_plan,
    )
    stabilised = (
        result.hung or result.quiet_steps >= quiet_window or result.main_returned
    )
    return ChurnTrialOutcome(
        n=n,
        total=total,
        final_total=result.total,
        error_checking=error_checking,
        expected=result.total >= threshold(n),
        got=result.output if stabilised else None,
    )


_ARTIFACTS: dict = {}


def _program_for(n: int, error_checking: bool):
    key = (n, error_checking)
    if key not in _ARTIFACTS:
        _ARTIFACTS[key] = build_threshold_program(n, error_checking=error_checking)
    return _ARTIFACTS[key]


def churn_recovery_task(
    n: int,
    total: int,
    error_checking: bool,
    seed: int,
    quiet_window: int,
    max_steps: int,
    plan_args: Dict[str, float],
) -> ChurnTrialOutcome:
    """One trial, module-level so :func:`repro.runtime.pool.parallel_map`
    can pickle it by reference; programs are memoised per worker."""
    return churn_trial(
        n,
        total,
        seed=seed,
        error_checking=error_checking,
        churn_plan=default_churn_plan(**plan_args),
        quiet_window=quiet_window,
        max_steps=max_steps,
        program=_program_for(n, error_checking),
    )


@dataclass
class EngineProbeRow:
    """Protocol-level probe: one engine family under the churn plan."""

    family: str
    verdict: Optional[bool]
    population_before: int
    population_after: int
    joined: int
    departed: int
    interactions: int


@dataclass
class ChurnRecoveryReport:
    """X5 headline numbers (see :meth:`render` for the table shape)."""

    n: int
    with_checks_correct: int
    with_checks_total: int
    without_checks_correct: int
    without_checks_total: int
    probes: List[EngineProbeRow] = field(default_factory=list)

    @property
    def with_checks_rate(self) -> float:
        return self.with_checks_correct / max(1, self.with_checks_total)

    @property
    def without_checks_rate(self) -> float:
        return self.without_checks_correct / max(1, self.without_checks_total)

    @property
    def recovery_gap(self) -> float:
        """How much the error checks buy under churn (rate difference)."""
        return self.with_checks_rate - self.without_checks_rate

    @property
    def checks_help(self) -> bool:
        """Full construction strictly more churn-tolerant than stripped."""
        return self.recovery_gap > 0

    def render(self) -> str:
        header = ["variant", "recovered", "total", "rate"]
        rows = [
            (
                "with error checks",
                self.with_checks_correct,
                self.with_checks_total,
                round(self.with_checks_rate, 3),
            ),
            (
                "without (bare Lipton)",
                self.without_checks_correct,
                self.without_checks_total,
                round(self.without_checks_rate, 3),
            ),
        ]
        table = render_table(header, rows)
        table += f"\n\nrecovery gap: {self.recovery_gap:+.3f}"
        if self.probes:
            header2 = [
                "engine family",
                "verdict",
                "pop before",
                "pop after",
                "joined",
                "departed",
                "interactions",
            ]
            rows2 = [
                (
                    p.family,
                    p.verdict,
                    p.population_before,
                    p.population_after,
                    p.joined,
                    p.departed,
                    p.interactions,
                )
                for p in self.probes
            ]
            table += "\n\nprotocol-level probe (binary threshold, churned):\n"
            table += render_table(header2, rows2)
        return table


def engine_churn_probe(
    *, k: int = 5, population: int = 40, seed: int = 11
) -> List[EngineProbeRow]:
    """Run one churned simulation per engine family on the
    binary-threshold baseline and report the (deterministic) outcomes.

    The plan mixes discrete joins/leaves with a rate-driven churn
    window, so this exercises the resize paths of the legacy loop, both
    fastpath loops (``EnabledIndex.grow``/``shrink``), and the batched
    engine's between-batch barrier firing in a single sweep."""
    from repro.baselines.binary import binary_threshold_protocol
    from repro.core.batched import BatchedScheduler
    from repro.core.fastpath import FastEnabledScheduler, FastUniformScheduler
    from repro.core.multiset import Multiset
    from repro.core.scheduler import (
        EnabledTransitionScheduler,
        UniformPairScheduler,
    )
    from repro.core.simulation import simulate
    from repro.resilience import JoinAgents, LeaveAgents

    protocol = binary_threshold_protocol(k)
    config = Multiset({"p0": population})
    plan = FaultPlan(
        [
            JoinAgents(at=60, agents=3, state="p0"),
            LeaveAgents(at=150, agents=2),
            ChurnProcess(
                at=300,
                length=3_000,
                join_rate=2e-3,
                leave_rate=2e-3,
                state="p0",
            ),
        ]
    )
    families = [
        ("fast_enabled", FastEnabledScheduler()),
        ("fast_uniform", FastUniformScheduler()),
        ("legacy_enabled", EnabledTransitionScheduler()),
        ("legacy_uniform", UniformPairScheduler()),
        ("batched", BatchedScheduler()),
    ]
    rows = []
    for name, scheduler in families:
        result = simulate(
            protocol,
            config,
            seed=seed,
            scheduler=scheduler,
            faults=plan,
            max_interactions=500_000,
        )
        rows.append(
            EngineProbeRow(
                family=name,
                verdict=result.verdict,
                population_before=population,
                population_after=result.population,
                joined=result.joined,
                departed=result.departed,
                interactions=result.interactions,
            )
        )
    return rows


def run_churn_recovery(
    n: int = 2,
    *,
    trials_per_total: int = 3,
    seed: int = 0,
    quiet_window: int = 30_000,
    max_steps: int = 10_000_000,
    churn_start: int = 20_000,
    churn_length: int = 200_000,
    join_rate: float = 5e-5,
    leave_rate: float = 5e-5,
    jobs: Optional[int | str] = None,
    probe: bool = True,
) -> ChurnRecoveryReport:
    """The X5 driver: boundary totals × both variants × several trials,
    fanned across the pool, plus the protocol-level engine probe.

    Per-trial seeds are pure functions of the (variant, total, trial)
    path, so parallel and sequential runs sample identical trials."""
    from repro.runtime.pool import parallel_map
    from repro.runtime.seeds import derive_seed_path

    k = threshold(n)
    totals = [max(1, k - 3), k - 1, k, k + 2, k + 6]
    plan_args = {
        "start": churn_start,
        "length": churn_length,
        "join_rate": join_rate,
        "leave_rate": leave_rate,
    }
    tasks = []
    paths = []
    for error_checking in (True, False):
        for total in totals:
            for trial in range(trials_per_total):
                tasks.append(
                    (
                        n,
                        total,
                        error_checking,
                        derive_seed_path(
                            seed, "churn", int(error_checking), total, trial
                        ),
                        quiet_window,
                        max_steps,
                        plan_args,
                    )
                )
                paths.append(("churn", int(error_checking), total, trial))
    outcomes: List[ChurnTrialOutcome] = parallel_map(
        churn_recovery_task, tasks, jobs=jobs, paths=paths
    )
    tallies: Dict[bool, Tuple[int, int]] = {True: (0, 0), False: (0, 0)}
    for outcome in outcomes:
        correct, total_count = tallies[outcome.error_checking]
        tallies[outcome.error_checking] = (
            correct + outcome.correct,
            total_count + 1,
        )
    return ChurnRecoveryReport(
        n=n,
        with_checks_correct=tallies[True][0],
        with_checks_total=tallies[True][1],
        without_checks_correct=tallies[False][0],
        without_checks_total=tallies[False][1],
        probes=engine_churn_probe() if probe else [],
    )


if __name__ == "__main__":
    report = run_churn_recovery()
    print(report.render())
    print("error checking helps under churn:", report.checks_help)
