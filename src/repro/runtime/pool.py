"""Process-pool execution engine for independent simulation tasks.

Three layers, all sharing the same determinism contract (task results
depend only on the task's own inputs and its seed-tree seed, never on
worker scheduling):

* :func:`resolve_jobs` — the single interpretation of a ``jobs``
  argument.  ``jobs=1`` is *the sequential path*: no pool, no pickling,
  bit-identical to the pre-parallel code.  ``jobs=None`` defers to the
  ``REPRO_JOBS`` environment variable (default 1) so whole experiment
  sweeps — and the test suite — can be switched to parallel execution
  without touching call sites.  ``jobs=0`` means "all cores".
* :func:`parallel_map` — deterministic fan-out of ``fn(*task)`` over a
  task list; results are assembled in task order, so the output is
  exactly ``[fn(*t) for t in tasks]`` regardless of completion order.
* :func:`decide_parallel` — the parallel core of
  :func:`repro.core.simulation.decide`: all attempts launch concurrently,
  the verdict is the *lowest-indexed* attempt that stabilised (the same
  attempt sequential execution would have returned, preserving
  ``jobs=1``/``jobs=N`` result equality), and once that attempt resolves
  every not-yet-started attempt is cancelled.

Workers run with their own :class:`~repro.observability.metrics.Metrics`
registry; completed attempts ship it back (as a plain dict) and the
parent merges it into any :class:`MetricsObserver` reachable from the
caller's observer, so ``python -m repro stats`` and the benchmark JSON
report the work that actually happened, wherever it happened.

The pool is *hardened* (see :mod:`repro.resilience` for the fault side
of the story): crashed workers trigger bounded retries with exponential
backoff and deterministic jitter, hung workers are SIGTERM'd after a
caller-chosen ``timeout``, and when the pool cannot be trusted at all
execution degrades to the sequential in-process path — identical seeds,
identical verdict, just slower.  A wall-clock ``deadline`` bounds whole
calls; crossing it raises :class:`~repro.core.errors.NonConvergenceError`.

Start method: ``fork`` where the platform offers it (workers inherit the
parent's warmed :mod:`~repro.runtime.cache` for free), else the platform
default; override with ``REPRO_START_METHOD``.  Workers pin their own
``REPRO_JOBS`` to 1, so a parallelised driver calling another
parallelisable function never fans out a pool inside a pool.
"""

from __future__ import annotations

import multiprocessing
import os
import random
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeout
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.errors import NonConvergenceError
from repro.core.multiset import Multiset
from repro.core.protocol import PopulationProtocol
from repro.core.simulation import derive_seed, simulate
from repro.observability import spans as _spans
from repro.observability.observer import CompositeObserver, Observer, live
from repro.runtime.cache import artifact_cache, cached_transition_table
from repro.runtime.ledger import TaskLedger, resolve_ledger, task_key
from repro.runtime.seeds import derive_child


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """Normalise a ``jobs`` argument to a worker count ≥ 1 (see module
    docstring for the ``None``/``0`` conventions)."""
    if jobs is None:
        raw = os.environ.get("REPRO_JOBS", "").strip()
        try:
            jobs = int(raw) if raw else 1
        except ValueError:
            jobs = 1
    if jobs == 0:
        jobs = os.cpu_count() or 1
    return max(1, int(jobs))


def resolve_dispatch(jobs: Any = None) -> Tuple[str, Any]:
    """Interpret a ``jobs`` argument as an execution target.

    Returns ``("local", n)`` for an in-process pool of ``n`` workers, or
    ``("distributed", "host:port")`` when ``jobs`` (or the ``REPRO_JOBS``
    environment variable) names a coordinator address — the one switch
    that turns every ``--jobs``-aware entry point into a distributed one
    without touching call sites.
    """
    if jobs is None:
        raw = os.environ.get("REPRO_JOBS", "").strip()
        if ":" in raw:
            return ("distributed", raw)
        return ("local", resolve_jobs(None))
    if isinstance(jobs, str):
        text = jobs.strip()
        if ":" in text:
            return ("distributed", text)
        try:
            return ("local", resolve_jobs(int(text) if text else None))
        except ValueError:
            return ("local", 1)
    return ("local", resolve_jobs(jobs))


def _start_method() -> str:
    preferred = os.environ.get("REPRO_START_METHOD")
    available = multiprocessing.get_all_start_methods()
    if preferred and preferred in available:
        return preferred
    return "fork" if "fork" in available else available[0]


def _worker_init() -> None:
    # A worker is a leaf of the fan-out tree: anything it calls that
    # consults REPRO_JOBS must run sequentially rather than nest pools.
    os.environ["REPRO_JOBS"] = "1"


def _executor(jobs: int, tasks: int) -> ProcessPoolExecutor:
    return ProcessPoolExecutor(
        max_workers=max(1, min(jobs, tasks)),
        mp_context=multiprocessing.get_context(_start_method()),
        initializer=_worker_init,
    )


def _terminate_pool(executor: ProcessPoolExecutor) -> None:
    """Abandon a pool whose workers can no longer be trusted (crashed or
    hung): cancel everything pending without waiting, then SIGTERM any
    worker still alive so a wedged child cannot outlive the call."""
    # Snapshot the workers first: shutdown() nulls out ``_processes`` even
    # with ``wait=False`` (and a broken pool may have nulled it already).
    procs = list((getattr(executor, "_processes", None) or {}).values())
    executor.shutdown(wait=False, cancel_futures=True)
    for proc in procs:
        try:
            proc.terminate()
        except Exception:
            pass
    for proc in procs:
        try:
            proc.join(timeout=1.0)
        except Exception:
            pass
    # SIGTERM may be masked or ignored (dispositions survive fork); a
    # worker that shrugged it off gets the non-negotiable SIGKILL.
    for proc in procs:
        try:
            if proc.is_alive():
                proc.kill()
                proc.join(timeout=1.0)
        except Exception:
            pass


_UNSET = object()

#: Sentinel: "journalling already handled upstream — do not re-resolve
#: REPRO_LEDGER_DIR" (used by the ledgered path's inner pooled call).
_LEDGER_OFF = object()


def _traced_task(fn: Callable[..., Any], label: str, args: Tuple[Any, ...]) -> Dict[str, Any]:
    """Run one task under a fresh span tracer and ship the spans with the
    result.  Module-level so it is picklable; also used for the in-process
    degraded rerun so every traced result has the same envelope."""
    tracer = _spans.SpanTracer()
    with _spans.activate(tracer):
        with tracer.span(label):
            result = fn(*args)
    return {"__spans__": tracer.to_payload(), "result": result}


def parallel_map(
    fn: Callable[..., Any],
    tasks: Iterable[Sequence[Any]],
    *,
    jobs: Any = None,
    timeout: Optional[float] = None,
    span_labels: Optional[Sequence[str]] = None,
    paths: Optional[Sequence[Sequence[Any]]] = None,
    ledger: Optional[TaskLedger] = None,
) -> List[Any]:
    """``[fn(*t) for t in tasks]``, fanned across a process pool.

    ``fn`` must be a module-level callable and every task argument (and
    result) picklable.  With ``jobs=1`` (or a single task) no pool is
    created and the comprehension runs verbatim in-process.  When
    ``jobs`` (or ``REPRO_JOBS``) is a ``"host:port"`` string the whole
    call routes to :func:`repro.runtime.distributed.distributed_map` on
    the cluster at that address — same results, different hardware.

    When a span tracer is active in the caller, every task runs under its
    own span — ``span_labels[i]`` or ``task:<i>`` — and spans created in
    workers are shipped back and adopted in task order, so the merged
    span tree is identical for ``jobs=1`` and ``jobs=N``.  Without an
    active tracer nothing changes (workers run ``fn`` directly).

    ``paths`` names each task by its deterministic seed-tree path (for
    ledger keys and distributed re-dispatch).  A :class:`TaskLedger` —
    explicit, or opened under ``REPRO_LEDGER_DIR`` — makes the call
    resumable: journalled tasks return their recorded results without
    re-execution, fresh completions are journalled as they land.

    The fan-out degrades rather than fails: if the pool breaks (a worker
    crashed) or a task exceeds ``timeout`` seconds, surviving results are
    harvested, the pool is torn down, and every unfinished task runs
    sequentially in-process — same results, just slower.  Exceptions
    *raised by* ``fn`` are not failures of the pool and propagate as
    usual.
    """
    tasks = [tuple(t) for t in tasks]
    if paths is not None:
        paths = [tuple(p) for p in paths]
        if len(paths) != len(tasks):
            raise ValueError("paths must match tasks in length")
    mode, target = resolve_dispatch(jobs)
    if mode == "distributed":
        from repro.runtime.distributed import distributed_map

        return distributed_map(
            fn, tasks, addr=target, span_labels=span_labels, paths=paths, ledger=ledger
        )
    jobs = target
    tracer = _spans.current()
    labels = None
    if tracer is not None:
        labels = (
            [str(l) for l in span_labels]
            if span_labels is not None
            else [f"task:{i}" for i in range(len(tasks))]
        )
        if len(labels) != len(tasks):
            raise ValueError("span_labels must match tasks in length")
    if ledger is _LEDGER_OFF:
        ledger = None
    else:
        ledger = resolve_ledger(
            fn,
            paths if paths is not None else [("task", i) for i in range(len(tasks))],
            tasks,
            ledger=ledger,
        )
    if ledger is not None:
        return _ledgered_map(
            fn,
            tasks,
            paths=paths,
            jobs=jobs,
            timeout=timeout,
            tracer=tracer,
            labels=labels,
            ledger=ledger,
        )
    if jobs <= 1 or len(tasks) <= 1:
        if labels is None:
            return [fn(*t) for t in tasks]
        out: List[Any] = []
        for label, t in zip(labels, tasks):
            with tracer.span(label):
                out.append(fn(*t))
        return out

    def _run(i: int) -> Any:
        """In-process execution of task ``i`` (sequential / degraded)."""
        if labels is None:
            return fn(*tasks[i])
        return _traced_task(fn, labels[i], tasks[i])

    def _submit(executor: ProcessPoolExecutor, i: int) -> Any:
        if labels is None:
            return executor.submit(fn, *tasks[i])
        return executor.submit(_traced_task, fn, labels[i], tasks[i])

    results: List[Any] = [_UNSET] * len(tasks)
    executor = _executor(jobs, len(tasks))
    degraded = False
    try:
        futures = [_submit(executor, i) for i in range(len(tasks))]
        for i, future in enumerate(futures):
            try:
                results[i] = future.result(timeout=timeout)
            except (BrokenProcessPool, FuturesTimeout):
                degraded = True
                break
        if degraded:
            _terminate_pool(executor)
            for i, future in enumerate(futures):
                if results[i] is _UNSET and future.done() and not future.cancelled():
                    try:
                        if future.exception(timeout=0) is None:
                            results[i] = future.result()
                    except Exception:
                        pass
            for i in range(len(tasks)):
                if results[i] is _UNSET:
                    results[i] = _run(i)
    finally:
        if not degraded:
            executor.shutdown()
    if labels is not None:
        # Unwrap the traced envelopes in task order, adopting each task's
        # spans under the caller's current span path — deterministic
        # regardless of which worker ran what, when.
        for i, envelope in enumerate(results):
            tracer.adopt(envelope["__spans__"])
            results[i] = envelope["result"]
    return results


def _ledgered_map(
    fn: Callable[..., Any],
    tasks: List[Tuple[Any, ...]],
    *,
    paths: Optional[List[Tuple[Any, ...]]],
    jobs: int,
    timeout: Optional[float],
    tracer: Optional[Any],
    labels: Optional[List[str]],
    ledger: TaskLedger,
) -> List[Any]:
    """The resumable variant of :func:`parallel_map`: journalled tasks
    are answered from the ledger, the rest execute and are journalled.

    Sequentially (``jobs=1``) each completion is flushed before the next
    task starts, so a crash loses at most the task in flight — the
    property the resume tests pin.  With a pool, completions journal as
    they are harvested in task order.
    """
    keys = [
        task_key(p)
        for p in (paths if paths is not None else [("task", i) for i in range(len(tasks))])
    ]
    todo = [i for i, key in enumerate(keys) if key not in ledger]
    results: List[Any] = [ledger.get(key) for key in keys]
    if not todo:
        return results
    if jobs <= 1 or len(todo) <= 1:
        for i in todo:
            if tracer is None:
                value = fn(*tasks[i])
            else:
                with tracer.span(labels[i]):
                    value = fn(*tasks[i])
            ledger.record(keys[i], value)
            results[i] = value
        return results
    fresh = parallel_map(
        fn,
        [tasks[i] for i in todo],
        jobs=jobs,
        timeout=timeout,
        span_labels=[labels[i] for i in todo] if labels is not None else None,
        ledger=_LEDGER_OFF,
    )
    for i, value in zip(todo, fresh):
        ledger.record(keys[i], value)
        results[i] = value
    return results


# ----------------------------------------------------------------------
# Observability merge
# ----------------------------------------------------------------------
def _metrics_registries(observer: Optional[Observer]) -> List[Any]:
    """Every :class:`Metrics` registry reachable from ``observer``."""
    from repro.observability.metrics import MetricsObserver

    obs = live(observer)
    if obs is None:
        return []
    if isinstance(obs, MetricsObserver):
        return [obs.metrics]
    if isinstance(obs, CompositeObserver):
        registries: List[Any] = []
        for child in obs.observers:
            registries.extend(_metrics_registries(child))
        return registries
    return []


def merge_worker_metrics(observer: Optional[Observer], payload: Dict[str, Any]) -> None:
    """Fold a worker's exported metrics dict (``Metrics.to_dict()``) into
    every metrics registry behind the parent's observer.  A no-op when the
    observer carries no registry."""
    for registry in _metrics_registries(observer):
        registry.merge(payload)


def _bump(observer: Optional[Observer], name: str, amount: int = 1) -> None:
    """Increment a counter on every metrics registry behind ``observer``."""
    for registry in _metrics_registries(observer):
        registry.counter(name).inc(amount)


# ----------------------------------------------------------------------
# Parallel decide
# ----------------------------------------------------------------------
def _decide_attempt_worker(
    protocol: PopulationProtocol,
    config: Multiset,
    seed: int,
    sim_kwargs: Dict[str, Any],
    attempt: int = 0,
) -> Dict[str, Any]:
    """One decide attempt, run inside a worker process.

    Collects the attempt's metrics — and its span subtree, rooted at
    ``attempt:<i>`` to mirror the sequential path — locally and returns
    them with the verdict; observation never touches the random stream, so
    the sampled run is identical to an unobserved sequential attempt with
    this seed.  The cache warm-up runs *before* the tracer is installed:
    under ``fork`` it is an attribute-read no-op, and either way the
    coordinator (which warmed the cache up front) owns the cache span.
    """
    from repro.observability.metrics import MetricsObserver

    cached_transition_table(protocol)  # fork-inherited or disk cache hit
    metrics = MetricsObserver()
    tracer = _spans.SpanTracer()
    with _spans.activate(tracer):
        with tracer.span(f"attempt:{attempt}", seed=seed):
            result = simulate(
                protocol, config, seed=seed, observer=metrics, **sim_kwargs
            )
    return {
        "verdict": result.verdict,
        "silent": result.silent,
        "interactions": result.interactions,
        "productive": result.productive,
        "deadline_exceeded": result.deadline_exceeded,
        "metrics": metrics.metrics.to_dict(),
        "spans": tracer.to_payload(),
    }


def decide_parallel(
    protocol: PopulationProtocol,
    config: Multiset,
    *,
    base: int,
    attempts: int,
    jobs: int,
    observer: Optional[Observer] = None,
    stats: Optional[Dict[str, int]] = None,
    deadline: Optional[float] = None,
    timeout: Optional[float] = None,
    max_retries: int = 2,
    backoff_base: float = 0.05,
    **sim_kwargs: Any,
) -> bool:
    """Run all decide attempts concurrently; first verdict (in attempt
    order) wins and cancels the not-yet-started rest.

    Per-attempt seeds are ``derive_seed(base, attempt)`` — the exact
    seeds sequential :func:`~repro.core.simulation.decide` uses — and the
    returned verdict is the lowest-indexed attempt with one, so the
    result is identical to ``jobs=1`` for every base seed.  Attempts that
    were already running when the verdict landed are drained (their
    metrics still merge: the registry reports work actually done); pending
    ones are cancelled before they consume a core.

    Hardening (the resilience contract — same verdict, degraded speed):

    * a *crashed* worker (``BrokenProcessPool``) triggers up to
      ``max_retries`` pool rebuilds with exponential backoff
      (``backoff_base · 2^i`` plus a deterministic seed-derived jitter);
      results that survived the crash are harvested first, so only
      unfinished attempts rerun — on identical seeds, so the verdict is
      unchanged;
    * a *hung* worker (``timeout`` seconds without a result) gets its
      pool torn down — SIGTERM, no waiting — and execution degrades to
      the sequential path in-process;
    * once retries are exhausted the same sequential degradation applies,
      so a persistently broken pool yields exactly the ``jobs=1`` answer;
    * ``deadline`` bounds the whole call in wall-clock seconds; crossing
      it raises :class:`NonConvergenceError` (unless a verdict is already
      in hand, which is returned).

    ``stats``, when passed, receives ``launched`` / ``completed`` /
    ``cancelled`` / ``failed`` counts (every launched attempt lands in
    exactly one of the latter three) plus ``retries`` (pool rebuilds) and
    ``degraded`` (attempts that fell back to in-process execution).
    Matching ``pool.worker_failures`` / ``pool.retries`` /
    ``pool.degraded`` counters land on any metrics registry behind
    ``observer``.

    Raises :class:`NonConvergenceError` when no attempt stabilises, like
    the sequential path.
    """
    obs = live(observer)
    seeds = [derive_seed(base, attempt) for attempt in range(attempts)]
    # Warm the compile caches *before* the pool exists so fork-started
    # workers inherit the table instead of recompiling it per attempt.
    cached_transition_table(protocol)
    deadline_at = time.monotonic() + deadline if deadline is not None else None

    launched = attempts
    completed = cancelled = failed = retries = degraded = timed_out = 0
    seq_mode = False
    pool_alive = True
    verdict: Optional[bool] = None

    def _budget() -> Optional[float]:
        """Seconds this attempt may wait (``None`` = unbounded); raises
        once the overall deadline has passed."""
        b = timeout
        if deadline_at is not None:
            remaining = deadline_at - time.monotonic()
            if remaining <= 0:
                raise NonConvergenceError(
                    f"protocol {protocol.name!r} did not stabilise on "
                    f"|C|={config.size}: wall-clock deadline of {deadline:g}s "
                    f"exceeded"
                )
            b = remaining if b is None else min(b, remaining)
        return b

    def _sequential_attempt(attempt: int) -> Dict[str, Any]:
        """Degraded mode: the attempt runs in-process on its own seed —
        identical verdict semantics, bounded by the remaining budget."""
        from repro.observability.metrics import MetricsObserver

        kwargs = dict(sim_kwargs)
        b = _budget()
        if b is not None:
            kwargs["deadline"] = b
        metrics = MetricsObserver()
        # Runs in the coordinator, where any span tracer is ambient: the
        # attempt span records directly, so no "spans" payload (adoption
        # would double-count it).
        with _spans.span(f"attempt:{attempt}", seed=seeds[attempt]):
            result = simulate(
                protocol, config, seed=seeds[attempt], observer=metrics, **kwargs
            )
        return {
            "verdict": result.verdict,
            "silent": result.silent,
            "interactions": result.interactions,
            "productive": result.productive,
            "deadline_exceeded": result.deadline_exceeded,
            "metrics": metrics.metrics.to_dict(),
        }

    executor = _executor(jobs, attempts)
    futures: Dict[int, Any] = {}
    payloads: Dict[int, Dict[str, Any]] = {}  # harvested ahead of their turn

    def _harvest(start: int) -> None:
        """Salvage results that finished before the pool broke so retries
        only redo genuinely unfinished attempts."""
        for b_, fut in futures.items():
            if b_ >= start and b_ not in payloads and fut.done() and not fut.cancelled():
                try:
                    if fut.exception(timeout=0) is None:
                        payloads[b_] = fut.result()
                except Exception:
                    continue

    try:
        futures = {
            a: executor.submit(
                _decide_attempt_worker, protocol, config, seeds[a], sim_kwargs, a
            )
            for a in range(attempts)
        }
        a = 0
        while a < attempts:
            if a in payloads:
                payload = payloads.pop(a)
            elif seq_mode:
                degraded += 1
                payload = _sequential_attempt(a)
            else:
                try:
                    payload = futures[a].result(timeout=_budget())
                except FuturesTimeout:
                    # Hung worker: the pool cannot be waited on safely.
                    _bump(obs, "pool.worker_failures")
                    _harvest(a)
                    _terminate_pool(executor)
                    pool_alive = False
                    seq_mode = True
                    _bump(obs, "pool.degraded")
                    continue  # rerun attempt `a` in-process
                except BrokenProcessPool:
                    _bump(obs, "pool.worker_failures")
                    _harvest(a)
                    _terminate_pool(executor)
                    pool_alive = False
                    if retries < max_retries:
                        retries += 1
                        _bump(obs, "pool.retries")
                        delay = backoff_base * (2 ** (retries - 1))
                        delay += random.Random(
                            derive_child(base, f"pool-retry-{retries}")
                        ).uniform(0.0, backoff_base)
                        if deadline_at is not None:
                            delay = min(
                                delay, max(0.0, deadline_at - time.monotonic())
                            )
                        time.sleep(delay)
                        executor = _executor(jobs, attempts - a)
                        pool_alive = True
                        for b_ in range(a, attempts):
                            if b_ not in payloads:
                                futures[b_] = executor.submit(
                                    _decide_attempt_worker,
                                    protocol,
                                    config,
                                    seeds[b_],
                                    sim_kwargs,
                                    b_,
                                )
                        continue  # retry attempt `a` on the fresh pool
                    seq_mode = True
                    _bump(obs, "pool.degraded")
                    continue
                except NonConvergenceError:
                    raise
                except Exception:
                    # The attempt itself raised (bad kwargs, protocol bug):
                    # that is the caller's exception, not a pool fault.
                    failed += 1
                    _terminate_pool(executor)
                    pool_alive = False
                    raise
            completed += 1
            if obs is not None:
                obs.on_attempt(a, seeds[a])
            merge_worker_metrics(obs, payload["metrics"])
            # Adopt the attempt's span subtree in attempt order — but only
            # for attempts the sequential path would also have run (up to
            # and including the verdict attempt).  Drained stragglers
            # below merge metrics, never spans, so the jobs=N span tree
            # structurally equals the jobs=1 tree.
            _spans.adopt(payload.get("spans"))
            if payload["verdict"] is not None:
                verdict = payload["verdict"]
                a += 1
                break
            if payload.get("deadline_exceeded"):
                timed_out += 1
                if deadline_at is not None and time.monotonic() >= deadline_at:
                    raise NonConvergenceError(
                        f"protocol {protocol.name!r} did not stabilise on "
                        f"|C|={config.size}: wall-clock deadline exceeded "
                        f"during attempt {a + 1} of {attempts}"
                    )
            a += 1

        if verdict is not None:
            # First verdict wins: sweep-cancel everything still pending in
            # one fast pass *before* any blocking drain — waiting first
            # would let pending attempts start and dodge their cancel.
            draining = []
            for b_ in range(a, attempts):
                if b_ in payloads:
                    completed += 1
                    merge_worker_metrics(obs, payloads.pop(b_)["metrics"])
                elif seq_mode or b_ not in futures:
                    cancelled += 1
                elif futures[b_].cancel():
                    cancelled += 1
                else:
                    draining.append(futures[b_])
            # Then drain the stragglers (bounded — a hung one cannot hold
            # the verdict hostage) and merge their metrics truthfully.
            broken = False
            for fut in draining:
                if broken:
                    if fut.cancelled() or fut.cancel():
                        cancelled += 1
                    else:
                        failed += 1
                    continue
                drain_budget = timeout
                if deadline_at is not None:
                    remaining = max(0.0, deadline_at - time.monotonic())
                    drain_budget = (
                        remaining
                        if drain_budget is None
                        else min(drain_budget, remaining)
                    )
                try:
                    payload = fut.result(timeout=drain_budget)
                except BaseException:
                    # A drained attempt's failure cannot unwind a verdict.
                    failed += 1
                    _bump(obs, "pool.worker_failures")
                    _terminate_pool(executor)
                    pool_alive = False
                    broken = True
                else:
                    completed += 1
                    merge_worker_metrics(obs, payload["metrics"])
    finally:
        if pool_alive:
            executor.shutdown()
        # Snapshot the coordinator's artifact-cache counters as gauges so
        # a parallel run's digest (and its provenance manifest) shows how
        # much compilation the cache absorbed.
        for registry in _metrics_registries(obs):
            for key, value in artifact_cache().stats().items():
                registry.gauge(f"cache.{key}").set(value)
        if stats is not None:
            # Attempts abandoned by an exception unwind never got a
            # disposition; they were implicitly cancelled with the pool.
            accounted = completed + cancelled + failed
            if accounted < launched:
                cancelled += launched - accounted
            stats.update(
                launched=launched,
                completed=completed,
                cancelled=cancelled,
                failed=failed,
                retries=retries,
                degraded=degraded,
            )
    if verdict is None:
        detail = f", {timed_out} timed out" if timed_out else ""
        raise NonConvergenceError(
            f"protocol {protocol.name!r} did not stabilise on |C|={config.size} "
            f"within the budget ({attempts} attempts{detail})"
        )
    return verdict
