"""Process-pool execution engine for independent simulation tasks.

Three layers, all sharing the same determinism contract (task results
depend only on the task's own inputs and its seed-tree seed, never on
worker scheduling):

* :func:`resolve_jobs` — the single interpretation of a ``jobs``
  argument.  ``jobs=1`` is *the sequential path*: no pool, no pickling,
  bit-identical to the pre-parallel code.  ``jobs=None`` defers to the
  ``REPRO_JOBS`` environment variable (default 1) so whole experiment
  sweeps — and the test suite — can be switched to parallel execution
  without touching call sites.  ``jobs=0`` means "all cores".
* :func:`parallel_map` — deterministic fan-out of ``fn(*task)`` over a
  task list; results are assembled in task order, so the output is
  exactly ``[fn(*t) for t in tasks]`` regardless of completion order.
* :func:`decide_parallel` — the parallel core of
  :func:`repro.core.simulation.decide`: all attempts launch concurrently,
  the verdict is the *lowest-indexed* attempt that stabilised (the same
  attempt sequential execution would have returned, preserving
  ``jobs=1``/``jobs=N`` result equality), and once that attempt resolves
  every not-yet-started attempt is cancelled.

Workers run with their own :class:`~repro.observability.metrics.Metrics`
registry; completed attempts ship it back (as a plain dict) and the
parent merges it into any :class:`MetricsObserver` reachable from the
caller's observer, so ``python -m repro stats`` and the benchmark JSON
report the work that actually happened, wherever it happened.

Start method: ``fork`` where the platform offers it (workers inherit the
parent's warmed :mod:`~repro.runtime.cache` for free), else the platform
default; override with ``REPRO_START_METHOD``.  Workers pin their own
``REPRO_JOBS`` to 1, so a parallelised driver calling another
parallelisable function never fans out a pool inside a pool.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.errors import NonConvergenceError
from repro.core.multiset import Multiset
from repro.core.protocol import PopulationProtocol
from repro.core.simulation import derive_seed, simulate
from repro.observability.observer import CompositeObserver, Observer, live
from repro.runtime.cache import cached_transition_table


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """Normalise a ``jobs`` argument to a worker count ≥ 1 (see module
    docstring for the ``None``/``0`` conventions)."""
    if jobs is None:
        raw = os.environ.get("REPRO_JOBS", "").strip()
        try:
            jobs = int(raw) if raw else 1
        except ValueError:
            jobs = 1
    if jobs == 0:
        jobs = os.cpu_count() or 1
    return max(1, int(jobs))


def _start_method() -> str:
    preferred = os.environ.get("REPRO_START_METHOD")
    available = multiprocessing.get_all_start_methods()
    if preferred and preferred in available:
        return preferred
    return "fork" if "fork" in available else available[0]


def _worker_init() -> None:
    # A worker is a leaf of the fan-out tree: anything it calls that
    # consults REPRO_JOBS must run sequentially rather than nest pools.
    os.environ["REPRO_JOBS"] = "1"


def _executor(jobs: int, tasks: int) -> ProcessPoolExecutor:
    return ProcessPoolExecutor(
        max_workers=max(1, min(jobs, tasks)),
        mp_context=multiprocessing.get_context(_start_method()),
        initializer=_worker_init,
    )


def parallel_map(
    fn: Callable[..., Any],
    tasks: Iterable[Sequence[Any]],
    *,
    jobs: Optional[int] = None,
) -> List[Any]:
    """``[fn(*t) for t in tasks]``, fanned across a process pool.

    ``fn`` must be a module-level callable and every task argument (and
    result) picklable.  With ``jobs=1`` (or a single task) no pool is
    created and the comprehension runs verbatim in-process.
    """
    tasks = [tuple(t) for t in tasks]
    jobs = resolve_jobs(jobs)
    if jobs <= 1 or len(tasks) <= 1:
        return [fn(*t) for t in tasks]
    with _executor(jobs, len(tasks)) as executor:
        futures = [executor.submit(fn, *t) for t in tasks]
        return [future.result() for future in futures]


# ----------------------------------------------------------------------
# Observability merge
# ----------------------------------------------------------------------
def _metrics_registries(observer: Optional[Observer]) -> List[Any]:
    """Every :class:`Metrics` registry reachable from ``observer``."""
    from repro.observability.metrics import MetricsObserver

    obs = live(observer)
    if obs is None:
        return []
    if isinstance(obs, MetricsObserver):
        return [obs.metrics]
    if isinstance(obs, CompositeObserver):
        registries: List[Any] = []
        for child in obs.observers:
            registries.extend(_metrics_registries(child))
        return registries
    return []


def merge_worker_metrics(observer: Optional[Observer], payload: Dict[str, Any]) -> None:
    """Fold a worker's exported metrics dict (``Metrics.to_dict()``) into
    every metrics registry behind the parent's observer.  A no-op when the
    observer carries no registry."""
    for registry in _metrics_registries(observer):
        registry.merge(payload)


# ----------------------------------------------------------------------
# Parallel decide
# ----------------------------------------------------------------------
def _decide_attempt_worker(
    protocol: PopulationProtocol,
    config: Multiset,
    seed: int,
    sim_kwargs: Dict[str, Any],
) -> Dict[str, Any]:
    """One decide attempt, run inside a worker process.

    Collects the attempt's metrics locally and returns them with the
    verdict; observation never touches the random stream, so the sampled
    run is identical to an unobserved sequential attempt with this seed.
    """
    from repro.observability.metrics import MetricsObserver

    cached_transition_table(protocol)  # fork-inherited or disk cache hit
    metrics = MetricsObserver()
    result = simulate(protocol, config, seed=seed, observer=metrics, **sim_kwargs)
    return {
        "verdict": result.verdict,
        "silent": result.silent,
        "interactions": result.interactions,
        "productive": result.productive,
        "metrics": metrics.metrics.to_dict(),
    }


def decide_parallel(
    protocol: PopulationProtocol,
    config: Multiset,
    *,
    base: int,
    attempts: int,
    jobs: int,
    observer: Optional[Observer] = None,
    stats: Optional[Dict[str, int]] = None,
    **sim_kwargs: Any,
) -> bool:
    """Run all decide attempts concurrently; first verdict (in attempt
    order) wins and cancels the not-yet-started rest.

    Per-attempt seeds are ``derive_seed(base, attempt)`` — the exact
    seeds sequential :func:`~repro.core.simulation.decide` uses — and the
    returned verdict is the lowest-indexed attempt with one, so the
    result is identical to ``jobs=1`` for every base seed.  Attempts that
    were already running when the verdict landed are drained (their
    metrics still merge: the registry reports work actually done); pending
    ones are cancelled before they consume a core.

    ``stats``, when passed, receives ``launched`` / ``completed`` /
    ``cancelled`` counts (test and CLI hook).

    Raises :class:`NonConvergenceError` when no attempt stabilises, like
    the sequential path.
    """
    obs = live(observer)
    seeds = [derive_seed(base, attempt) for attempt in range(attempts)]
    # Warm the compile caches *before* the pool exists so fork-started
    # workers inherit the table instead of recompiling it per attempt.
    cached_transition_table(protocol)
    launched = completed = cancelled = 0
    verdict: Optional[bool] = None
    with _executor(jobs, attempts) as executor:
        futures = [
            executor.submit(
                _decide_attempt_worker, protocol, config, seeds[a], sim_kwargs
            )
            for a in range(attempts)
        ]
        launched = attempts
        try:
            for attempt, future in enumerate(futures):
                payload = future.result()
                completed += 1
                if obs is not None:
                    obs.on_attempt(attempt, seeds[attempt])
                merge_worker_metrics(obs, payload["metrics"])
                if payload["verdict"] is not None:
                    verdict = payload["verdict"]
                    break
        finally:
            # First verdict wins: pending attempts are cancelled; already
            # running ones finish (the executor's shutdown on __exit__
            # waits for them, so no worker outlives this call) and their
            # metrics are merged below for a truthful work count.
            draining = []
            for future in futures[completed:]:
                if future.cancel():
                    cancelled += 1
                else:
                    draining.append(future)
            for future in draining:
                try:
                    payload = future.result()
                except BaseException:
                    continue  # a drained attempt's failure cannot unwind a verdict
                completed += 1
                merge_worker_metrics(obs, payload["metrics"])
    if stats is not None:
        stats.update(
            launched=launched, completed=completed, cancelled=cancelled
        )
    if verdict is None:
        raise NonConvergenceError(
            f"protocol {protocol.name!r} did not stabilise on |C|={config.size} "
            f"within the budget ({attempts} attempts)"
        )
    return verdict
