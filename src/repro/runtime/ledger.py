"""Resumable task ledger: a crash-tolerant journal of completed tasks.

A distributed (or long) grid run should never redo work a previous
attempt already finished.  The ledger is the on-disk record that makes
that safe:

* every completed task is appended as one *frame* — a checksummed,
  length-prefixed pickle of ``(task_key, result)`` — flushed before the
  coordinator moves on, so a crash loses at most the task in flight;
* the file is *keyed by provenance fingerprint*: the header frame pins a
  blake2b fingerprint of the job (function, task paths, pickled task
  arguments).  A ledger whose fingerprint does not match the job being
  (re)run is ignored wholesale — stale results can never leak into a
  different grid, a changed seed, or a changed protocol;
* loading tolerates a torn tail (the frame a crash interrupted) and any
  checksum mismatch by stopping at the last intact frame, exactly like
  the artifact cache quarantines corrupt entries.

Task *keys* are the stringified deterministic task paths of
:class:`~repro.runtime.seeds.SeedTree` — a pure function of the task,
never of scheduling — which is what lets a resumed run, with different
workers in a different order, slot journalled results into place
bit-identically.
"""

from __future__ import annotations

import hashlib
import os
import pickle
from pathlib import Path
from typing import Any, Dict, Iterable, Optional, Sequence, Tuple

#: Frame layout: magic, 16-byte blake2b of the payload, 4-byte big-endian
#: payload length, payload.  (The length lives *inside* the checksummed
#: region's framing so a torn write is detected either by a short read or
#: by the digest.)
_MAGIC = b"RPLG1\x00"
_DIGEST_SIZE = 16
_LEN_BYTES = 4

#: Bumped when the frame or header layout changes incompatibly.
SCHEMA_VERSION = 1


def task_key(path: Sequence[Any]) -> str:
    """The canonical string form of a task path (``"lemma4/3"``), the
    ledger's addressing unit — matching the ``/``-separated interior-node
    convention of :func:`repro.runtime.seeds.derive_child`."""
    return "/".join(str(p) for p in path)


def job_fingerprint(fn: Any, paths: Sequence[Sequence[Any]], tasks: Sequence[Tuple]) -> str:
    """A stable content hash of a whole fan-out job.

    Covers the function's qualified name, every task path and the pickled
    task arguments, so *any* change to what would be computed — a
    different protocol, seed, grid shape or code entry point — yields a
    different fingerprint and an untouched (ignored) ledger.
    """
    h = hashlib.blake2b(digest_size=16)
    h.update(f"job-v{SCHEMA_VERSION}".encode())
    h.update(f"{getattr(fn, '__module__', '')}:{getattr(fn, '__qualname__', repr(fn))}".encode())
    for path, task in zip(paths, tasks):
        h.update(task_key(path).encode("utf-8"))
        h.update(b"\x00")
        try:
            h.update(pickle.dumps(task, protocol=pickle.HIGHEST_PROTOCOL))
        except Exception:
            # Unpicklable tasks never fan out anyway; keep the fingerprint
            # total rather than refuse (the repr is still content-bearing).
            h.update(repr(task).encode("utf-8"))
        h.update(b"\x01")
    return h.hexdigest()


def _frame(payload: bytes) -> bytes:
    digest = hashlib.blake2b(payload, digest_size=_DIGEST_SIZE).digest()
    return _MAGIC + digest + len(payload).to_bytes(_LEN_BYTES, "big") + payload


def _read_frames(blob: bytes) -> Iterable[bytes]:
    """Yield intact frame payloads, stopping at the first torn/corrupt one."""
    offset = 0
    header = len(_MAGIC) + _DIGEST_SIZE + _LEN_BYTES
    while offset + header <= len(blob):
        if blob[offset : offset + len(_MAGIC)] != _MAGIC:
            return
        digest = blob[offset + len(_MAGIC) : offset + len(_MAGIC) + _DIGEST_SIZE]
        length = int.from_bytes(
            blob[offset + header - _LEN_BYTES : offset + header], "big"
        )
        payload = blob[offset + header : offset + header + length]
        if len(payload) < length:
            return  # torn tail: the crash interrupted this frame
        if hashlib.blake2b(payload, digest_size=_DIGEST_SIZE).digest() != digest:
            return  # bit rot: stop before deserialising garbage
        yield payload
        offset += header + length


class TaskLedger:
    """Append-only journal of ``(task_key, result)`` pairs for one job.

    ``fingerprint`` identifies the job; an existing file with a different
    fingerprint (or unreadable header) is rotated aside to ``*.stale`` on
    the first :meth:`record`, so resuming a *changed* job starts clean.
    """

    def __init__(self, path: os.PathLike, fingerprint: str):
        self.path = Path(path)
        self.fingerprint = fingerprint
        self.results: Dict[str, Any] = {}
        self._fresh = True  # no compatible file on disk yet
        self._load()

    # -- loading --------------------------------------------------------
    def _load(self) -> None:
        try:
            blob = self.path.read_bytes()
        except OSError:
            return
        frames = iter(_read_frames(blob))
        try:
            header = pickle.loads(next(frames))
        except (StopIteration, Exception):
            return  # empty/corrupt header: treated as no ledger
        if (
            not isinstance(header, dict)
            or header.get("schema") != SCHEMA_VERSION
            or header.get("fingerprint") != self.fingerprint
        ):
            return  # different job: ignore (rotated aside on first record)
        self._fresh = False
        for payload in frames:
            try:
                key, result = pickle.loads(payload)
            except Exception:
                return  # stop at the first undeserialisable entry
            self.results[str(key)] = result

    # -- querying -------------------------------------------------------
    def __contains__(self, key: str) -> bool:
        return key in self.results

    def get(self, key: str) -> Any:
        return self.results.get(key)

    def __len__(self) -> int:
        return len(self.results)

    # -- recording ------------------------------------------------------
    def _open(self):
        if self._fresh:
            if self.path.exists():
                # Incompatible previous ledger: keep it for forensics, but
                # never mix its entries into this job.
                try:
                    os.replace(self.path, self.path.with_suffix(self.path.suffix + ".stale"))
                except OSError:
                    pass
            self.path.parent.mkdir(parents=True, exist_ok=True)
            header = pickle.dumps(
                {"schema": SCHEMA_VERSION, "fingerprint": self.fingerprint},
                protocol=pickle.HIGHEST_PROTOCOL,
            )
            with open(self.path, "wb") as fh:
                fh.write(_frame(header))
                fh.flush()
                os.fsync(fh.fileno())
            self._fresh = False

    def record(self, key: str, result: Any) -> None:
        """Journal one completed task (flushed before returning, so a
        subsequent crash cannot lose it).  Re-recording a key is a no-op —
        results are deterministic, the first write is as good as any."""
        key = str(key)
        if key in self.results:
            return
        self._open()
        payload = pickle.dumps((key, result), protocol=pickle.HIGHEST_PROTOCOL)
        with open(self.path, "ab") as fh:
            fh.write(_frame(payload))
            fh.flush()
        self.results[key] = result


def resolve_ledger(
    fn: Any,
    paths: Sequence[Sequence[Any]],
    tasks: Sequence[Tuple],
    *,
    ledger: Optional[TaskLedger] = None,
    directory: Optional[os.PathLike] = None,
) -> Optional[TaskLedger]:
    """The ledger a fan-out should journal to: an explicit one wins, else
    one is opened under ``directory`` (or ``REPRO_LEDGER_DIR``) named by
    the job fingerprint; ``None`` when journalling is off (the default —
    silently writing task results to disk would be a surprising default,
    mirroring the artifact cache's opt-in)."""
    if ledger is not None:
        return ledger
    directory = directory if directory is not None else os.environ.get("REPRO_LEDGER_DIR") or None
    if not directory:
        return None
    fingerprint = job_fingerprint(fn, paths, tasks)
    return TaskLedger(Path(directory) / f"job-{fingerprint}.ledger", fingerprint)
