"""Deterministic seed trees: task seeds as pure functions of their path.

PR 1 replaced the collision-prone ``base + attempt`` scheme inside
``decide`` with :func:`repro.core.simulation.derive_seed` — a blake2b
hash of the ``(base, attempt)`` pair.  This module extends that single
level of derivation into a *tree*: a task anywhere in a nested fan-out
(experiment → configuration → trial → attempt) gets its seed by folding
the labels on its path into the base seed, one blake2b application per
level.

Why a tree rather than ad-hoc arithmetic:

* **schedule independence** — a task's seed depends only on ``(base,
  path)``, never on which worker ran it, in what order, or whether its
  siblings ran at all.  ``jobs=1`` and ``jobs=N`` therefore sample the
  *same* runs, which is what makes parallel results comparable (and
  testable) against sequential ones;
* **no collisions by construction** — additive schemes like ``seed +
  1000*n + 10*trial`` silently reuse streams as soon as an index
  outgrows its stride (``trial=100`` collides with ``n+1, trial=0``).
  Hash folding has no strides to outgrow;
* **stability** — adding a new experiment (a new subtree label) never
  perturbs the seeds of existing ones.

The leaf derivation is exactly :func:`repro.core.simulation.derive_seed`,
so ``SeedTree(base).seed(attempt)`` reproduces the seeds ``decide`` has
used since PR 1 — pinned golden runs stay valid.
"""

from __future__ import annotations

import hashlib
from typing import Tuple, Union

from repro.core.simulation import derive_seed

Label = Union[int, str]


def derive_child(base: int, label: Label) -> int:
    """The seed of the child node ``label`` under a node with seed
    ``base``.

    Uses a ``/`` separator so interior-node derivations can never collide
    with the ``:``-separated leaf derivations of ``derive_seed``.
    """
    digest = hashlib.blake2b(
        f"{base}/{label}".encode("utf-8"), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big")


def derive_seed_path(base: int, *path: Label) -> int:
    """Fold a whole task path into ``base``: ``derive_child`` applied
    left-to-right.  With an empty path this is ``base`` itself.

    >>> derive_seed_path(7, "lemma4", 3) == derive_child(derive_child(7, "lemma4"), 3)
    True
    """
    node = base
    for label in path:
        node = derive_child(node, label)
    return node


class SeedTree:
    """A node in a deterministic seed tree.

    ``child(*labels)`` descends (returning a new node — trees are
    immutable), ``seed(index)`` derives a leaf stream seed via
    :func:`~repro.core.simulation.derive_seed`.

    >>> tree = SeedTree(42)
    >>> tree.child("convergence", 2).seed(0) == derive_seed(
    ...     derive_seed_path(42, "convergence", 2), 0)
    True
    """

    __slots__ = ("base", "path")

    def __init__(self, base: int, path: Tuple[Label, ...] = ()):
        self.base = int(base)
        self.path = tuple(path)

    @property
    def value(self) -> int:
        """The node's own seed value (the folded path)."""
        return derive_seed_path(self.base, *self.path)

    def child(self, *labels: Label) -> "SeedTree":
        """The subtree rooted at ``labels`` below this node."""
        return SeedTree(self.base, self.path + tuple(labels))

    def seed(self, index: int) -> int:
        """The ``index``-th leaf stream seed under this node — the same
        derivation ``decide`` applies to its attempt counter."""
        return derive_seed(self.value, index)

    def __repr__(self) -> str:
        inner = "/".join(str(p) for p in self.path)
        return f"SeedTree({self.base}{'/' + inner if inner else ''})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SeedTree):
            return NotImplemented
        return self.base == other.base and self.path == other.path

    def __hash__(self) -> int:
        return hash((self.base, self.path))
