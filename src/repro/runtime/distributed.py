"""Distributed sharded fan-out: a TCP coordinator/worker runtime.

:mod:`repro.runtime.pool` caps out at one host — and the bench box has
``cpu_count=1``, so the process pool has nothing to scale onto.  This
module extends the same execution contract across machines: a
*coordinator* (the driver process) shards independent tasks — Monte
Carlo ``decide`` attempts, experiment-grid cells — over any number of
*workers* connected over TCP, with work stealing, and the results are
**bit-identical to sequential execution** because nothing about a task
depends on where or when it ran:

* tasks are addressed by their deterministic
  :class:`~repro.runtime.seeds.SeedTree` paths, never by scheduling
  order — any worker can run any task, twice if need be, and produce the
  same bytes;
* the coordinator assembles results in task order and adopts worker span
  payloads in task order, so distributed span trees structurally equal
  ``jobs=1`` trees (the same merge discipline as the process pool);
* completed ``(task_path, result)`` pairs are journalled to a resumable
  on-disk :class:`~repro.runtime.ledger.TaskLedger` keyed by provenance
  fingerprint, so a restarted coordinator re-executes only what is
  genuinely unfinished;
* workers warm compiled artifacts from the shared ``REPRO_CACHE_DIR``
  disk cache (cold Theorem-1 compile: seconds; warm disk hit:
  sub-millisecond), so fan-out never multiplies compilation.

Wire protocol (stdlib only — ``socket`` + ``selectors``): length-prefixed
pickle frames, magic + 4-byte big-endian length + payload.  Messages are
plain dicts with a ``"type"`` key::

    worker → coordinator   {"type": "hello", "pid", "host", "version"}
    coordinator → worker   {"type": "task", "id", "label", "trace", "fn", "args"}
    worker → coordinator   {"type": "result", "id", "result" | "error", "spans"}
    worker → coordinator   {"type": "heartbeat", "task"}     (only while busy)
    coordinator → worker   {"type": "bye"}

Functions cross the wire *by reference* (module-qualified name), so
workers must import the same code; arguments and results cross by value.

Resilience ladder (the same contract as the hardened pool — same
verdict, degraded speed):

1. a worker that disconnects or stops heartbeating mid-task has its
   leased tasks requeued and re-dispatched to surviving workers;
2. a task leased longer than ``lease_timeout`` is re-dispatched to
   another worker (first result wins; duplicates are dropped — results
   are deterministic, so either copy is the right answer);
3. when *no* workers remain (or none connect within ``connect_grace``),
   remaining tasks run through the in-process pool — which itself
   degrades to sequential — so the answer is always the ``jobs=1``
   answer.

``dist.*`` counters (dispatches, steals, requeues, lease expiries, lost
workers, ledger hits, degradations) land on the cluster's own metrics
registry and on any ambient tracer registry, and worker liveness is
exposed on ``python -m repro serve``'s ``/healthz``.
"""

from __future__ import annotations

import os
import pickle
import selectors
import socket
import struct
import subprocess
import sys
import threading
import time
import traceback
from collections import deque
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.observability import spans as _spans
from repro.observability.metrics import Metrics
from repro.runtime.ledger import TaskLedger, resolve_ledger, task_key

PROTOCOL_VERSION = 1

#: Frame layout: magic + 4-byte big-endian payload length + pickle payload.
_MAGIC = b"RPDF"
_HEADER = struct.Struct(">4sI")
#: Refuse absurd frames before allocating for them (a corrupted length
#: prefix must not look like a 4 GiB read).
MAX_FRAME = 256 * 1024 * 1024


class ProtocolError(RuntimeError):
    """The peer sent bytes that are not a valid frame."""


class NoWorkersError(RuntimeError):
    """No workers connected within the grace period — callers degrade to
    the in-process pool."""


class RemoteTaskError(RuntimeError):
    """A task function raised inside a worker; carries the remote
    traceback text (the exception itself is re-raised when picklable)."""


# ----------------------------------------------------------------------
# Framing
# ----------------------------------------------------------------------
def encode_frame(message: Dict[str, Any]) -> bytes:
    payload = pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL)
    return _HEADER.pack(_MAGIC, len(payload)) + payload


def send_frame(sock: socket.socket, message: Dict[str, Any]) -> None:
    sock.sendall(encode_frame(message))


def recv_frame(sock: socket.socket) -> Optional[Dict[str, Any]]:
    """Read exactly one frame from a blocking socket (``None`` on EOF)."""
    header = _recv_exact(sock, _HEADER.size)
    if header is None:
        return None
    magic, length = _HEADER.unpack(header)
    if magic != _MAGIC or length > MAX_FRAME:
        raise ProtocolError(f"bad frame header {header!r}")
    payload = _recv_exact(sock, length)
    if payload is None:
        return None
    return pickle.loads(payload)


def _recv_exact(sock: socket.socket, n: int) -> Optional[bytes]:
    chunks: List[bytes] = []
    remaining = n
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            return None
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


class FrameDecoder:
    """Incremental decoder for the coordinator's non-blocking reads."""

    def __init__(self) -> None:
        self._buffer = b""

    def feed(self, data: bytes) -> List[Dict[str, Any]]:
        self._buffer += data
        messages: List[Dict[str, Any]] = []
        while len(self._buffer) >= _HEADER.size:
            magic, length = _HEADER.unpack(self._buffer[: _HEADER.size])
            if magic != _MAGIC or length > MAX_FRAME:
                raise ProtocolError("bad frame header from worker")
            end = _HEADER.size + length
            if len(self._buffer) < end:
                break
            messages.append(pickle.loads(self._buffer[_HEADER.size : end]))
            self._buffer = self._buffer[end:]
        return messages


def parse_address(addr: str) -> Tuple[str, int]:
    """``"host:port"`` → ``(host, port)`` (bare ``":port"`` binds
    loopback; a dispatch target must name both parts)."""
    host, sep, port = str(addr).rpartition(":")
    if not sep or not port.isdigit():
        raise ValueError(f"expected 'host:port', got {addr!r}")
    return (host or "127.0.0.1", int(port))


def format_address(host: str, port: int) -> str:
    return f"{host}:{port}"


# ----------------------------------------------------------------------
# Task records
# ----------------------------------------------------------------------
PENDING, LEASED, DONE, CANCELLED = "pending", "leased", "done", "cancelled"


class TaskRecord:
    """One unit of work and its lifecycle inside a coordinator run."""

    __slots__ = (
        "id", "index", "path", "key", "args", "label",
        "state", "lease_start", "envelope", "source", "redispatched",
    )

    def __init__(self, id: int, index: int, path: Sequence[Any], args: Tuple, label: str):
        self.id = id
        self.index = index
        self.path = tuple(path)
        self.key = task_key(self.path)
        self.args = args
        self.label = label
        self.state = PENDING
        self.lease_start: Optional[float] = None
        self.envelope: Optional[Dict[str, Any]] = None
        self.source: Optional[str] = None  # "worker" | "local" | "ledger"
        self.redispatched = 0


class WorkerHandle:
    """Coordinator-side state of one connected worker."""

    __slots__ = ("sock", "peer", "decoder", "info", "ready", "last_seen", "current", "queue")

    def __init__(self, sock: socket.socket, peer: Tuple[str, int]):
        self.sock = sock
        self.peer = peer
        self.decoder = FrameDecoder()
        self.info: Dict[str, Any] = {}
        self.ready = False  # hello received
        self.last_seen = time.monotonic()
        self.current: Optional[TaskRecord] = None
        self.queue: deque = deque()  # this worker's shard (steal target)


# ----------------------------------------------------------------------
# Coordinator
# ----------------------------------------------------------------------
class Coordinator:
    """Shard tasks over TCP workers with work stealing and leases.

    The coordinator owns a listening socket from construction; workers
    may connect at any time (including mid-run — they join the pool and
    steal work).  All socket handling is single-threaded inside
    :meth:`run`; between runs, connected workers are idle and silent
    (heartbeats flow only while a worker is busy), so no background
    thread is needed.
    """

    def __init__(
        self,
        bind: str = "127.0.0.1:0",
        *,
        lease_timeout: float = 300.0,
        heartbeat_timeout: float = 15.0,
        connect_grace: float = 5.0,
    ):
        host, port = parse_address(bind)
        self.lease_timeout = lease_timeout
        self.heartbeat_timeout = heartbeat_timeout
        self.connect_grace = connect_grace
        self.metrics = Metrics()
        self.workers: List[WorkerHandle] = []
        self._selector = selectors.DefaultSelector()
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host, port))
        self._listener.listen(64)
        self._listener.setblocking(False)
        self._selector.register(self._listener, selectors.EVENT_READ, None)
        self.host, self.port = self._listener.getsockname()[:2]
        self._io_lock = threading.Lock()  # run() vs idle poll() on the selector
        self._task_seq = 0  # globally unique ids: stale results never collide
        self._records: Dict[int, TaskRecord] = {}
        self._requeued: deque = deque()
        self._sinks: List[Metrics] = []
        self._running = False
        self._closed = False

    # -- public surface --------------------------------------------------
    @property
    def address(self) -> str:
        return format_address(self.host, self.port)

    def workers_alive(self) -> int:
        return sum(1 for w in self.workers if w.ready)

    def poll(self) -> None:
        """Accept pending connections and handshakes while idle.

        ``run()`` does this itself; between runs nobody drives the
        selector, so liveness probes and tests waiting for workers call
        this.  A no-op while a run is in flight (the selector is not
        thread-safe under concurrent ``select``) or after ``close()``.
        """
        if self._closed or not self._io_lock.acquire(blocking=False):
            return
        try:
            if self._running:
                return
            for key, _ in self._selector.select(timeout=0):
                if key.data is None:
                    self._accept()
                else:
                    self._handle_frames(key.data, self._read(key.data))
        finally:
            self._io_lock.release()

    def liveness(self) -> Dict[str, Any]:
        """A point-in-time worker liveness snapshot (for ``/healthz``)."""
        self.poll()
        now = time.monotonic()
        workers = []
        for w in list(self.workers):
            try:
                workers.append(
                    {
                        "peer": format_address(*w.peer),
                        "pid": w.info.get("pid"),
                        "busy": w.current is not None,
                        "last_seen_age": round(now - w.last_seen, 3),
                    }
                )
            except Exception:
                continue
        return {"address": self.address, "alive": len(workers), "workers": workers}

    def close(self) -> None:
        """Dismiss the workers and release the listener."""
        if self._closed:
            return
        self._closed = True
        for worker in list(self.workers):
            try:
                send_frame(worker.sock, {"type": "bye"})
            except OSError:
                pass
            self._drop_worker(worker, requeue=False)
        try:
            self._selector.unregister(self._listener)
        except (KeyError, ValueError):
            pass
        self._listener.close()
        self._selector.close()

    # -- metrics ---------------------------------------------------------
    def _count(self, name: str, amount: int = 1) -> None:
        self.metrics.counter(name).inc(amount)
        for sink in self._sinks:
            sink.counter(name).inc(amount)

    # -- connection handling ---------------------------------------------
    def _accept(self) -> None:
        while True:
            try:
                sock, peer = self._listener.accept()
            except (BlockingIOError, OSError):
                return
            sock.setblocking(False)
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            worker = WorkerHandle(sock, peer)
            self.workers.append(worker)
            self._selector.register(sock, selectors.EVENT_READ, worker)

    def _drop_worker(self, worker: WorkerHandle, *, requeue: bool = True) -> None:
        if worker not in self.workers:
            return
        self.workers.remove(worker)
        try:
            self._selector.unregister(worker.sock)
        except (KeyError, ValueError):
            pass
        try:
            worker.sock.close()
        except OSError:
            pass
        if worker.ready and not self._closed:
            self._count("dist.workers_lost")
        record = worker.current
        worker.current = None
        if record is not None and record.state == LEASED and requeue:
            # The worker died holding a lease: the task is pure, so it
            # simply goes back in the queue for someone else.
            record.state = PENDING
            record.lease_start = None
            self._requeued.append(record)
            self._count("dist.requeued")
        # Unstarted shard entries drain back through stealing: move them
        # to the global requeue so no task is stranded with a dead owner.
        while worker.queue:
            entry = worker.queue.popleft()
            if entry.state == PENDING:
                self._requeued.append(entry)

    def _read(self, worker: WorkerHandle) -> List[Dict[str, Any]]:
        try:
            data = worker.sock.recv(1 << 20)
        except (BlockingIOError, InterruptedError):
            return []
        except OSError:
            self._drop_worker(worker)
            return []
        if not data:
            self._drop_worker(worker)
            return []
        worker.last_seen = time.monotonic()
        try:
            return worker.decoder.feed(data)
        except (ProtocolError, pickle.UnpicklingError, EOFError):
            self._drop_worker(worker)
            return []

    # -- dispatch / stealing ---------------------------------------------
    def _next_record(self, worker: WorkerHandle) -> Optional[TaskRecord]:
        while self._requeued:
            record = self._requeued.popleft()
            if record.state == PENDING:
                return record
        while worker.queue:
            record = worker.queue.popleft()
            if record.state == PENDING:
                return record
        # Work stealing: raid the tail of the most-loaded sibling's shard
        # (the tail, so the owner keeps its own head-of-queue locality).
        victim = max(
            (w for w in self.workers if w is not worker and w.queue),
            key=lambda w: len(w.queue),
            default=None,
        )
        while victim is not None and victim.queue:
            record = victim.queue.pop()
            if record.state == PENDING:
                self._count("dist.steals")
                return record
        return None

    def _dispatch(self, worker: WorkerHandle, fn: Callable, trace: bool) -> bool:
        if worker.current is not None or not worker.ready:
            return False
        record = self._next_record(worker)
        if record is None:
            return False
        message = {
            "type": "task",
            "id": record.id,
            "label": record.label,
            "trace": trace,
            "fn": fn,
            "args": record.args,
        }
        try:
            worker.sock.setblocking(True)
            try:
                send_frame(worker.sock, message)
            finally:
                worker.sock.setblocking(False)
        except OSError:
            # The send found the corpse before the select loop did.
            record.state = PENDING
            self._requeued.appendleft(record)
            self._drop_worker(worker)
            return False
        record.state = LEASED
        record.lease_start = time.monotonic()
        worker.current = record
        self._count("dist.dispatched")
        return True

    def _wait_for_workers(self, grace: float) -> None:
        deadline = time.monotonic() + max(0.0, grace)
        while True:
            if any(w.ready for w in self.workers):
                return
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise NoWorkersError(
                    f"no workers connected to {self.address} within {grace:g}s"
                )
            for key, _ in self._selector.select(timeout=min(remaining, 0.1)):
                if key.data is None:
                    self._accept()
                else:
                    self._handle_frames(key.data, self._read(key.data))

    def _handle_frames(
        self, worker: WorkerHandle, messages: List[Dict[str, Any]]
    ) -> List[Dict[str, Any]]:
        """Process control frames; return result frames for the caller."""
        results = []
        for message in messages:
            kind = message.get("type")
            if kind == "hello":
                worker.info = message
                if not worker.ready:
                    worker.ready = True
                    self._count("dist.workers_connected")
            elif kind == "heartbeat":
                pass  # last_seen already refreshed by the read itself
            elif kind == "result":
                results.append(message)
            # unknown kinds are ignored: forward compatibility
        return results

    # -- local (degraded) execution --------------------------------------
    def _run_local(self, fn: Callable, record: TaskRecord, trace: bool) -> None:
        from repro.runtime.pool import _traced_task  # late: avoid cycle

        self._count("dist.local_tasks")
        try:
            if trace:
                record.envelope = _traced_task(fn, record.label, record.args)
                record.envelope = {
                    "result": record.envelope["result"],
                    "spans": record.envelope["__spans__"],
                }
            else:
                record.envelope = {"result": fn(*record.args), "spans": None}
        except Exception as exc:  # the caller re-raises in task order
            record.envelope = {
                "error": exc,
                "error_text": traceback.format_exc(),
                "spans": None,
            }
        record.state = DONE
        record.source = "local"

    # -- the run loop -----------------------------------------------------
    def run(
        self,
        fn: Callable[..., Any],
        tasks: Sequence[Tuple],
        *,
        paths: Sequence[Sequence[Any]],
        labels: Sequence[str],
        trace: bool = False,
        ledger: Optional[TaskLedger] = None,
        early_stop: Optional[Callable[[List[TaskRecord]], bool]] = None,
        deadline: Optional[float] = None,
        lease_timeout: Optional[float] = None,
        connect_grace: Optional[float] = None,
    ) -> List[TaskRecord]:
        """Execute ``fn(*task)`` for every task, sharded across workers.

        Returns the records in task order; callers unwrap ``envelope``
        (``{"result": ...}`` or ``{"error": ...}``) themselves so decide
        and map semantics can differ.  ``early_stop(records)`` — checked
        after every completion — cancels all not-yet-leased tasks when it
        returns true (leased ones are drained; their results still count).
        Raises :class:`NoWorkersError` before doing any work if no worker
        is available, so the caller can fall back to the in-process pool.
        """
        if self._closed:
            raise NoWorkersError(f"coordinator {self.address} is closed")
        if self._running:
            raise NoWorkersError("re-entrant distributed run")  # caller falls back
        lease = lease_timeout if lease_timeout is not None else self.lease_timeout
        deadline_at = time.monotonic() + deadline if deadline is not None else None
        records: List[TaskRecord] = []
        for index, (task, path, label) in enumerate(zip(tasks, paths, labels)):
            record = TaskRecord(self._task_seq, index, path, tuple(task), label)
            self._task_seq += 1
            records.append(record)
        open_records = dict()
        for record in records:
            if ledger is not None and record.key in ledger:
                record.state = DONE
                record.source = "ledger"
                record.envelope = {"result": ledger.get(record.key), "spans": None}
                self._count("dist.ledger_hits")
            else:
                open_records[record.id] = record
        if not open_records:
            return records

        # Ambient metrics sinks for dist.* counters (tracer registry).
        tracer = _spans.current()
        self._sinks = (
            [tracer.metrics]
            if tracer is not None and tracer.metrics is not None
            else []
        )
        self._io_lock.acquire()
        self._running = True
        try:
            self._wait_for_workers(
                connect_grace if connect_grace is not None else self.connect_grace
            )
            # Contiguous sharding over the workers present at launch;
            # late joiners start empty and steal.
            ready = [w for w in self.workers if w.ready]
            pending = [r for r in open_records.values()]
            shard = max(1, (len(pending) + len(ready) - 1) // len(ready))
            for i, worker in enumerate(ready):
                worker.queue = deque(pending[i * shard : (i + 1) * shard])
            for worker in ready:
                self._dispatch(worker, fn, trace)

            stopped = False
            while any(r.state in (PENDING, LEASED) for r in open_records.values()):
                if deadline_at is not None and time.monotonic() >= deadline_at:
                    raise TimeoutError(
                        f"distributed run exceeded its {deadline:g}s deadline"
                    )
                events = self._selector.select(timeout=0.1)
                for key, _ in events:
                    if key.data is None:
                        self._accept()
                        continue
                    worker = key.data
                    for message in self._handle_frames(worker, self._read(worker)):
                        record = open_records.get(message.get("id"))
                        if record is None or record.state == DONE:
                            self._count("dist.duplicates")  # re-dispatch race
                            if record is not None and worker.current is record:
                                worker.current = None
                            continue
                        record.state = DONE
                        record.source = "worker"
                        record.envelope = message
                        if worker.current is record:
                            worker.current = None
                        self._count("dist.completed")
                        if (
                            ledger is not None
                            and "error" not in message
                        ):
                            ledger.record(record.key, message.get("result"))
                        if early_stop is not None and not stopped and early_stop(records):
                            stopped = True
                            for r in open_records.values():
                                if r.state == PENDING:
                                    r.state = CANCELLED
                                    self._count("dist.cancelled")
                            self._requeued.clear()
                # Heartbeat staleness: a busy worker that has gone silent
                # is presumed dead; its lease requeues above.
                now = time.monotonic()
                for worker in list(self.workers):
                    if (
                        worker.current is not None
                        and now - worker.last_seen > self.heartbeat_timeout
                    ):
                        self._count("dist.heartbeat_expired")
                        self._drop_worker(worker)
                # Lease expiry: the worker is alive but the task has held
                # its lease too long — re-offer it elsewhere; first result
                # wins and the straggler's copy is dropped as a duplicate.
                for record in open_records.values():
                    if (
                        record.state == LEASED
                        and record.lease_start is not None
                        and now - record.lease_start > lease
                        and record.redispatched < 2
                    ):
                        record.redispatched += 1
                        record.lease_start = now
                        clone = record
                        clone.state = PENDING  # re-queue; holder may still answer
                        self._requeued.append(clone)
                        self._count("dist.lease_expired")
                for worker in list(self.workers):
                    self._dispatch(worker, fn, trace)
                # Everyone is gone: finish the job in-process (the same
                # degradation ladder as the hardened pool, one rung up).
                if not any(w.ready for w in self.workers):
                    remaining = [
                        r
                        for r in sorted(open_records.values(), key=lambda r: r.index)
                        if r.state in (PENDING, LEASED)
                    ]
                    if remaining and not stopped:
                        self._count("dist.degraded")
                    for record in remaining:
                        if stopped:
                            # Post-verdict leftovers never ran anywhere:
                            # they are cancellations, not stragglers.
                            record.state = CANCELLED
                            self._count("dist.cancelled")
                            continue
                        self._run_local(fn, record, trace)
                        if ledger is not None and record.envelope is not None and (
                            "error" not in record.envelope
                        ):
                            ledger.record(record.key, record.envelope.get("result"))
                        if early_stop is not None and early_stop(records):
                            stopped = True
                            for r in open_records.values():
                                if r.state == PENDING:
                                    r.state = CANCELLED
                                    self._count("dist.cancelled")
        finally:
            self._running = False
            self._io_lock.release()
            self._sinks = []
            self._requeued.clear()
            for worker in self.workers:
                worker.queue = deque()
        return records


# ----------------------------------------------------------------------
# Cluster registry (one coordinator per bound address, per process)
# ----------------------------------------------------------------------
_CLUSTERS: Dict[str, Coordinator] = {}
_CLUSTERS_LOCK = threading.Lock()


def get_cluster(addr: str, **kwargs: Any) -> Coordinator:
    """The process-wide coordinator listening on ``addr`` (bound lazily on
    first use and reused by every subsequent dispatch to the same
    address, so workers stay connected across calls)."""
    key = format_address(*parse_address(addr))
    with _CLUSTERS_LOCK:
        coordinator = _CLUSTERS.get(key)
        if coordinator is None or coordinator._closed:
            coordinator = Coordinator(key, **kwargs)
            _CLUSTERS[key] = coordinator
            # An ephemeral bind (":0") is registered under its actual port
            # too, so `coordinator.address` round-trips through get_cluster.
            _CLUSTERS.setdefault(coordinator.address, coordinator)
        return coordinator


def active_cluster() -> Optional[Coordinator]:
    """The most recently created live coordinator (for ``/healthz``)."""
    with _CLUSTERS_LOCK:
        for coordinator in reversed(list(_CLUSTERS.values())):
            if not coordinator._closed:
                return coordinator
    return None


def shutdown_clusters() -> None:
    with _CLUSTERS_LOCK:
        for coordinator in _CLUSTERS.values():
            coordinator.close()
        _CLUSTERS.clear()


# ----------------------------------------------------------------------
# distributed_map — the network twin of parallel_map
# ----------------------------------------------------------------------
def distributed_map(
    fn: Callable[..., Any],
    tasks: Sequence[Sequence[Any]],
    *,
    addr: str,
    span_labels: Optional[Sequence[str]] = None,
    paths: Optional[Sequence[Sequence[Any]]] = None,
    ledger: Optional[TaskLedger] = None,
    lease_timeout: Optional[float] = None,
    connect_grace: Optional[float] = None,
    deadline: Optional[float] = None,
) -> List[Any]:
    """``[fn(*t) for t in tasks]`` sharded across the workers of the
    cluster at ``addr`` — results in task order, identical to the
    sequential comprehension.

    When a span tracer is active, every task runs under its own span in
    its worker and the payloads are adopted in task order (the merged
    tree structurally equals ``jobs=1``).  ``paths`` are the tasks'
    deterministic seed-tree paths (default ``("task", i)``) — the ledger
    key and the addressing unit for re-dispatch.  A ledger (explicit, or
    via ``REPRO_LEDGER_DIR``) makes the run resumable: journalled tasks
    are returned without re-execution.

    With no workers available the whole call degrades to the in-process
    :func:`~repro.runtime.pool.parallel_map` (which itself degrades to
    sequential) — same results, just slower.
    """
    tasks = [tuple(t) for t in tasks]
    paths = (
        [tuple(p) for p in paths]
        if paths is not None
        else [("task", i) for i in range(len(tasks))]
    )
    if len(paths) != len(tasks):
        raise ValueError("paths must match tasks in length")
    tracer = _spans.current()
    labels = (
        [str(l) for l in span_labels]
        if span_labels is not None
        else [f"task:{i}" for i in range(len(tasks))]
    )
    if len(labels) != len(tasks):
        raise ValueError("span_labels must match tasks in length")
    ledger = resolve_ledger(fn, paths, tasks, ledger=ledger)
    coordinator = get_cluster(addr)
    try:
        records = coordinator.run(
            fn,
            tasks,
            paths=paths,
            labels=labels,
            trace=tracer is not None,
            ledger=ledger,
            lease_timeout=lease_timeout,
            connect_grace=connect_grace,
            deadline=deadline,
        )
    except NoWorkersError:
        coordinator.metrics.counter("dist.degraded").inc()
        if tracer is not None and tracer.metrics is not None:
            tracer.metrics.counter("dist.degraded").inc()
        return _local_fallback(fn, tasks, paths, labels, ledger)
    results: List[Any] = []
    for record in records:
        envelope = record.envelope or {}
        if "error" in envelope:
            error = envelope["error"]
            if isinstance(error, BaseException):
                raise error
            raise RemoteTaskError(str(envelope.get("error_text") or error))
        if tracer is not None:
            tracer.adopt(envelope.get("spans"))
        results.append(envelope.get("result"))
    return results


def _local_fallback(
    fn: Callable[..., Any],
    tasks: List[Tuple],
    paths: List[Tuple],
    labels: List[str],
    ledger: Optional[TaskLedger],
) -> List[Any]:
    """No workers: run through the in-process pool, honouring the ledger
    (journalled tasks are skipped; fresh completions are journalled)."""
    from repro.runtime.pool import parallel_map

    keys = [task_key(p) for p in paths]
    todo = [i for i, k in enumerate(keys) if ledger is None or k not in ledger]
    fresh: List[Any] = []
    if todo:
        if ledger is None:
            fresh = parallel_map(
                fn,
                [tasks[i] for i in todo],
                jobs=_fallback_jobs(),
                span_labels=[labels[i] for i in todo],
            )
        else:
            # Journal as we go (sequentially), so a crash mid-grid keeps
            # every completed cell — the property the resume test pins.
            tracer = _spans.current()
            for i in todo:
                if tracer is None:
                    result = fn(*tasks[i])
                else:
                    with tracer.span(labels[i]):
                        result = fn(*tasks[i])
                ledger.record(keys[i], result)
                fresh.append(result)
    todo_set = set(todo)
    fresh_iter = iter(fresh)
    return [
        next(fresh_iter) if i in todo_set else ledger.get(keys[i])
        for i in range(len(tasks))
    ]


def _fallback_jobs() -> int:
    """Pool width for the no-workers fallback (``REPRO_DIST_FALLBACK_JOBS``,
    default 1 — the bit-identical sequential path)."""
    raw = os.environ.get("REPRO_DIST_FALLBACK_JOBS", "").strip()
    try:
        return int(raw) if raw else 1
    except ValueError:
        return 1


# ----------------------------------------------------------------------
# decide over the cluster — the network twin of decide_parallel
# ----------------------------------------------------------------------
def decide_distributed(
    protocol: Any,
    config: Any,
    *,
    base: int,
    attempts: int,
    addr: str,
    observer: Any = None,
    stats: Optional[Dict[str, int]] = None,
    deadline: Optional[float] = None,
    timeout: Optional[float] = None,
    **sim_kwargs: Any,
) -> bool:
    """All decide attempts sharded across the cluster; the verdict is the
    lowest-indexed stabilising attempt's — the exact attempt sequential
    execution would return, on the exact ``derive_seed(base, i)`` seeds —
    so distributed, pooled and sequential calls agree for every seed.

    Early stop: once the lowest-indexed verdict is in hand (every earlier
    attempt completed without one), not-yet-leased attempts are
    cancelled; already-running ones are drained and contribute metrics
    (never spans — the span tree must equal ``jobs=1``).  ``timeout``
    doubles as the per-attempt lease, ``deadline`` bounds the whole call.
    With no workers the call degrades to the hardened in-process pool.
    """
    from repro.core.errors import NonConvergenceError
    from repro.core.simulation import derive_seed
    from repro.runtime.cache import artifact_cache, cached_transition_table
    from repro.runtime.pool import (
        _decide_attempt_worker,
        _metrics_registries,
        decide_parallel,
        merge_worker_metrics,
    )
    from repro.observability.observer import live

    obs = live(observer)
    seeds = [derive_seed(base, attempt) for attempt in range(attempts)]
    cached_transition_table(protocol)  # warm before fan-out (and publish to disk)
    coordinator = get_cluster(addr)

    def verdict_settled(records: List[TaskRecord]) -> bool:
        for record in records:
            if record.state != DONE:
                return False
            envelope = record.envelope or {}
            if "error" in envelope:
                return False
            if (envelope.get("result") or {}).get("verdict") is not None:
                return True
        return False

    try:
        records = coordinator.run(
            _decide_attempt_worker,
            [(protocol, config, seeds[a], dict(sim_kwargs), a) for a in range(attempts)],
            paths=[("decide", base, a) for a in range(attempts)],
            labels=[f"attempt:{a}" for a in range(attempts)],
            trace=False,  # the attempt worker ships its own span subtree
            early_stop=verdict_settled,
            deadline=deadline,
            lease_timeout=timeout,
        )
    except NoWorkersError:
        coordinator.metrics.counter("dist.degraded").inc()
        return decide_parallel(
            protocol,
            config,
            base=base,
            attempts=attempts,
            jobs=max(1, _fallback_jobs()),
            observer=obs,
            stats=stats,
            deadline=deadline,
            timeout=timeout,
            **sim_kwargs,
        )
    except TimeoutError:
        raise NonConvergenceError(
            f"protocol {protocol.name!r} did not stabilise on |C|={config.size}: "
            f"wall-clock deadline of {deadline:g}s exceeded (distributed)"
        )

    completed = cancelled = failed = 0
    verdict: Optional[bool] = None
    timed_out = 0
    for record in records:
        envelope = record.envelope or {}
        if record.state == CANCELLED:
            cancelled += 1
            continue
        if "error" in envelope:
            failed += 1
            error = envelope["error"]
            if isinstance(error, BaseException):
                raise error
            raise RemoteTaskError(str(envelope.get("error_text") or error))
        payload = envelope.get("result") or {}
        completed += 1
        merge_worker_metrics(obs, payload.get("metrics") or {})
        if verdict is None:
            # The sequential prefix: attempts the jobs=1 loop would also
            # have run.  Spans adopt in attempt order; stragglers beyond
            # the verdict merge metrics only (same rule as the pool).
            if obs is not None:
                obs.on_attempt(record.index, seeds[record.index])
            _spans.adopt(payload.get("spans"))
            if payload.get("verdict") is not None:
                verdict = payload["verdict"]
            elif payload.get("deadline_exceeded"):
                timed_out += 1
    if stats is not None:
        stats.update(
            launched=attempts,
            completed=completed,
            cancelled=cancelled,
            failed=failed,
            retries=0,
            degraded=0,
        )
    # Same digest parity as the pool: snapshot the coordinator-side
    # artifact-cache counters as gauges on the caller's registries.
    for registry in _metrics_registries(obs):
        for key, value in artifact_cache().stats().items():
            registry.gauge(f"cache.{key}").set(value)
    if verdict is None:
        detail = f", {timed_out} timed out" if timed_out else ""
        raise NonConvergenceError(
            f"protocol {protocol.name!r} did not stabilise on |C|={config.size} "
            f"within the budget ({attempts} attempts{detail})"
        )
    return verdict


# ----------------------------------------------------------------------
# Worker
# ----------------------------------------------------------------------
def run_worker(
    addr: str,
    *,
    heartbeat: float = 2.0,
    max_tasks: Optional[int] = None,
    connect_retry: float = 10.0,
) -> int:
    """Connect to the coordinator at ``addr`` and execute tasks until it
    says goodbye (or ``max_tasks`` tasks have run).  Returns the number
    of tasks executed.

    The worker is a leaf of the fan-out tree: it pins ``REPRO_JOBS=1`` so
    task functions that consult the environment never nest pools, and it
    resolves compiled artifacts through the ordinary
    :mod:`~repro.runtime.cache` path — with a shared ``REPRO_CACHE_DIR``
    that is a sub-millisecond disk hit instead of a cold compile.
    Heartbeats flow only while a task is executing (from a side thread),
    which is exactly when the coordinator is listening.
    """
    os.environ["REPRO_JOBS"] = "1"
    host, port = parse_address(addr)
    sock = _connect_with_retry(host, port, connect_retry)
    send_lock = threading.Lock()
    current_id: List[Optional[int]] = [None]
    stop = threading.Event()

    def _heartbeats() -> None:
        while not stop.wait(heartbeat):
            task_id = current_id[0]
            if task_id is None:
                continue
            try:
                with send_lock:
                    send_frame(sock, {"type": "heartbeat", "task": task_id})
            except OSError:
                return

    with send_lock:
        send_frame(
            sock,
            {
                "type": "hello",
                "pid": os.getpid(),
                "host": socket.gethostname(),
                "version": PROTOCOL_VERSION,
                "cache_dir": os.environ.get("REPRO_CACHE_DIR"),
            },
        )
    beat = threading.Thread(target=_heartbeats, daemon=True)
    beat.start()
    executed = 0
    try:
        while True:
            try:
                message = recv_frame(sock)
            except (ProtocolError, pickle.UnpicklingError, EOFError, OSError):
                break
            if message is None or message.get("type") == "bye":
                break
            if message.get("type") != "task":
                continue
            current_id[0] = message["id"]
            response = _execute_task(message)
            current_id[0] = None
            try:
                with send_lock:
                    send_frame(sock, response)
            except OSError:
                break
            executed += 1
            if max_tasks is not None and executed >= max_tasks:
                break
    finally:
        stop.set()
        try:
            sock.close()
        except OSError:
            pass
    return executed


def _connect_with_retry(host: str, port: int, window: float) -> socket.socket:
    deadline = time.monotonic() + max(0.0, window)
    delay = 0.05
    while True:
        try:
            sock = socket.create_connection((host, port), timeout=10.0)
            sock.settimeout(None)
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            return sock
        except OSError:
            if time.monotonic() >= deadline:
                raise
            time.sleep(delay)
            delay = min(delay * 2, 1.0)


def _execute_task(message: Dict[str, Any]) -> Dict[str, Any]:
    """Run one task frame; always answers, even when the task raises."""
    fn = message["fn"]
    args = message["args"]
    try:
        if message.get("trace"):
            tracer = _spans.SpanTracer()
            with _spans.activate(tracer):
                with tracer.span(str(message.get("label", "task"))):
                    result = fn(*args)
            return {
                "type": "result",
                "id": message["id"],
                "result": result,
                "spans": tracer.to_payload(),
            }
        result = fn(*args)
        return {"type": "result", "id": message["id"], "result": result, "spans": None}
    except Exception as exc:
        error: Any = exc
        try:
            pickle.dumps(exc)
        except Exception:
            error = repr(exc)
        return {
            "type": "result",
            "id": message["id"],
            "error": error,
            "error_text": traceback.format_exc(),
            "spans": None,
        }


def spawn_loopback_worker(
    addr: str,
    *,
    extra_pythonpath: Sequence[str] = (),
    env: Optional[Dict[str, str]] = None,
) -> subprocess.Popen:
    """Start a ``python -m repro worker`` subprocess connected to
    ``addr`` — the loopback convenience used by ``repro coordinate
    --workers N``, the distributed benchmarks and the test suite.

    ``extra_pythonpath`` entries are prepended to the worker's
    ``PYTHONPATH`` (after ``src``), so tasks defined in test/benchmark
    modules unpickle by reference inside the worker.
    """
    worker_env = dict(os.environ if env is None else env)
    src = str(_repo_src())
    parts = [src, *map(str, extra_pythonpath)]
    if worker_env.get("PYTHONPATH"):
        parts.append(worker_env["PYTHONPATH"])
    worker_env["PYTHONPATH"] = os.pathsep.join(dict.fromkeys(parts))
    return subprocess.Popen(
        [sys.executable, "-m", "repro", "worker", "--connect", addr],
        env=worker_env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )


def _repo_src() -> str:
    from pathlib import Path

    return str(Path(__file__).resolve().parents[2])
