"""Content-addressed cache for compiled artifacts.

The expensive compilations in this repository are pure functions of their
input structure: ``compile_program`` (program → machine → protocol) and
the per-protocol :class:`~repro.core.fastpath.TransitionTable`.  Both are
recomputed wholesale by every process that needs them — which, once runs
fan out across a process pool, means every worker redoing work the parent
already did.  This module gives those artifacts *content addresses*
(stable blake2b fingerprints of the defining structure) and a two-layer
cache:

* **in-memory** — a plain dict.  With the default ``fork`` start method
  the pool's workers inherit the parent's populated cache for free, so
  warming the cache before fan-out means no worker ever compiles;
* **on-disk** (optional) — pickle files under ``REPRO_CACHE_DIR``, written
  atomically (temp file + ``os.replace``) so concurrent workers can share
  one directory without locks.  Disk caching is *off* unless
  ``REPRO_CACHE_DIR`` is set: silently writing outside the repository
  would be a surprising default, and the in-memory layer already covers
  the dominant fork-based path.

Invalidation is by construction: the fingerprint covers every input the
compilation depends on (plus a schema version bumped when the compiled
representation changes), so a changed program or protocol simply has a
different address and never sees a stale artifact.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
from pathlib import Path
from typing import Any, Callable, Dict, Iterable, Optional

from repro.core.protocol import PopulationProtocol

#: Bumped whenever the pickled artifact layout changes incompatibly
#: (e.g. a TransitionTable slot is added): old disk entries then simply
#: miss instead of deserialising garbage.  v2: checksummed disk format.
SCHEMA_VERSION = 2

#: Disk entry layout: magic, 16-byte blake2b of the payload, payload.
#: The checksum catches torn writes and bit rot *before* ``pickle.load``
#: ever sees the bytes — unpickling attacker-grade garbage is a crash (or
#: worse), a checksum mismatch is just a quarantined miss.
_MAGIC = b"RPRC2\x00"
_DIGEST_SIZE = 16

_MISS = object()


def _blake(parts: Iterable[str]) -> str:
    h = hashlib.blake2b(digest_size=16)
    for part in parts:
        h.update(part.encode("utf-8"))
        h.update(b"\x00")
    return h.hexdigest()


def protocol_fingerprint(protocol: PopulationProtocol) -> str:
    """A stable content hash of a protocol's defining structure.

    Covers the state set (order-insensitively — the compiled table sorts
    states itself), the transition *sequence* (order matters: candidate
    order within a key is tie-break-relevant for sampling), and the input
    and accepting sets.  The display name is deliberately excluded, so
    identically-structured protocols share one compiled table.
    """
    return _blake(
        [
            f"protocol-v{SCHEMA_VERSION}",
            *sorted(map(repr, protocol.states)),
            "|delta|",
            *(repr(t) for t in protocol.transitions),
            "|I|",
            *sorted(map(repr, protocol.input_states)),
            "|O|",
            *sorted(map(repr, protocol.accepting_states)),
        ]
    )


def program_fingerprint(program: Any) -> str:
    """A stable content hash of a population program's AST.

    The AST is a tree of frozen dataclasses whose ``repr`` is a complete,
    deterministic rendering of the structure, so hashing it captures
    exactly the pipeline's input.
    """
    return _blake([f"program-v{SCHEMA_VERSION}", repr(program)])


def machine_fingerprint(machine: Any) -> str:
    """A stable content hash of a population machine's defining structure:
    registers (ordered — addressing is positional through the register
    map), pointer domains (sorted by pointer name; domain order matters
    because initial configurations take the first value) and the
    instruction sequence.  Used to key static-check results for machines,
    mirroring :func:`protocol_fingerprint` / :func:`program_fingerprint`.
    """
    return _blake(
        [
            f"machine-v{SCHEMA_VERSION}",
            *machine.registers,
            "|F|",
            *(
                f"{pointer}={tuple(domain)!r}"
                for pointer, domain in sorted(machine.pointer_domains.items())
            ),
            "|I|",
            # str(AssignInstr) abbreviates its mapping, so render the full
            # table explicitly — distinct mappings must get distinct hashes.
            *(
                f"{instr.target}:={instr.source}:"
                f"{sorted(instr.mapping.items(), key=repr)!r}"
                if hasattr(instr, "mapping")
                else str(instr)
                for instr in machine.instructions
            ),
        ]
    )


class ArtifactCache:
    """Two-layer (memory + optional disk) content-addressed store."""

    def __init__(self, directory: Optional[os.PathLike] = None):
        self.memory: Dict[str, Any] = {}
        self.directory: Optional[Path] = Path(directory) if directory else None
        if self.directory is not None:
            self.directory.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.disk_hits = 0
        self.misses = 0
        self.corrupt_entries = 0

    # -- core protocol --------------------------------------------------
    def _path(self, key: str) -> Path:
        assert self.directory is not None
        return self.directory / f"{key}.pkl"

    def _quarantine(self, path: Path) -> None:
        """Move a failed-integrity entry aside (``<name>.corrupt``) so it
        never poisons another read, while staying on disk for forensics."""
        self.corrupt_entries += 1
        try:
            os.replace(path, path.with_suffix(path.suffix + ".corrupt"))
        except OSError:
            pass  # someone else quarantined or removed it first

    def get(self, key: str) -> Any:
        """The cached value, or ``None`` on a miss (cached values are
        compiled artifacts, never ``None``).  A disk entry whose checksum
        or framing fails verification is quarantined and counts as a miss,
        never an error."""
        value = self.memory.get(key, _MISS)
        if value is not _MISS:
            self.hits += 1
            return value
        if self.directory is not None:
            path = self._path(key)
            blob = None
            try:
                with open(path, "rb") as fh:
                    blob = fh.read()
            except OSError:
                blob = None  # absent or unreadable: a plain miss
            if blob is not None:
                header = len(_MAGIC) + _DIGEST_SIZE
                digest = hashlib.blake2b(
                    blob[header:], digest_size=_DIGEST_SIZE
                ).digest()
                if (
                    len(blob) <= header
                    or not blob.startswith(_MAGIC)
                    or blob[len(_MAGIC) : header] != digest
                ):
                    self._quarantine(path)
                else:
                    try:
                        value = pickle.loads(blob[header:])
                    except Exception:
                        # Checksum held but the payload predates a code
                        # change (e.g. a renamed class): same treatment.
                        self._quarantine(path)
                        value = _MISS
            if value is not _MISS:
                self.memory[key] = value
                self.disk_hits += 1
                return value
        self.misses += 1
        return None

    def put(self, key: str, value: Any) -> None:
        self.memory[key] = value
        if self.directory is not None:
            # Atomic publish: concurrent workers may race on the same key;
            # both write the same content, and os.replace makes whichever
            # lands last the (identical) winner with no torn reads.
            payload = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
            digest = hashlib.blake2b(payload, digest_size=_DIGEST_SIZE).digest()
            fd, tmp = tempfile.mkstemp(dir=self.directory, suffix=".tmp")
            try:
                with os.fdopen(fd, "wb") as fh:
                    fh.write(_MAGIC)
                    fh.write(digest)
                    fh.write(payload)
                os.replace(tmp, self._path(key))
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise

    def get_or_build(self, key: str, builder: Callable[[], Any]) -> Any:
        value = self.get(key)
        if value is None:
            value = builder()
            self.put(key, value)
        return value

    def clear(self) -> None:
        self.memory.clear()
        if self.directory is not None:
            for path in list(self.directory.glob("*.pkl")) + list(
                self.directory.glob("*.pkl.corrupt")
            ):
                try:
                    path.unlink()
                except OSError:
                    pass

    def stats(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "disk_hits": self.disk_hits,
            "misses": self.misses,
            "entries": len(self.memory),
            "corrupt_entries": self.corrupt_entries,
        }


_GLOBAL_CACHE: Optional[ArtifactCache] = None


def artifact_cache() -> ArtifactCache:
    """The process-wide cache (created lazily; disk layer enabled iff
    ``REPRO_CACHE_DIR`` is set when first used)."""
    global _GLOBAL_CACHE
    if _GLOBAL_CACHE is None:
        _GLOBAL_CACHE = ArtifactCache(os.environ.get("REPRO_CACHE_DIR") or None)
    return _GLOBAL_CACHE


def reset_artifact_cache() -> None:
    """Drop the process-wide cache (tests; REPRO_CACHE_DIR changes)."""
    global _GLOBAL_CACHE
    _GLOBAL_CACHE = None


# ----------------------------------------------------------------------
# Cached compilations
# ----------------------------------------------------------------------
_LAYER_COUNTERS = {
    "memory": "cache.memory_hit",
    "disk": "cache.disk_hit",
    "miss": "cache.miss",
}


def _note_layer(sp, cache: ArtifactCache, hits_before: int, disk_before: int) -> str:
    """Record *which* cache layer answered a lookup.

    Sets the span's ``layer`` attribute and bumps a matching
    ``cache.memory_hit`` / ``cache.disk_hit`` / ``cache.miss`` counter on
    the ambient tracer's metrics registry — the disk counter is what lets
    a cross-process warm start (second process, shared ``REPRO_CACHE_DIR``)
    be asserted distinctly from an in-memory hit, instead of a silent
    cold recompile hiding behind the same "hit" flag.
    """
    from repro.observability import spans as _spans

    if cache.hits > hits_before:
        layer = "memory"
    elif cache.disk_hits > disk_before:
        layer = "disk"
    else:
        layer = "miss"
    if sp is not None:
        sp.attrs["layer"] = layer
    tracer = _spans.current()
    if tracer is not None and tracer.metrics is not None:
        tracer.metrics.counter(_LAYER_COUNTERS[layer]).inc()
    return layer


def cached_transition_table(
    protocol: PopulationProtocol, cache: Optional[ArtifactCache] = None
):
    """The protocol's compiled :class:`TransitionTable`, via the cache.

    Resolution order: the table already attached to this instance → the
    cache (memory, then disk) keyed by the protocol's fingerprint → a
    fresh compilation (which is published to the cache).  The result is
    attached to the instance either way, so the per-simulation fast path
    (:func:`repro.core.fastpath.get_table`) stays a plain attribute read.
    """
    from repro.core.fastpath import TransitionTable
    from repro.observability import spans as _spans

    table = getattr(protocol, "_fastpath_table", None)
    if table is None:
        cache = cache if cache is not None else artifact_cache()
        key = f"table-{protocol_fingerprint(protocol)}"
        sp = _spans.begin("cache:table", protocol=protocol.name)
        misses_before = cache.misses
        hits_before, disk_before = cache.hits, cache.disk_hits
        try:
            table = cache.get_or_build(key, lambda: TransitionTable(protocol))
        except BaseException:
            _spans.finish(sp, "error")
            raise
        if sp is not None:
            sp.attrs["hit"] = cache.misses == misses_before
        _note_layer(sp, cache, hits_before, disk_before)
        _spans.finish(sp)
        protocol._fastpath_table = table
    return table


def cached_compile_program(
    program: Any,
    name: str = "pipeline",
    *,
    observer=None,
    cache: Optional[ArtifactCache] = None,
):
    """A :class:`~repro.conversion.pipeline.PipelineResult` for
    ``program``, compiled at most once per content address.

    ``name`` is part of the key (it is baked into the produced artefact
    names).  ``observer`` only sees stage events on a miss — a cache hit
    does no observable work.
    """
    from repro.conversion.pipeline import compile_program
    from repro.observability import spans as _spans

    cache = cache if cache is not None else artifact_cache()
    key = f"pipeline-{name}-{program_fingerprint(program)}"
    sp = _spans.begin("cache:pipeline", name=name)
    misses_before = cache.misses
    hits_before, disk_before = cache.hits, cache.disk_hits
    try:
        result = cache.get_or_build(
            key, lambda: compile_program(program, name, observer=observer)
        )
    except BaseException:
        _spans.finish(sp, "error")
        raise
    if sp is not None:
        sp.attrs["hit"] = cache.misses == misses_before
    _note_layer(sp, cache, hits_before, disk_before)
    _spans.finish(sp)
    return result


def cached_compile_threshold_protocol(
    n: int,
    *,
    error_checking: bool = True,
    observer=None,
    cache: Optional[ArtifactCache] = None,
):
    """Theorem 1's compiled pipeline for ``n`` levels, via the cache."""
    from repro.lipton.construction import build_threshold_program

    program = build_threshold_program(n, error_checking=error_checking)
    return cached_compile_program(
        program, name=f"lipton-n{n}", observer=observer, cache=cache
    )
