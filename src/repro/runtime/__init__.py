"""Parallel execution runtime: process-pool fan-out for independent runs.

Everything above a *single* simulation in this repository is
embarrassingly parallel — ``decide`` attempts, experiment trials,
benchmark rounds are independent samples of independent random streams.
This package turns that independence into throughput without giving up
reproducibility:

* :mod:`repro.runtime.seeds` — deterministic blake2b *seed trees*: the
  seed of any task is a pure function of ``(base seed, task path)``, so
  results are identical whether tasks run serially, in any worker
  interleaving, or are re-run in isolation;
* :mod:`repro.runtime.cache` — a content-addressed artifact cache
  (in-memory + on-disk) for the expensive compile pipeline
  (program → machine → protocol) and per-protocol
  :class:`~repro.core.fastpath.TransitionTable` compilations, so workers
  never redo a compilation the parent (or a previous run) already did;
* :mod:`repro.runtime.pool` — the process-pool engine:
  :func:`~repro.runtime.pool.parallel_map` for deterministic fan-out,
  :func:`~repro.runtime.pool.decide_parallel` with first-verdict early
  cancellation, and per-worker :class:`~repro.observability.metrics.Metrics`
  aggregation back into the parent registry;
* :mod:`repro.runtime.distributed` — the multi-host extension of the
  same contract: a TCP work-stealing coordinator
  (:func:`~repro.runtime.distributed.distributed_map` /
  :func:`~repro.runtime.distributed.decide_distributed`), workers
  (``python -m repro worker``), heartbeats/leases/re-dispatch, and
  graceful degradation back to the in-process pool;
* :mod:`repro.runtime.ledger` — the resumable on-disk journal of
  completed ``(task_path, result)`` pairs, keyed by provenance
  fingerprint, that lets an interrupted grid restart without redoing
  finished work.

``jobs`` semantics everywhere: ``jobs=1`` (the default) runs the exact
sequential code path, bit-identical to the pre-parallel behaviour;
``jobs=None`` consults the ``REPRO_JOBS`` environment variable (default
1); ``jobs=0`` means "all cores"; a ``"host:port"`` string (argument or
``REPRO_JOBS``) dispatches to the distributed cluster at that address.
"""

from repro.runtime.cache import (
    ArtifactCache,
    artifact_cache,
    cached_compile_program,
    cached_compile_threshold_protocol,
    cached_transition_table,
    program_fingerprint,
    protocol_fingerprint,
)
from repro.runtime.distributed import (
    Coordinator,
    NoWorkersError,
    decide_distributed,
    distributed_map,
    get_cluster,
    run_worker,
    spawn_loopback_worker,
)
from repro.runtime.ledger import TaskLedger, job_fingerprint, resolve_ledger, task_key
from repro.runtime.pool import (
    decide_parallel,
    merge_worker_metrics,
    parallel_map,
    resolve_dispatch,
    resolve_jobs,
)
from repro.runtime.seeds import SeedTree, derive_child, derive_seed_path

__all__ = [
    "SeedTree",
    "derive_child",
    "derive_seed_path",
    "ArtifactCache",
    "artifact_cache",
    "protocol_fingerprint",
    "program_fingerprint",
    "cached_compile_program",
    "cached_compile_threshold_protocol",
    "cached_transition_table",
    "parallel_map",
    "decide_parallel",
    "merge_worker_metrics",
    "resolve_jobs",
    "resolve_dispatch",
    "Coordinator",
    "NoWorkersError",
    "distributed_map",
    "decide_distributed",
    "get_cluster",
    "run_worker",
    "spawn_loopback_worker",
    "TaskLedger",
    "task_key",
    "job_fingerprint",
    "resolve_ledger",
]
