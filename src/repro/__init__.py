"""repro — reproduction of *Population Protocols Decide Double-exponential
Thresholds* (Philipp Czerner, PODC 2023).

Public API overview
-------------------

* :mod:`repro.core` — the population-protocol model: multiset
  configurations, the step relation, schedulers, sampled simulation, and an
  exact stable-computation checker.
* :mod:`repro.programs` — population programs (Section 4): AST, size
  metric, validation and a randomized fair interpreter.
* :mod:`repro.lipton` — the paper's construction (Sections 5–6): level
  constants, configuration classification, and the O(n)-size program
  deciding x ≥ k for k ≥ 2^(2^(n-1)).
* :mod:`repro.machines` — population machines (Section 7.1) and the
  program → machine compiler (Section 7.2).
* :mod:`repro.conversion` — machine → protocol conversion (Section 7.3)
  and the end-to-end pipeline of Theorem 1.
* :mod:`repro.baselines` — classic and succinct threshold protocols,
  majority and remainder, for Table 1 comparisons.
* :mod:`repro.analysis` — state complexity, 1-awareness and
  almost-self-stabilisation experiments.
* :mod:`repro.observability` — structured tracing (JSONL), metrics and
  profiling hooks; every execution driver accepts ``observer=``.
* :mod:`repro.experiments` — drivers that regenerate every table and
  figure of the paper (see EXPERIMENTS.md).
"""

from repro.core import (
    Multiset,
    PopulationProtocol,
    Threshold,
    Transition,
    decide,
    simulate,
    stabilisation_verdict,
)

__version__ = "1.0.0"

__all__ = [
    "Multiset",
    "PopulationProtocol",
    "Transition",
    "Threshold",
    "simulate",
    "decide",
    "stabilisation_verdict",
    "__version__",
]
