"""Benchmark F4 — Figure 4: instruction → transition gadget families."""

from conftest import once

from repro.experiments import run_figure4


def test_figure4_gadgets(benchmark):
    report = once(benchmark, run_figure4)
    print("\ntransitions per instruction:", report.per_instruction_counts)
    assert all(report.facts.values()), report.facts
    # The move gadget needs the six transition families of App. B.3.
    assert report.per_instruction_counts[1] >= 6


def test_conversion_throughput(benchmark, thr2_pipeline):
    """Micro-benchmark: convert the thr2 machine to a protocol."""
    from repro.conversion import convert_machine

    conversion = benchmark(convert_machine, thr2_pipeline.machine)
    assert conversion.protocol.state_count == thr2_pipeline.inner_state_count
