"""Benchmark X4 — transient faults: recovery under mid-run corruption.

Extends the X2 ablation from adversarial *initialisation* to transient
*perturbation*: runs start from the good configuration, a deterministic
fault plan corrupts registers mid-flight, and the §5.2 error-checking
machinery must restart its way back to the right verdict while the
assertion-stripped variant fails measurably more often.

Headline gauges land in ``BENCH_simulator.json`` under ``chaos.*`` —
deliberately *not* ``*.ops_per_second``, so the perf regression gate
ignores them (they are correctness rates, not throughput):

* ``chaos.transient.with_checks_rate`` / ``without_checks_rate``
* ``chaos.transient.rate_gap`` — the resilience margin
"""

from conftest import once, record_benchmark

from repro.experiments import run_transient_faults


def test_transient_fault_recovery(benchmark, bench_metrics):
    report = once(
        benchmark, run_transient_faults, 2, trials_per_total=2, seed=4
    )
    print("\n" + report.render())
    record_benchmark(bench_metrics, "chaos.transient", benchmark)

    # The full construction recovers from every transient hit …
    assert report.with_checks_correct == report.with_checks_total
    # … while the stripped variant visibly does not.
    assert report.without_checks_correct < report.without_checks_total
    assert report.checks_help

    # The protocol-level probe ran each scheduler family through the
    # mixed fault plan end-to-end; every family must reach a verdict.
    probes = {p.family: p for p in report.probes}
    assert set(probes) == {
        "fast_enabled",
        "fast_uniform",
        "legacy_enabled",
        "legacy_uniform",
    }
    assert all(p.verdict is not None for p in report.probes)

    bench_metrics.gauge("chaos.transient.with_checks_rate").set(
        report.with_checks_rate
    )
    bench_metrics.gauge("chaos.transient.without_checks_rate").set(
        report.without_checks_rate
    )
    bench_metrics.gauge("chaos.transient.rate_gap").set(
        report.with_checks_rate - report.without_checks_rate
    )
