"""Multi-run throughput benchmarks for the parallel runtime.

Measures the batch Monte Carlo fan-out (``parallel_map`` at ``jobs=1``
vs ``jobs=4``) and the compile-artifact cache (cold build vs warm
lookup).  Headline numbers land in the shared metrics registry and hence
in ``BENCH_simulator.json``:

* ``multi_run.jobs1.ops_per_second`` / ``multi_run.jobs4.ops_per_second``
  — simulation runs per second, gated by ``bench --check``;
* ``multi_run.speedup`` / ``multi_run.scaling_efficiency`` /
  ``multi_run.cpu_count`` — plain gauges recording how well the pool
  scales *on the machine that ran the suite*.  On a single-core box a
  "speedup" is vacuous (four workers time-slicing one core measure
  scheduler overhead, not scaling), so the suite *skips* the scaling
  gauges there and records ``multi_run.skipped_reason`` instead of
  publishing a meaningless number; the scaling gauges appear only when
  ``cpu_count >= 2``.
* ``compile_cache.*`` — the cost of a cold Theorem 1 pipeline
  compilation vs a content-addressed cache hit.
"""

import os
import time

from conftest import record_benchmark

from repro.lipton import build_threshold_program, canonical_restart_policy
from repro.programs import run_program
from repro.runtime.cache import (
    artifact_cache,
    cached_compile_threshold_protocol,
    reset_artifact_cache,
)
from repro.runtime.pool import parallel_map
from repro.runtime.seeds import derive_seed_path

#: Independent Monte Carlo runs per batch and the step budget of each.
#: The program interpreter runs its full budget (no early exit), so a
#: batch member is ≈ 0.1 s of pure CPU — heavy enough to amortise pool
#: start-up when the fan-out actually has cores to use.
RUNS = 8
RUN_STEPS = 150_000

_WORKER_STATE = {}


def simulate_run_task(seed):
    """One batch member (module-level so the pool can pickle it).  The
    restart policy closes over a local chooser and cannot cross the
    pickle boundary, so each process rebuilds it once and memoises."""
    if "artifacts" not in _WORKER_STATE:
        _WORKER_STATE["artifacts"] = (
            build_threshold_program(2),
            canonical_restart_policy(2),
        )
    program, policy = _WORKER_STATE["artifacts"]
    return run_program(
        program,
        {"x1": 10},
        seed=seed,
        restart_policy=policy,
        max_steps=RUN_STEPS,
    ).steps


def _batch_tasks():
    return [(derive_seed_path(0, "bench-multi-run", i),) for i in range(RUNS)]


def test_multi_run_throughput_jobs1(benchmark, bench_metrics):
    tasks = _batch_tasks()
    results = benchmark.pedantic(
        parallel_map, args=(simulate_run_task, tasks), kwargs={"jobs": 1},
        rounds=2, iterations=1,
    )
    record_benchmark(bench_metrics, "multi_run.jobs1", benchmark, units=RUNS)
    assert results == [RUN_STEPS] * RUNS


def test_multi_run_throughput_jobs4(benchmark, bench_metrics):
    tasks = _batch_tasks()
    results = benchmark.pedantic(
        parallel_map, args=(simulate_run_task, tasks), kwargs={"jobs": 4},
        rounds=2, iterations=1,
    )
    record_benchmark(bench_metrics, "multi_run.jobs4", benchmark, units=RUNS)

    # The fan-out must be invisible in the results: same tasks, same
    # seed-tree seeds, same outcomes as the in-process comprehension.
    assert results == [simulate_run_task(*t) for t in tasks]

    cores = os.cpu_count() or 1
    bench_metrics.gauge("multi_run.cpu_count").set(cores)
    if cores < 2:
        # A single-core box cannot measure pool scaling: four workers
        # time-slice one core and the ratio reads ≈ 1 regardless of how
        # well the pool works.  Record *why* the gauges are absent (the
        # string gauge only ever lands in the bench JSON, which is not
        # exported to Prometheus) rather than a vacuous speedup.
        bench_metrics.gauge("multi_run.skipped_reason").set(
            f"speedup/scaling_efficiency skipped: cpu_count={cores} < 2"
        )
        return
    ops1 = bench_metrics.gauge("multi_run.jobs1.ops_per_second").value
    ops4 = bench_metrics.gauge("multi_run.jobs4.ops_per_second").value
    if ops1 and ops4:  # absent under --benchmark-disable
        speedup = ops4 / ops1
        bench_metrics.gauge("multi_run.speedup").set(speedup)
        bench_metrics.gauge("multi_run.scaling_efficiency").set(
            speedup / min(4, cores)
        )
        if cores >= 4:
            # Lenient floor: shared CI runners throttle, but 4 workers on
            # ≥ 4 cores must clearly beat the sequential loop.
            assert speedup > 1.2, f"jobs=4 speedup {speedup:.2f}x on {cores} cores"


def test_compile_cache_cold_vs_warm(benchmark, bench_metrics):
    reset_artifact_cache()
    start = time.perf_counter()
    cold_result = cached_compile_threshold_protocol(1)
    cold = time.perf_counter() - start
    assert artifact_cache().stats()["misses"] >= 1

    warm_result = benchmark(cached_compile_threshold_protocol, 1)
    record_benchmark(bench_metrics, "compile_cache.warm", benchmark, units=1)
    assert warm_result is cold_result  # hit returns the cached object

    bench_metrics.gauge("compile_cache.cold_seconds").set(cold)
    stats = getattr(getattr(benchmark, "stats", None), "stats", None)
    if stats is not None and stats.mean:
        bench_metrics.gauge("compile_cache.speedup").set(cold / stats.mean)
