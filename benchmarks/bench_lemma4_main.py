"""Benchmark L4 — Lemma 4: Main's trichotomy over all configurations of a
small total (exhaustive) and a sample of a larger one."""

from conftest import once

from repro.experiments import run_lemma4


def test_lemma4_exhaustive_total3(benchmark):
    report = once(benchmark, run_lemma4, 1, 3, seed=0)
    print(f"\nn=1 m=3: {report.consistent}/{len(report.trials)} consistent")
    assert report.consistent == len(report.trials) == 35


def test_lemma4_sampled_n2(benchmark):
    report = once(
        benchmark, run_lemma4, 2, 5, sample=30, seed=2,
        quiet_window=50_000, max_steps=5_000_000,
    )
    print(f"\nn=2 m=5: {report.consistent}/{len(report.trials)} consistent")
    assert report.consistent == len(report.trials)
