"""Benchmark F2 — Figure 2: the five configuration-type examples."""

from conftest import once

from repro.experiments import run_figure2


def test_figure2_examples(benchmark):
    report = once(benchmark, run_figure2, 3, 3)
    print("\n" + report.render())
    assert report.all_match


def test_classification_throughput(benchmark):
    """Micro-benchmark: classify many random configurations (n = 4)."""
    import random

    from repro.lipton import all_registers, classify
    from repro.programs import uniform_composition

    rng = random.Random(0)
    registers = tuple(all_registers(4))
    configs = [uniform_composition(50, registers, rng) for _ in range(300)]

    def classify_all():
        return [classify(c, 4).behaviour for c in configs]

    behaviours = benchmark(classify_all)
    assert len(behaviours) == 300
