"""Benchmarks for the telemetry stack: span-tracing overhead, Prometheus
rendering throughput, and worker span adoption.

Not a paper artefact — these gate the observability layer's promise that
instrumentation is free when off and cheap when on.  Gauges land in the
shared bench JSON (``span_tracer.*``, ``prometheus_render.*``,
``span_adopt.*``) next to the simulator numbers."""

import time

from conftest import record_benchmark

from repro.baselines import binary_threshold_protocol
from repro.core import Multiset, simulate
from repro.observability.export import metrics_to_prometheus
from repro.observability.metrics import Metrics
from repro.observability.spans import SpanTracer, activate


def test_span_tracing_overhead(benchmark, bench_metrics):
    """Acceptance gate: an *active* tracer costs one span per simulate
    call — amortised to nothing over a long run — and the no-tracer path
    is a single ContextVar read, so both ratios must stay ≈1."""
    pp = binary_threshold_protocol(13)
    config = Multiset({"p0": 40})
    kwargs = dict(seed=1, max_interactions=10_000, convergence_window=10**9)

    def timed(tracer, rounds=7):
        best = float("inf")
        for _ in range(rounds):
            start = time.perf_counter()
            if tracer is None:
                simulate(pp, config, **kwargs)
            else:
                with activate(tracer):
                    simulate(pp, config, **kwargs)
            best = min(best, time.perf_counter() - start)
        return best

    timed(None, rounds=1)  # warm caches before measuring
    bare = timed(None)
    traced = timed(SpanTracer())
    ratio = traced / bare
    bench_metrics.gauge("span_tracer.bare_seconds").set(bare)
    bench_metrics.gauge("span_tracer.traced_seconds").set(traced)
    bench_metrics.gauge("span_tracer.overhead_ratio").set(ratio)
    # One span per 10k-interaction run; generous noise headroom on the
    # ≤5% budget, mirroring the null-observer gate.
    assert ratio < 1.15, f"span tracing overhead {ratio:.3f}x"

    interactions = benchmark(
        lambda: simulate(pp, config, **kwargs).interactions
    )
    record_benchmark(bench_metrics, "span_tracer", benchmark, units=interactions)
    assert interactions > 500


def _populated_registry(families: int = 50) -> Metrics:
    metrics = Metrics()
    for i in range(families):
        metrics.counter(f"transition[t{i}]").inc(i)
        metrics.gauge(f"gauge{i}").set(i * 0.5)
        hist = metrics.histogram(f"hist{i}.seconds")
        for value in (0.001 * (i + 1), 0.1, 2.0):
            hist.observe(value)
    return metrics


def test_prometheus_render_throughput(benchmark, bench_metrics):
    metrics = _populated_registry()
    text = benchmark(metrics_to_prometheus, metrics)
    record_benchmark(
        bench_metrics, "prometheus_render", benchmark, units=len(text.splitlines())
    )
    assert "repro_transition_total" in text


def test_span_adoption_throughput(benchmark, bench_metrics):
    """Adopting a 100-span worker payload, as decide_parallel does once
    per attempt."""
    worker = SpanTracer()
    with worker.span("attempt:0"):
        for i in range(99):
            with worker.span(f"step:{i % 10}"):
                pass
    payload = worker.to_payload()

    def adopt():
        parent = SpanTracer()
        with parent.span("decide"):
            parent.adopt(payload)
        return len(parent)

    spans = benchmark(adopt)
    record_benchmark(bench_metrics, "span_adopt", benchmark, units=spans)
    assert spans == 101
