"""Benchmark TH3 — Theorem 3: the O(n)-size population program deciding
m ≥ k_n, with behavioural sweeps across the boundary for n = 1, 2, 3."""

import pytest
from conftest import once

from repro.experiments import run_theorem3_decisions, run_theorem3_sizes


def test_theorem3_sizes(benchmark):
    report = once(benchmark, run_theorem3_sizes, 10)
    print("\n" + report.render())
    assert report.linear_size()
    assert all(row.bound_met for row in report.rows)


@pytest.mark.parametrize("n", [1, 2, 3])
def test_theorem3_decisions(benchmark, n):
    trials = once(benchmark, run_theorem3_decisions, n, seed=11 * n)
    assert all(t.correct for t in trials), [
        (t.total, t.got, t.expected) for t in trials if not t.correct
    ]
