"""Benchmark TH5 — Theorem 5 / Props 14 & 16: conversion overhead and
lockstep machine ↔ protocol co-simulation."""

from conftest import once

from repro.experiments import conversion_rows, lockstep_check, render_conversion


def test_conversion_sizes(benchmark):
    rows = once(benchmark, conversion_rows)
    print("\n" + render_conversion(rows))
    assert all(r.bound_holds for r in rows)
    # Proposition 14: machine size within a constant factor of program size.
    assert all(r.machine_size < 8 * r.program_size for r in rows)
    # Theorem 5: |Q'| = 2 |Q*|.
    assert all(r.final_states == 2 * r.inner_states for r in rows)


def test_lockstep_cosimulation(benchmark, thr2_pipeline):
    verified = once(
        benchmark, lockstep_check, thr2_pipeline, {"x": 3}, seed=0,
        interactions=100_000,
    )
    print(f"\nverified machine steps via pi-images: {verified}")
    assert verified > 5_000
