"""Benchmark X3 — convergence cost vs levels (runtime, out of the paper's
scope, quantified: steps and restarts until stabilisation grow steeply
with n, which is why the paper notes that runtime optimisation is left to
standard techniques)."""

from conftest import once

from repro.experiments import run_convergence


def test_convergence_scaling(benchmark):
    report = once(benchmark, run_convergence, 3, trials=3, seed=1)
    print("\n" + report.render())
    m1 = report.median_steps(1, True)
    m2 = report.median_steps(2, True)
    m3 = report.median_steps(3, True)
    print(f"median accept steps: n=1 {m1}, n=2 {m2}, n=3 {m3}")
    assert m1 is not None and m2 is not None and m3 is not None
    # Steep growth: each level multiplies the verification cost.
    assert m1 < m2 < m3
    assert m3 > 10 * m2
