"""Distributed runtime benchmarks: loopback dispatch overhead.

The distributed coordinator's promise is that sharding work over TCP
costs almost nothing when the work itself dominates.  Headline numbers:

* ``dist.loopback.ops_per_second`` — simulation runs per second through
  one loopback worker, gated by ``bench --check``;
* ``dist.dispatch_overhead_ratio`` — distributed wall-clock over the
  *in-worker* compute time of the same run (each task self-times around
  the real workload), min over rounds; asserted ``<= 1.10`` in-suite.
  This is the acceptance bar for the framing/dispatch path, measured
  within one process pair so it cannot be polluted by per-process
  interpreter variance;
* ``dist.loopback_vs_local_ratio`` — the naive comparison against an
  in-process ``parallel_map(jobs=1)`` of the same batch.  Informational
  only: the interpreter workload is dict-heavy, and per-process hash
  randomisation alone moves its runtime by up to ~35% between processes
  (measured on the bench box), which swamps any real dispatch cost.
  Recorded so the comparison is visible, never gated;
* ``dist.two_workers.ops_per_second`` / ``dist.two_workers.speedup`` —
  pool-style scaling across two loopback workers.  On a single-core box
  two workers time-slice one core and the "speedup" measures scheduler
  overhead, so (like ``multi_run``) the suite records
  ``dist.skipped_reason`` instead of a vacuous number.

The batch is the same workload as ``bench_parallel_runtime`` (eight
~0.1 s interpreter runs on seed-tree seeds), so the distributed and
pooled numbers in ``BENCH_simulator.json`` are directly comparable.
"""

import os
import time
from pathlib import Path

import pytest

from bench_parallel_runtime import RUNS, RUN_STEPS, _batch_tasks, simulate_run_task

from repro.runtime.distributed import get_cluster, spawn_loopback_worker
from repro.runtime.pool import parallel_map

#: Workers must import this directory's modules to unpickle the task fn.
BENCH_DIR = str(Path(__file__).resolve().parent)

#: Timing rounds per side (min over rounds absorbs scheduler noise).
ROUNDS = 3


def timed_run_task(seed):
    """The bench workload, self-timed: lets the overhead measurement
    separate in-worker compute from everything the dispatch path adds
    (framing, pickling, scheduling, the result round-trip)."""
    start = time.perf_counter()
    result = simulate_run_task(seed)
    return (result, time.perf_counter() - start)


@pytest.fixture(scope="module")
def loopback_cluster():
    coordinator = get_cluster("127.0.0.1:0")
    procs = [
        spawn_loopback_worker(coordinator.address, extra_pythonpath=[BENCH_DIR])
    ]
    # Warm both sides before any timing: the worker's interpreter start
    # and per-process program build, and the in-process twin's memoised
    # artifacts — so the measured rounds compare steady states.
    warm = parallel_map(
        timed_run_task, _batch_tasks(), jobs=coordinator.address
    )
    assert [r for r, _ in warm] == [RUN_STEPS] * RUNS
    parallel_map(simulate_run_task, _batch_tasks(), jobs=1)
    yield coordinator, procs
    coordinator.close()
    for proc in procs:
        proc.wait(timeout=30)


def _record_side(metrics, name, times):
    best, mean = min(times), sum(times) / len(times)
    metrics.gauge(f"{name}.min_seconds").set(best)
    metrics.gauge(f"{name}.mean_seconds").set(mean)
    metrics.gauge(f"{name}.rounds").set(len(times))
    metrics.gauge(f"{name}.ops_per_second").set(RUNS / mean)


def test_dispatch_overhead_ratio(bench_metrics, loopback_cluster):
    coordinator, _ = loopback_cluster
    local_times, dist_times, overheads = [], [], []
    for _ in range(ROUNDS):
        start = time.perf_counter()
        local = parallel_map(simulate_run_task, _batch_tasks(), jobs=1)
        local_times.append(time.perf_counter() - start)

        start = time.perf_counter()
        out = parallel_map(
            timed_run_task, _batch_tasks(), jobs=coordinator.address
        )
        wall = time.perf_counter() - start
        dist_times.append(wall)
        compute = sum(inner for _, inner in out)
        overheads.append(wall / compute)

        # Bit-identical to the sequential comprehension: same seed tree,
        # same results, different hardware.
        assert [r for r, _ in out] == local == [RUN_STEPS] * RUNS

    _record_side(bench_metrics, "dist.jobs1", local_times)
    _record_side(bench_metrics, "dist.loopback", dist_times)
    bench_metrics.gauge("dist.loopback_vs_local_ratio").set(
        min(dist_times) / min(local_times)
    )

    ratio = min(overheads)
    bench_metrics.gauge("dist.dispatch_overhead_ratio").set(ratio)
    assert ratio <= 1.10, (
        f"distributed dispatch overhead {ratio:.3f}x over in-worker "
        f"compute (walls {[f'{t:.3f}' for t in dist_times]})"
    )


def test_two_worker_scaling(bench_metrics, loopback_cluster):
    coordinator, procs = loopback_cluster
    cores = os.cpu_count() or 1
    if cores < 2:
        # Same contract as multi_run: a single core cannot measure
        # scaling across workers, so record why the gauges are absent.
        bench_metrics.gauge("dist.skipped_reason").set(
            f"two_workers gauges skipped: cpu_count={cores} < 2"
        )
        return
    procs.append(
        spawn_loopback_worker(coordinator.address, extra_pythonpath=[BENCH_DIR])
    )
    deadline = time.monotonic() + 30
    while coordinator.workers_alive() < 2:
        if time.monotonic() > deadline:
            pytest.fail("second loopback worker failed to connect")
        coordinator.poll()
        time.sleep(0.05)
    parallel_map(simulate_run_task, _batch_tasks(), jobs=coordinator.address)
    start = time.perf_counter()
    results = parallel_map(
        simulate_run_task, _batch_tasks(), jobs=coordinator.address
    )
    elapsed = time.perf_counter() - start
    assert results == [RUN_STEPS] * RUNS
    bench_metrics.gauge("dist.two_workers.ops_per_second").set(RUNS / elapsed)
    one = bench_metrics.gauge("dist.loopback.min_seconds").value
    if one:
        bench_metrics.gauge("dist.two_workers.speedup").set(one / elapsed)
