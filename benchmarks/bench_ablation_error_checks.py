"""Benchmark X2 — ablation: strip the §5.2 error-checking machinery.

The bare Lipton counter misbehaves under adversarial initialisation; the
full construction does not — quantifying the paper's central technical
contribution."""

from conftest import once

from repro.experiments import run_ablation


def test_ablation_error_checks(benchmark):
    report = once(benchmark, run_ablation, 2, trials_per_total=2, seed=4)
    print("\n" + report.render())
    assert report.checks_help
    s = report.summary
    assert s.with_checks_correct == s.with_checks_total
    assert s.without_checks_correct < s.without_checks_total
