"""Performance micro-benchmarks for the simulation substrate.

Not a paper artefact — these track the throughput of the schedulers,
interpreters and the exact checker so regressions in the substrate are
visible alongside the reproduction benchmarks."""

import random

import pytest

from repro.baselines import binary_threshold_protocol, majority_protocol
from repro.core import (
    EnabledTransitionScheduler,
    Multiset,
    UniformPairScheduler,
    simulate,
    stabilisation_verdict,
)
from repro.lipton import build_threshold_program, canonical_restart_policy
from repro.machines import lower_program, run_machine
from repro.programs import run_program


def test_uniform_scheduler_throughput(benchmark):
    pp = majority_protocol()
    config = Multiset({"X": 600, "Y": 400})

    def run():
        return simulate(
            pp,
            config,
            seed=1,
            scheduler=UniformPairScheduler(),
            max_interactions=20_000,
            convergence_window=10**9,
        ).interactions

    interactions = benchmark(run)
    # The majority instance may reach consensus (silence) slightly early.
    assert interactions > 5_000


def test_enabled_scheduler_throughput(benchmark):
    pp = binary_threshold_protocol(13)
    config = Multiset({"p0": 40})

    def run():
        return simulate(
            pp,
            config,
            seed=1,
            max_interactions=10_000,
            convergence_window=10**9,
        ).interactions

    interactions = benchmark(run)
    # The accepting run turns silent (all-TOP) once consensus is complete.
    assert interactions > 1_000


def test_program_interpreter_throughput(benchmark):
    program = build_threshold_program(2)
    policy = canonical_restart_policy(2)

    def run():
        return run_program(
            program,
            {"x1": 10},
            seed=7,
            restart_policy=policy,
            max_steps=50_000,
        ).steps

    assert benchmark(run) == 50_000


def test_machine_interpreter_throughput(benchmark):
    machine = lower_program(build_threshold_program(1), "lipton1")

    def run():
        return run_machine(
            machine, {"x1": 3}, seed=3, max_steps=50_000, quiet_window=None
        ).steps

    assert benchmark(run) == 50_000


def test_exact_checker_throughput(benchmark):
    pp = binary_threshold_protocol(6)
    config = Multiset({"p0": 7})

    verdict = benchmark(stabilisation_verdict, pp, config, 500_000)
    assert verdict is True
