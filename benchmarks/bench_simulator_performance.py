"""Performance micro-benchmarks for the simulation substrate.

Not a paper artefact — these track the throughput of the schedulers,
interpreters and the exact checker so regressions in the substrate are
visible alongside the reproduction benchmarks.  Headline numbers are
recorded into the shared metrics registry and land in
``BENCH_simulator.json`` (see ``conftest.record_benchmark``)."""

import time

import pytest

from conftest import record_benchmark

from repro.baselines import binary_threshold_protocol, majority_protocol
from repro.core import (
    EnabledTransitionScheduler,
    FastUniformScheduler,
    Multiset,
    UniformPairScheduler,
    simulate,
    stabilisation_verdict,
)
from repro.lipton import build_threshold_program, canonical_restart_policy
from repro.machines import lower_program, run_machine
from repro.observability import NULL_OBSERVER
from repro.programs import run_program


def test_uniform_scheduler_throughput(benchmark, bench_metrics):
    pp = majority_protocol()
    config = Multiset({"X": 600, "Y": 400})

    def run():
        return simulate(
            pp,
            config,
            seed=1,
            scheduler=FastUniformScheduler(),
            max_interactions=20_000,
            convergence_window=10**9,
        ).interactions

    interactions = benchmark(run)
    record_benchmark(
        bench_metrics, "uniform_scheduler", benchmark, units=interactions
    )
    # The majority instance may reach consensus (silence) slightly early.
    assert interactions > 5_000


def test_enabled_scheduler_throughput(benchmark, bench_metrics):
    pp = binary_threshold_protocol(13)
    config = Multiset({"p0": 40})

    def run():
        return simulate(
            pp,
            config,
            seed=1,
            max_interactions=10_000,
            convergence_window=10**9,
        ).interactions

    interactions = benchmark(run)
    record_benchmark(
        bench_metrics, "enabled_scheduler", benchmark, units=interactions
    )
    # The accepting run turns silent (all-TOP) once consensus is complete;
    # the fast scheduler's trajectory goes silent a little earlier than the
    # legacy one did under the same seed.
    assert interactions > 500


def test_program_interpreter_throughput(benchmark, bench_metrics):
    program = build_threshold_program(2)
    policy = canonical_restart_policy(2)

    def run():
        return run_program(
            program,
            {"x1": 10},
            seed=7,
            restart_policy=policy,
            max_steps=50_000,
        ).steps

    steps = benchmark(run)
    record_benchmark(bench_metrics, "program_interpreter", benchmark, units=steps)
    assert steps == 50_000


def test_machine_interpreter_throughput(benchmark, bench_metrics):
    machine = lower_program(build_threshold_program(1), "lipton1")

    def run():
        return run_machine(
            machine, {"x1": 3}, seed=3, max_steps=50_000, quiet_window=None
        ).steps

    steps = benchmark(run)
    record_benchmark(bench_metrics, "machine_interpreter", benchmark, units=steps)
    assert steps == 50_000


def test_exact_checker_throughput(benchmark, bench_metrics):
    pp = binary_threshold_protocol(6)
    config = Multiset({"p0": 7})

    verdict = benchmark(stabilisation_verdict, pp, config, 500_000)
    record_benchmark(bench_metrics, "exact_checker", benchmark)
    assert verdict is True


def test_null_observer_overhead(benchmark, bench_metrics):
    """The instrumentation acceptance gate: simulating with the null
    observer must cost within 5% of simulating with no observer (plus
    timing noise headroom).  Both timings are min-of-k ``perf_counter``
    measurements of the same seeded run."""
    pp = binary_threshold_protocol(13)
    config = Multiset({"p0": 40})
    kwargs = dict(seed=1, max_interactions=10_000, convergence_window=10**9)

    def timed(observer, rounds=7):
        best = float("inf")
        for _ in range(rounds):
            start = time.perf_counter()
            simulate(pp, config, observer=observer, **kwargs)
            best = min(best, time.perf_counter() - start)
        return best

    timed(None, rounds=1)  # warm up caches before measuring
    bare = timed(None)
    null = timed(NULL_OBSERVER)
    ratio = null / bare
    bench_metrics.gauge("null_observer.bare_seconds").set(bare)
    bench_metrics.gauge("null_observer.null_seconds").set(null)
    bench_metrics.gauge("null_observer.overhead_ratio").set(ratio)
    # Generous noise headroom on top of the ≤5% budget; the null observer
    # is stripped to `None` at run entry, so the true overhead is ~0.
    assert ratio < 1.15, f"null observer overhead {ratio:.3f}x"

    interactions = benchmark(
        lambda: simulate(pp, config, observer=NULL_OBSERVER, **kwargs).interactions
    )
    record_benchmark(bench_metrics, "null_observer", benchmark, units=interactions)
    assert interactions > 500
