"""Benchmark TH1 — Theorem 1: protocols with O(n) states deciding
x ≥ k for k ≥ 2^(2^n)-scale thresholds; end-to-end behaviour for n = 1."""

from conftest import once

from repro.experiments import run_theorem1_end_to_end, run_theorem1_sizes


def test_theorem1_sizes(benchmark):
    report = once(benchmark, run_theorem1_sizes, 8)
    print("\n" + report.render())
    assert report.linear_states()
    assert report.double_exponential()


def test_theorem1_end_to_end(benchmark, lipton1_pipeline):
    trials = once(
        benchmark,
        run_theorem1_end_to_end,
        seed=2,
        pipeline=lipton1_pipeline,
    )
    for trial in trials:
        assert trial.verdict is trial.expected, (
            trial.population,
            trial.verdict,
            trial.expected,
        )
