"""Benchmark X1 — 1-awareness: the baselines have poisonable witness
states; the paper's construction resists poisoning (it accepts only
provisionally and keeps checking)."""

from conftest import once

from repro.experiments import run_awareness


def test_awareness_probes(benchmark, lipton1_pipeline):
    report = once(
        benchmark,
        run_awareness,
        3,
        pipeline=lipton1_pipeline,
        seed=0,
        poison_state_count=3,
        convergence_window=60_000,
    )
    print("\nunary certificates:",
          sorted(map(repr, report.unary_certificates.certificate_states)))
    print("unary poisonable:", report.baseline_poisonable)
    print("construction poison verdicts:",
          {repr(k): v for k, v in
           report.this_paper_poisoning.state_verdicts.items()})
    assert report.baselines_are_aware
    assert report.baseline_poisonable
    assert report.construction_resists_poisoning
