"""Throughput benchmarks for the batched multinomial engine.

All runs drive the Theorem 1 threshold protocol (the paper's
double-exponential construction at level 1, compiled once per session)
from its all-agents-in-one-input-state initial configuration — the shape
the batched engine exists for: a reachable state set that stays tiny
relative to ``n``.  Runs burn a fixed interaction budget (the
convergence window is set beyond reach) so the gauges are pure
throughput:

* ``batched.n1e4/n1e6/n1e8.ops_per_second`` — interactions per second at
  ``n = 10^4 / 10^6 / 10^8``, gated by ``bench --check``;
* ``fastpath.n1e6.ops_per_second`` — the per-step fast uniform engine on
  the identical workload (the denominator of the headline);
* ``batched.speedup_vs_fast`` — the headline ratio at ``n = 10^6``,
  asserted ≥ 50× (measured ≈ 450× on the bench box);
* ``batched.crossover.smalln_ratio`` — the same ratio at ``n = 10^3``,
  *not* asserted: it documents where batching stops paying (batch
  length scales with ``sqrt(n)``, so small populations amortise little
  and the per-step engines can win).

The batched engine uses the numpy backend when available (CI installs
it; the pure fallback is pinned separately by the no-numpy test job).
"""

import pytest

from conftest import once, record_benchmark

from repro.core import Multiset, simulate
from repro.core.fastpath import FastUniformScheduler, get_table

#: Far beyond any budget below: benches measure throughput, not verdicts.
_NO_CONVERGE = 10**18


@pytest.fixture(scope="session")
def warm_pipeline(lipton1_pipeline):
    """The Theorem 1 pipeline with its transition table already built:
    `get_table` spends ~15s compiling the 430k-transition table once per
    process, and whichever test ran first would otherwise absorb that
    into its throughput gauge."""
    get_table(lipton1_pipeline.protocol)
    return lipton1_pipeline


def _initial(pipeline, n: int) -> Multiset:
    state = next(iter(pipeline.protocol.input_states))
    return Multiset({state: n})


def _run(pipeline, n: int, budget: int, *, engine=None, scheduler=None, seed=1):
    result = simulate(
        pipeline.protocol,
        _initial(pipeline, n),
        seed=seed,
        engine=engine,
        scheduler=scheduler,
        max_interactions=budget,
        convergence_window=_NO_CONVERGE,
    )
    assert result.interactions == budget
    return result


def test_batched_throughput_n1e4(benchmark, bench_metrics, warm_pipeline):
    # Small-n batches amortise by the multiplicity of repeated pairs,
    # which only builds up as the run concentrates — keep the budget
    # modest so the gate stays fast.
    budget = 100_000
    once(benchmark, _run, warm_pipeline, 10**4, budget, engine="batched")
    record_benchmark(bench_metrics, "batched.n1e4", benchmark, units=budget)


def test_batched_throughput_n1e6(benchmark, bench_metrics, warm_pipeline):
    budget = 4_000_000
    once(benchmark, _run, warm_pipeline, 10**6, budget, engine="batched")
    record_benchmark(bench_metrics, "batched.n1e6", benchmark, units=budget)


def test_batched_throughput_n1e8(benchmark, bench_metrics, warm_pipeline):
    # The scale criterion: an n = 10^8 run completes in seconds.  Batch
    # length grows ~ sqrt(n), so larger populations run *faster* per
    # interaction — 20M interactions take ~1.5s on the bench box.
    budget = 20_000_000
    once(benchmark, _run, warm_pipeline, 10**8, budget, engine="batched")
    record_benchmark(bench_metrics, "batched.n1e8", benchmark, units=budget)


def test_fastpath_reference_n1e6(benchmark, bench_metrics, warm_pipeline):
    # The same workload under the per-step fast *uniform* engine — the
    # apples-to-apples reference (identical uniform-pair semantics).
    budget = 20_000
    once(
        benchmark,
        _run,
        warm_pipeline,
        10**6,
        budget,
        scheduler=FastUniformScheduler(),
    )
    record_benchmark(bench_metrics, "fastpath.n1e6", benchmark, units=budget)


def test_batched_speedup_vs_fast(bench_metrics):
    """The headline gauge: batched vs per-step throughput at n = 10^6."""
    fast = bench_metrics.gauge("fastpath.n1e6.ops_per_second").value
    batched = bench_metrics.gauge("batched.n1e6.ops_per_second").value
    if not (fast and batched):  # --benchmark-disable
        return
    speedup = batched / fast
    bench_metrics.gauge("batched.speedup_vs_fast").set(speedup)
    assert speedup >= 50, (
        f"batched engine only {speedup:.1f}x faster than the per-step "
        f"fast path at n=1e6 (target: 50x)"
    )


def test_batched_crossover_small_n(benchmark, bench_metrics, warm_pipeline):
    """Document (never assert) the small-n regime where batching stops
    paying: batch length ~ sqrt(n), so at n = 10^3 each batch amortises
    only ~25 interactions."""
    budget = 200_000
    once(benchmark, _run, warm_pipeline, 10**3, budget, engine="batched")
    record_benchmark(bench_metrics, "batched.n1e3", benchmark, units=budget)
    fast = bench_metrics.gauge("fastpath.n1e6.ops_per_second").value
    small = bench_metrics.gauge("batched.n1e3.ops_per_second").value
    if fast and small:
        bench_metrics.gauge("batched.crossover.smalln_ratio").set(small / fast)
