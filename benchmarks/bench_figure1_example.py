"""Benchmark F1 — Figure 1: the worked example program (4 ≤ x < 7)."""

from conftest import once

from repro.experiments import run_figure1


def test_figure1_decisions(benchmark):
    report = once(benchmark, run_figure1, seed=5)
    print("\n" + report.render())
    assert report.correct == len(report.trials)
