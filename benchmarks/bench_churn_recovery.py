"""Benchmark X5 — churn recovery: self-stabilisation under a dynamic
population.

Lifts the fixed-``n`` assumption of X4: a seeded
:class:`~repro.resilience.ChurnProcess` lets agents join and leave
mid-run, and the §5.2 error-checking machinery must restart against the
*live* population while the assertion-stripped variant carries stale
counts to wrong verdicts.

Headline gauges land in ``BENCH_simulator.json`` under ``churn.*`` —
deliberately *not* ``*.ops_per_second``, so the perf regression gate
ignores them (they are correctness rates, not throughput):

* ``churn.recovery.with_checks_rate`` / ``without_checks_rate``
* ``churn.recovery_gap`` — the resilience margin under churn
"""

from conftest import once, record_benchmark

from repro.experiments import run_churn_recovery


def test_churn_recovery(benchmark, bench_metrics):
    report = once(
        benchmark, run_churn_recovery, 2, trials_per_total=2, seed=4
    )
    print("\n" + report.render())
    record_benchmark(bench_metrics, "churn.recovery", benchmark)

    # Error checking must measurably out-recover the stripped variant.
    assert report.checks_help
    assert report.with_checks_rate > 0.5

    # The protocol-level probe ran every engine family — including the
    # batched engine's native population-only path — through the churn
    # plan end-to-end; every family must reach a verdict and agree on
    # the final population (joins/leaves replay identically per seed).
    probes = {p.family: p for p in report.probes}
    assert set(probes) == {
        "fast_enabled",
        "fast_uniform",
        "legacy_enabled",
        "legacy_uniform",
        "batched",
    }
    assert all(p.verdict is not None for p in report.probes)
    assert len({(p.population_after, p.joined, p.departed) for p in report.probes}) == 1

    bench_metrics.gauge("churn.recovery.with_checks_rate").set(
        report.with_checks_rate
    )
    bench_metrics.gauge("churn.recovery.without_checks_rate").set(
        report.without_checks_rate
    )
    bench_metrics.gauge("churn.recovery_gap").set(report.recovery_gap)
