"""Benchmark F3/F5/F6/F7 — the lowering gadgets of Figures 3, 5, 6, 7."""

from conftest import once

from repro.experiments import run_figures_lowering


def test_figure_gadget_shapes(benchmark):
    facts = once(benchmark, run_figures_lowering)
    by_name = {g.name: g for g in facts}
    print()
    for g in facts:
        print(f"{g.name}: L={g.length} detects={g.detects} moves={g.moves} "
              f"map-assigns={g.register_map_assignments}")
    # Figure 3: swap -> three register-map assignments, detect + branch.
    assert by_name["figure3"].register_map_assignments == 3
    assert by_name["figure3"].facts["branch_follows_every_detect"]
    # Figure 5: negated condition still lowers to one detect + one branch.
    assert by_name["figure5"].detects == 1
    # Figure 6: procedure call/return through a return pointer.
    assert by_name["figure6"].return_pointer_indirect_jumps >= 1
    # Figure 7: the restart helper with two scramble loops per register.
    assert by_name["figure7"].restart_entry is not None
    assert by_name["figure7"].detects == 4


def test_lowering_throughput(benchmark):
    """Micro-benchmark: compile the n = 4 construction (O(n) machine)."""
    from repro.lipton import build_threshold_program
    from repro.machines import lower_program

    program = build_threshold_program(4)
    machine = benchmark(lower_program, program)
    assert machine.length > 500
