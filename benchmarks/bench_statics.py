"""Benchmarks for the static verification layer (``repro.analysis.statics``
and ``repro.lint``).

Not a paper artefact — these gate the promise that ``repro check`` is
cheap enough to run before every experiment and in CI.  Three costs
matter: checking the hand-written baselines (interactive, must be
instant), checking a compiled pipeline protocol *given a warm table
cache* (the CI mode), and linting the whole source tree.  Gauges land in
the shared bench JSON (``statics.*``) next to the simulator numbers."""

from pathlib import Path

from conftest import record_benchmark

from repro.analysis.statics import check_machine, check_program, check_protocol
from repro.baselines import majority_protocol
from repro.lint import lint_paths
from repro.lipton.construction import build_threshold_program
from repro.machines.lowering import lower_program

_SRC = Path(__file__).resolve().parent.parent / "src" / "repro"


def test_check_baseline_protocol(benchmark, bench_metrics):
    """Full protocol diagnostics (coverability + shadowing + conservation)
    on a hand-written baseline — the interactive hot path."""
    pp = majority_protocol()
    diags = benchmark(check_protocol, pp)
    record_benchmark(bench_metrics, "statics.check_protocol", benchmark)
    assert not [d for d in diags if d.severity == "error"]


def test_check_theorem_program(benchmark, bench_metrics):
    """Whole-program analyses on the Theorem 1 construction at n = 2."""
    program = build_threshold_program(2)
    diags = benchmark(check_program, program, name="lipton-n2")
    record_benchmark(bench_metrics, "statics.check_program", benchmark)
    assert not [d for d in diags if d.severity == "error"]


def test_check_lowered_machine(benchmark, bench_metrics):
    """IP-graph reachability + pointer-domain checks on the machine
    lowered from the Theorem 1 program."""
    machine = lower_program(build_threshold_program(2), name="lipton2")
    diags = benchmark(check_machine, machine)
    record_benchmark(bench_metrics, "statics.check_machine", benchmark)
    assert not [d for d in diags if d.severity == "error"]


def test_check_compiled_protocol(thr2_pipeline, benchmark, bench_metrics):
    """Protocol diagnostics over a compiled pipeline protocol.

    The session fixture already compiled it, and the first call below
    warms the transition-table cache, so the timing measures the checker
    itself — the regime CI sees with a warm ``REPRO_CACHE_DIR``.
    """
    protocol = thr2_pipeline.protocol
    check_protocol(protocol)  # warm the table cache
    diags = benchmark.pedantic(
        check_protocol, args=(protocol,), rounds=3, iterations=1
    )
    record_benchmark(bench_metrics, "statics.check_compiled", benchmark)
    assert not [d for d in diags if d.severity == "error"]


def test_lint_source_tree(benchmark, bench_metrics):
    """Lint the whole ``src/repro`` tree — the CI lint job's workload.

    Also the dogfood gate: the tree must stay clean.
    """
    diags = benchmark.pedantic(lint_paths, args=([_SRC],), rounds=3, iterations=1)
    files = sum(1 for _ in _SRC.rglob("*.py"))
    record_benchmark(bench_metrics, "statics.lint", benchmark, units=files)
    assert diags == []
