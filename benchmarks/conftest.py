"""Shared fixtures for the benchmark harness.

Every module regenerates one table/figure/theorem of the paper (see the
experiment index in DESIGN.md); the benchmark timings measure the cost of
the regeneration itself.  Expensive pipelines are compiled once per
session.
"""

import pytest

from repro.conversion import compile_program, compile_threshold_protocol
from repro.programs import simple_threshold_program


def once(benchmark, fn, *args, **kwargs):
    """Run a (potentially slow) experiment exactly once under timing."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


@pytest.fixture(scope="session")
def thr2_pipeline():
    return compile_program(simple_threshold_program(2), "thr2")


@pytest.fixture(scope="session")
def lipton1_pipeline():
    return compile_threshold_protocol(1)
