"""Shared fixtures for the benchmark harness.

Every module regenerates one table/figure/theorem of the paper (see the
experiment index in DESIGN.md); the benchmark timings measure the cost of
the regeneration itself.  Expensive pipelines are compiled once per
session.

Benchmarks additionally record their headline numbers into a shared
:class:`repro.observability.metrics.Metrics` registry (``bench_metrics``);
whatever was recorded is written to ``BENCH_simulator.json`` at the repo
root when the session ends, so the perf trajectory of the substrate is
machine-readable from PR to PR.
"""

import os
import platform
import sys
import time
from pathlib import Path

import pytest

from repro.conversion import compile_program, compile_threshold_protocol
from repro.observability.metrics import Metrics
from repro.programs import simple_threshold_program

_BENCH_METRICS = Metrics()
# REPRO_BENCH_OUT redirects the JSON (used by the CI regression check to
# compare a fresh run against the committed baseline without overwriting it).
_BENCH_JSON = Path(
    os.environ.get(
        "REPRO_BENCH_OUT",
        Path(__file__).resolve().parent.parent / "BENCH_simulator.json",
    )
)


def once(benchmark, fn, *args, **kwargs):
    """Run a (potentially slow) experiment exactly once under timing."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


def record_benchmark(metrics: Metrics, name: str, benchmark, units=None) -> None:
    """Copy a pytest-benchmark result into the metrics registry.

    ``units`` (e.g. interactions per round) converts the mean round time
    into a throughput gauge.
    """
    stats = getattr(getattr(benchmark, "stats", None), "stats", None)
    if stats is None:  # --benchmark-disable
        return
    metrics.gauge(f"{name}.mean_seconds").set(stats.mean)
    metrics.gauge(f"{name}.min_seconds").set(stats.min)
    metrics.gauge(f"{name}.rounds").set(stats.rounds)
    if units and stats.mean:
        metrics.gauge(f"{name}.ops_per_second").set(units / stats.mean)


@pytest.fixture(scope="session")
def bench_metrics() -> Metrics:
    return _BENCH_METRICS


def pytest_sessionfinish(session, exitstatus):
    if _BENCH_METRICS:
        _BENCH_METRICS.write_json(
            _BENCH_JSON,
            extra={
                "schema": "repro-bench-v1",
                "suite": "simulator",
                "timestamp": time.time(),
                "python": sys.version.split()[0],
                "platform": platform.platform(),
            },
        )


@pytest.fixture(scope="session")
def thr2_pipeline():
    return compile_program(simple_threshold_program(2), "thr2")


@pytest.fixture(scope="session")
def lipton1_pipeline():
    return compile_threshold_protocol(1)
