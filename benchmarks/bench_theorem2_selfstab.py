"""Benchmark TH2 — Theorem 2 / Definition 7: almost self-stabilisation.

Program level: adversarial register initialisation, n = 2.  Protocol
level: arbitrary noise agents + ≥ |F| initial-state agents on the n = 1
protocol."""

from conftest import once

from repro.experiments import run_program_selfstab, run_protocol_selfstab


def test_program_level_selfstab(benchmark):
    report = once(benchmark, run_program_selfstab, 2, trials_per_total=2, seed=3)
    print("\n" + report.render())
    assert report.correct == report.total


def test_protocol_level_selfstab(benchmark, lipton1_pipeline):
    report = once(
        benchmark,
        run_protocol_selfstab,
        pipeline=lipton1_pipeline,
        seed=1,
    )
    print("\n" + report.render())
    assert report.correct == report.total
