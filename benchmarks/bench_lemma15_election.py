"""Benchmark L15 — Lemma 15: leader election recovers the pointer agents
from noisy configurations with ≥ |F| initial-state agents."""

from conftest import once

from repro.experiments import run_lemma15


def test_election_recovery(benchmark, thr2_pipeline):
    report = once(
        benchmark,
        run_lemma15,
        pipeline=thr2_pipeline,
        noise_levels=[0, 4, 10, 20],
        trials_per_level=3,
        seed=0,
    )
    print("\n" + report.render())
    assert report.recovered == len(report.trials)
