"""Benchmark T1 — regenerate Table 1 (state complexity of thresholds).

Paper claim: classic Θ(k) ≫ binary Θ(log k) ≫ this paper Θ(log log k)
(leaderless, matching the leader-assisted bound up to constants)."""

from conftest import once

from repro.experiments import run_table1


def test_table1_regeneration(benchmark):
    report = once(benchmark, run_table1, 6)
    print("\n" + report.render())
    assert report.ordering_holds()
    rows = report.rows
    # n = 5: k is near a million; classic needs ~a million states, binary
    # ~30, this paper ~11k regardless of k's magnitude.
    row5 = rows[4]
    assert row5.unary_states > 900_000
    assert row5.binary_states < 40
    assert row5.this_paper_states < 12_000
    # The whole point: our protocol's size is driven by n, not k.
    assert rows[5].this_paper_states - rows[4].this_paper_states < 3_000


def test_table1_deep_sweep_sizes_only(benchmark):
    """Closed-form state counts scale to n = 12 (k astronomically large)."""
    from repro.analysis import theorem1_data

    data = once(benchmark, theorem1_data, 12)
    assert data[-1].k.bit_length() > 2**11
    assert data[-1].states < 35_000
