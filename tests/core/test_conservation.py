"""Conservation of agents through every compiled transition table.

A pairwise interaction can never create or destroy agents, so every
candidate record in a compiled :class:`~repro.core.fastpath.TransitionTable`
must have net deltas summing to zero, its accept delta bounded by the two
participants, and — on the numpy path — identical row sums in the
vectorised ``_VecTables`` mirror the batched engine applies.  PROT007 in
the static checker fronts the same invariant; these tests pin it at the
engine level across the baselines, the examples pipeline, and random
protocols.
"""

import pytest

from repro.core.fastpath import get_table
from repro.core.protocol import PopulationProtocol

try:
    from hypothesis import given, settings, strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - hypothesis is a test dependency
    HAVE_HYPOTHESIS = False


def iter_cands(table):
    for mode_name, mode in (("enabled", table.enabled), ("uniform", table.uniform)):
        for key in mode.keys:
            for cand in key[4]:
                yield mode_name, cand


def assert_table_conserves(protocol):
    table = get_table(protocol)
    checked = 0
    for mode_name, cand in iter_cands(table):
        deltas = cand[6]
        net = sum(d for _s, d in deltas)
        assert net == 0, (
            f"{protocol.name}/{mode_name}: candidate {cand[7]!r} has net "
            f"delta {net:+d}"
        )
        # At most both participants flip output side.
        assert -2 <= cand[5] <= 2
        checked += 1
    assert checked > 0, f"{protocol.name}: table has no candidates"


def test_baseline_tables_conserve(majority, unary5, binary6, remainder3):
    for pp in (majority, unary5, binary6, remainder3):
        assert_table_conserves(pp)


def test_compiled_pipeline_table_conserves(thr2_pipeline):
    assert_table_conserves(thr2_pipeline.protocol)


def test_vectorised_tables_match_candidate_deltas(majority):
    """The batched engine's dense delta rows must agree with the scalar
    candidate records they were built from — row sums zero, accept deltas
    equal."""
    batched = pytest.importorskip("repro.core.batched")
    if not batched.numpy_available():
        pytest.skip("numpy unavailable or disabled via REPRO_NO_NUMPY")
    table = get_table(majority)
    vec = batched._VecTables(table, tie_first=True)
    np = batched._numpy()
    assert int(np.abs(vec.deltas.sum(axis=1)).max(initial=0)) == 0
    for i, key in enumerate(table.uniform.keys):
        cand = key[4][0]
        assert int(vec.accept_delta[i]) == cand[5]
        # upost rows add exactly the two post-agents.
        assert int(vec.upost[i].sum()) == 2


if HAVE_HYPOTHESIS:

    @st.composite
    def random_protocols(draw):
        n_states = draw(st.integers(min_value=2, max_value=6))
        states = [f"s{i}" for i in range(n_states)]
        idx = st.integers(min_value=0, max_value=n_states - 1)
        n_trans = draw(st.integers(min_value=1, max_value=12))
        transitions = [
            (
                states[draw(idx)],
                states[draw(idx)],
                states[draw(idx)],
                states[draw(idx)],
            )
            for _ in range(n_trans)
        ]
        inputs = draw(
            st.sets(st.sampled_from(states), min_size=1, max_size=n_states)
        )
        accepting = draw(st.sets(st.sampled_from(states), max_size=n_states))
        return PopulationProtocol(
            states=states,
            transitions=transitions,
            input_states=inputs,
            accepting_states=accepting,
            name="random",
        )

    @given(random_protocols())
    @settings(max_examples=60, deadline=None)
    def test_random_protocol_tables_conserve(pp):
        assert_table_conserves(pp)
