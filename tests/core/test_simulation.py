"""Tests for the simulation driver."""

import pytest

from repro.core import (
    Multiset,
    NonConvergenceError,
    PopulationProtocol,
    Transition,
    UniformPairScheduler,
    decide,
    simulate,
)


@pytest.fixture
def epidemic():
    """One 'i' agent infects everyone; stabilises to all-infected."""
    return PopulationProtocol(
        states=["s", "i"],
        transitions=[Transition("i", "s", "i", "i")],
        input_states=["s", "i"],
        accepting_states=["i"],
    )


class TestSimulate:
    def test_epidemic_stabilises_true(self, epidemic):
        result = simulate(
            epidemic, Multiset({"i": 1, "s": 20}), seed=0, convergence_window=100
        )
        assert result.verdict is True
        assert result.final == Multiset({"i": 21})
        assert result.silent  # terminal configuration reached

    def test_no_infection_is_silent_false(self, epidemic):
        result = simulate(epidemic, Multiset({"s": 5}), seed=0)
        assert result.silent
        assert result.verdict is False
        assert result.interactions == 1  # detected immediately

    def test_population_recorded(self, epidemic):
        result = simulate(epidemic, Multiset({"i": 2, "s": 3}), seed=1)
        assert result.population == 5
        assert result.final.size == 5

    def test_parallel_time(self, epidemic):
        result = simulate(epidemic, Multiset({"i": 1, "s": 9}), seed=2)
        assert result.parallel_time == result.interactions / 10

    def test_output_trace_records_flips(self, epidemic):
        result = simulate(epidemic, Multiset({"i": 1, "s": 5}), seed=3)
        # Starts mixed (None), ends True.
        assert result.output_trace[0][1] is None
        assert result.output_trace[-1][1] is True

    def test_uniform_scheduler_also_converges(self, epidemic):
        result = simulate(
            epidemic,
            Multiset({"i": 1, "s": 10}),
            seed=4,
            scheduler=UniformPairScheduler(),
            convergence_window=500,
        )
        assert result.verdict is True

    def test_budget_exhaustion_gives_none(self):
        # A protocol whose output oscillates forever (a-pairs become
        # b-pairs and back), so no convergence window ever completes.
        pp = PopulationProtocol(
            ["a", "b"],
            [Transition("a", "a", "b", "b"), Transition("b", "b", "a", "a")],
            ["a", "b"],
            ["a"],
        )
        result = simulate(
            pp, Multiset({"a": 2}), seed=0, max_interactions=500
        )
        assert result.verdict is None
        assert not result.silent

    def test_rejects_invalid_configuration(self, epidemic):
        with pytest.raises(Exception):
            simulate(epidemic, Multiset({"zzz": 1}), seed=0)


class TestDecide:
    def test_decide_true(self, epidemic):
        assert decide(epidemic, Multiset({"i": 1, "s": 5}), seed=0) is True

    def test_decide_false(self, epidemic):
        assert decide(epidemic, Multiset({"s": 5}), seed=0) is False

    def test_decide_raises_on_nonconvergence(self):
        pp = PopulationProtocol(
            ["a", "b"],
            [Transition("a", "a", "b", "b"), Transition("b", "b", "a", "a")],
            ["a", "b"],
            ["a"],
        )
        with pytest.raises(NonConvergenceError):
            decide(
                pp,
                Multiset({"a": 2}),
                seed=0,
                attempts=2,
                max_interactions=300,
            )


class TestOutputTrace:
    def test_trace_is_monotone_in_interactions(self, epidemic):
        result = simulate(epidemic, Multiset({"i": 1, "s": 30}), seed=7)
        steps = [step for step, _ in result.output_trace]
        assert steps[0] == 0
        assert all(a < b for a, b in zip(steps, steps[1:]))

    def test_trace_alternates_outputs(self, epidemic):
        result = simulate(epidemic, Multiset({"i": 1, "s": 30}), seed=8)
        outputs = [output for _, output in result.output_trace]
        assert all(a != b for a, b in zip(outputs, outputs[1:]))
        assert outputs[-1] == result.verdict

    def test_trace_bounded_by_interactions(self, epidemic):
        result = simulate(epidemic, Multiset({"i": 1, "s": 12}), seed=9)
        assert all(step <= result.interactions for step, _ in result.output_trace)


class TestSeedDerivation:
    def test_adjacent_bases_do_not_collide(self):
        from repro.core import derive_seed

        # The old scheme used base + attempt, so (1, 1) == (2, 0).
        assert derive_seed(1, 1) != derive_seed(2, 0)
        seeds = {derive_seed(base, attempt) for base in range(50) for attempt in range(4)}
        assert len(seeds) == 200  # no collisions across a grid of calls

    def test_derivation_is_deterministic(self):
        from repro.core import derive_seed

        assert derive_seed(123, 2) == derive_seed(123, 2)

    def test_decide_remains_deterministic_per_seed(self, epidemic):
        first = decide(epidemic, Multiset({"i": 1, "s": 9}), seed=42)
        second = decide(epidemic, Multiset({"i": 1, "s": 9}), seed=42)
        assert first == second is True
