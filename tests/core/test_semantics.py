"""Tests for the step relation and reachability (Section 3)."""

import pytest
from hypothesis import given, strategies as st

from repro.core import (
    InvalidConfigurationError,
    Multiset,
    PopulationProtocol,
    Transition,
    apply_transition,
    configuration_graph,
    enabled_transitions,
    is_silent,
    reachable_configurations,
    successors,
    transition_enabled,
)
from repro.core.semantics import apply_transition_inplace


@pytest.fixture
def cancel():
    """X and Y annihilate into a dead state."""
    return PopulationProtocol(
        states=["X", "Y", "0"],
        transitions=[Transition("X", "Y", "0", "0")],
        input_states=["X", "Y"],
        accepting_states=["0"],
    )


class TestEnabledness:
    def test_needs_both_agents(self, cancel):
        t = cancel.transitions[0]
        assert transition_enabled(Multiset({"X": 1, "Y": 1}), t)
        assert not transition_enabled(Multiset({"X": 2}), t)

    def test_same_state_pair_needs_two(self):
        t = Transition("a", "a", "b", "b")
        assert not transition_enabled(Multiset({"a": 1}), t)
        assert transition_enabled(Multiset({"a": 2}), t)

    def test_enabled_transitions_scans_support(self, cancel):
        assert enabled_transitions(cancel, Multiset({"X": 1, "Y": 2})) == [
            cancel.transitions[0]
        ]
        assert enabled_transitions(cancel, Multiset({"X": 3})) == []


class TestApplication:
    def test_apply(self, cancel):
        t = cancel.transitions[0]
        nxt = apply_transition(Multiset({"X": 2, "Y": 1}), t)
        assert nxt == Multiset({"X": 1, "0": 2})

    def test_apply_preserves_size(self, cancel):
        t = cancel.transitions[0]
        config = Multiset({"X": 2, "Y": 2})
        assert apply_transition(config, t).size == config.size

    def test_apply_disabled_raises(self, cancel):
        t = cancel.transitions[0]
        with pytest.raises(InvalidConfigurationError):
            apply_transition(Multiset({"X": 1}), t)

    def test_apply_inplace(self, cancel):
        t = cancel.transitions[0]
        config = Multiset({"X": 1, "Y": 1})
        apply_transition_inplace(config, t)
        assert config == Multiset({"0": 2})

    def test_successors_deduplicate(self):
        pp = PopulationProtocol(
            ["a", "b"],
            [Transition("a", "a", "b", "b"), Transition("a", "a", "b", "b")],
            ["a"],
            [],
        )
        succ = list(successors(pp, Multiset({"a": 2})))
        assert len(succ) == 1

    def test_successors_skip_noops(self):
        pp = PopulationProtocol(["a"], [Transition("a", "a", "a", "a")], ["a"], [])
        assert list(successors(pp, Multiset({"a": 2}))) == []


class TestReachability:
    def test_cancel_reaches_dead_end(self, cancel):
        nodes = reachable_configurations(cancel, Multiset({"X": 2, "Y": 2}))
        # X2Y2 -> X1Y1+00 -> 0000; 3 configurations
        assert len(nodes) == 3

    def test_graph_edges(self, cancel):
        nodes, edges = configuration_graph(cancel, Multiset({"X": 1, "Y": 1}))
        start = Multiset({"X": 1, "Y": 1}).freeze()
        end = Multiset({"0": 2}).freeze()
        assert edges[start] == frozenset({end})
        assert edges[end] == frozenset()

    def test_max_configurations_guard(self, cancel):
        with pytest.raises(InvalidConfigurationError):
            reachable_configurations(
                cancel, Multiset({"X": 10, "Y": 10}), max_configurations=2
            )

    def test_silence(self, cancel):
        assert is_silent(cancel, Multiset({"0": 4}))
        assert not is_silent(cancel, Multiset({"X": 1, "Y": 1}))

    def test_population_is_invariant(self, cancel):
        nodes = reachable_configurations(cancel, Multiset({"X": 3, "Y": 2}))
        assert all(c.size == 5 for c in nodes.values())


@given(
    st.integers(min_value=0, max_value=5),
    st.integers(min_value=0, max_value=5),
)
def test_cancellation_terminal_counts(x, y):
    """From X^x Y^y the cancellation protocol's terminal configuration has
    |x - y| survivors (a conservation-law property)."""
    if x + y == 0:
        return
    pp = PopulationProtocol(
        states=["X", "Y", "0"],
        transitions=[Transition("X", "Y", "0", "0")],
        input_states=["X", "Y"],
        accepting_states=["0"],
    )
    nodes = reachable_configurations(pp, Multiset({"X": x, "Y": y}))
    terminals = [c for c in nodes.values() if is_silent(pp, c)]
    assert len(terminals) == 1
    terminal = terminals[0]
    assert terminal["X"] == max(0, x - y)
    assert terminal["Y"] == max(0, y - x)
    assert terminal["0"] == 2 * min(x, y)
