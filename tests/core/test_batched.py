"""The batched multinomial engine: DenseConfig ≡ Multiset, engine
selection plumbing, golden-seed pins per sampler backend, distributional
equivalence against the per-step uniform engine, verdict agreement, and
batch-granularity observability."""

import pickle
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines import binary_threshold_protocol, majority_protocol
from repro.core import (
    BatchedScheduler,
    DenseConfig,
    FastUniformScheduler,
    InvalidConfigurationError,
    Multiset,
    PopulationProtocol,
    decide,
    engine_label,
    numpy_available,
    resolve_engine,
    scheduler_for_engine,
    simulate,
)
from repro.core.simulation import (
    AUTO_CROSSOVER_DEFAULT,
    EnabledTransitionScheduler,
    FastEnabledScheduler,
    auto_crossover,
)
from repro.observability import (
    CompositeObserver,
    ProfilingObserver,
    TraceRecorder,
)
from repro.observability import events as ev

from .test_fastpath import CHI2_CRIT_001, cascade_protocol, two_sample_chi2

#: Large enough that no window-convergence fires inside any test budget.
NO_CONVERGE = 10**9


def both_backends(test):
    """Run a test under the numpy sampler (when installed) and the pure
    fallback (forced via ``REPRO_NO_NUMPY``)."""
    return pytest.mark.parametrize(
        "backend",
        [
            pytest.param(
                "numpy",
                marks=pytest.mark.skipif(
                    not numpy_available(), reason="numpy not installed"
                ),
            ),
            "pure",
        ],
    )(test)


@pytest.fixture
def backend_env(backend, monkeypatch):
    if backend == "pure":
        monkeypatch.setenv("REPRO_NO_NUMPY", "1")
    else:
        monkeypatch.delenv("REPRO_NO_NUMPY", raising=False)
    return backend


# ----------------------------------------------------------------------
# DenseConfig: the array-backed Multiset
# ----------------------------------------------------------------------
class TestDenseConfig:
    def test_tracks_multiset_under_mixed_mutations(self):
        states = ["a", "b", "c", "d"]
        dense = DenseConfig(states, {"a": 5, "b": 2})
        shadow = Multiset({"a": 5, "b": 2})
        rng = random.Random(7)
        for _ in range(500):
            op = rng.randrange(3)
            if op == 0:
                s = rng.choice(states)
                dense.inc(s, 2)
                shadow.inc(s, 2)
            elif op == 1:
                s = rng.choice([s for s in states if shadow[s] > 0] or states[:1])
                if shadow[s] > 0:
                    dense.dec(s)
                    shadow.dec(s)
            else:
                deltas = {s: rng.randrange(3) for s in states}
                dense.apply_deltas(deltas)
                for s, d in deltas.items():
                    if d:
                        shadow.inc(s, d)
            assert dense.to_dict() == shadow.to_dict()
            assert dense.size == shadow.size

    @settings(max_examples=60, deadline=None)
    @given(
        initial=st.lists(st.integers(0, 9), min_size=3, max_size=3),
        deltas=st.lists(
            st.lists(st.integers(-3, 3), min_size=3, max_size=3),
            max_size=8,
        ),
    )
    def test_bulk_deltas_match_singles_property(self, initial, deltas):
        states = ["x", "y", "z"]
        dense = DenseConfig(states, dict(zip(states, initial)))
        shadow = Multiset({s: c for s, c in zip(states, initial) if c})
        for vec in deltas:
            legal = all(c + d >= 0 for c, d in zip(dense.cnt, vec))
            if not legal:
                before = dense.to_dict()
                with pytest.raises(InvalidConfigurationError):
                    dense.apply_sid_deltas(list(enumerate(vec)))
                # A rejected bulk apply must not half-apply.
                assert dense.to_dict() == before
                continue
            dense.apply_sid_deltas(list(enumerate(vec)))
            for s, d in zip(states, vec):
                if d > 0:
                    shadow.inc(s, d)
                elif d < 0:
                    shadow.dec(s, -d)
            assert dense.to_dict() == shadow.to_dict()
            assert dense.size == shadow.size

    def test_foreign_state_rejected(self):
        dense = DenseConfig(["a", "b"], {"a": 1})
        with pytest.raises(InvalidConfigurationError):
            dense.inc("zzz")
        with pytest.raises(InvalidConfigurationError):
            DenseConfig(["a", "b"], {"nope": 1})

    def test_pickle_round_trip(self):
        dense = DenseConfig(["a", "b", "c"], {"b": 4, "c": 1})
        clone = pickle.loads(pickle.dumps(dense))
        assert isinstance(clone, DenseConfig)
        assert clone.to_dict() == dense.to_dict()
        assert clone.size == dense.size

    def test_watchers_fire_once_per_changed_state(self):
        dense = DenseConfig(["a", "b", "c"], {"a": 5, "b": 5})
        seen = []
        dense.watch(lambda state, new: seen.append((state, new)))
        dense.apply_sid_deltas([(0, -2), (1, 3), (2, 0)])
        assert sorted(seen) == [("a", 3), ("b", 8)]


# ----------------------------------------------------------------------
# Engine selection plumbing
# ----------------------------------------------------------------------
class TestEngineResolution:
    def test_explicit_wins_and_garbage_raises(self):
        assert resolve_engine("batched") == "batched"
        assert resolve_engine(" Fast ") == "fast"
        with pytest.raises(ValueError, match="unknown engine"):
            resolve_engine("warp")

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE", "batched")
        assert resolve_engine(None) == "batched"
        monkeypatch.setenv("REPRO_ENGINE", "nonsense")
        assert resolve_engine(None) is None
        monkeypatch.delenv("REPRO_ENGINE")
        assert resolve_engine(None) is None

    def test_scheduler_families(self):
        assert isinstance(scheduler_for_engine("batched"), BatchedScheduler)
        assert isinstance(
            scheduler_for_engine("legacy"), EnabledTransitionScheduler
        )
        assert isinstance(scheduler_for_engine("fast"), FastEnabledScheduler)
        assert isinstance(scheduler_for_engine(None), FastEnabledScheduler)

    def test_engine_label(self):
        assert engine_label(BatchedScheduler()) == "batched"
        assert engine_label(FastUniformScheduler()) == "fast"
        assert engine_label(None) == "fast"
        assert engine_label(None, "batched") == "batched"

    def test_auto_crossover_both_sides(self, monkeypatch):
        # The auto default: fastpath below the crossover, batched at and
        # above it — pinned on both sides for "auto", None, and label.
        monkeypatch.delenv("REPRO_AUTO_CROSSOVER", raising=False)
        monkeypatch.delenv("REPRO_ENGINE", raising=False)
        assert auto_crossover() == AUTO_CROSSOVER_DEFAULT
        below, at = AUTO_CROSSOVER_DEFAULT - 1, AUTO_CROSSOVER_DEFAULT
        for engine in ("auto", None):
            assert isinstance(
                scheduler_for_engine(engine, below), FastEnabledScheduler
            )
            assert isinstance(
                scheduler_for_engine(engine, at), BatchedScheduler
            )
            assert engine_label(None, engine, below) == "fast"
            assert engine_label(None, engine, at) == "batched"
        # Explicit engines ignore the population entirely.
        assert isinstance(scheduler_for_engine("fast", at), FastEnabledScheduler)
        assert isinstance(scheduler_for_engine("batched", below), BatchedScheduler)

    def test_auto_crossover_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_AUTO_CROSSOVER", "10")
        assert auto_crossover() == 10
        assert isinstance(scheduler_for_engine("auto", 9), FastEnabledScheduler)
        assert isinstance(scheduler_for_engine("auto", 10), BatchedScheduler)
        monkeypatch.setenv("REPRO_AUTO_CROSSOVER", "garbage")
        assert auto_crossover() == AUTO_CROSSOVER_DEFAULT
        monkeypatch.setenv("REPRO_AUTO_CROSSOVER", "-5")
        assert auto_crossover() == AUTO_CROSSOVER_DEFAULT

    def test_auto_routes_simulate_by_population(self, monkeypatch):
        # A small population under engine="auto" runs the fastpath; the
        # same protocol above a lowered crossover runs batched.
        monkeypatch.delenv("REPRO_ENGINE", raising=False)
        pp, config = cascade_protocol(30)
        recorder = TraceRecorder(kinds={ev.RUN_END})
        result = simulate(pp, config, seed=3, engine="auto", observer=recorder)
        assert result.verdict is True
        # Per-step engines don't tag RUN_END; only the batched engine does.
        assert recorder.events[-1].data.get("engine") != "batched"
        monkeypatch.setenv("REPRO_AUTO_CROSSOVER", str(config.size))
        recorder2 = TraceRecorder(kinds={ev.RUN_END})
        result2 = simulate(pp, config, seed=3, engine="auto", observer=recorder2)
        assert result2.verdict is True
        assert recorder2.events[-1].data["engine"] == "batched"

    def test_env_routes_simulate_through_batched(self, monkeypatch):
        pp, config = cascade_protocol(30)
        monkeypatch.setenv("REPRO_ENGINE", "batched")
        recorder = TraceRecorder(kinds={ev.RUN_END})
        result = simulate(pp, config, seed=3, observer=recorder)
        assert result.verdict is True and result.silent
        assert recorder.events[-1].data["engine"] == "batched"

    def test_per_step_schedulers_untouched_by_engine_machinery(self):
        # The golden-seed contract of the existing engines: an explicit
        # per-step scheduler ignores the engine plumbing entirely.
        pp = majority_protocol()
        config = Multiset({"X": 8, "Y": 5})
        a = simulate(pp, config, seed=11, scheduler=FastUniformScheduler())
        b = simulate(pp, config, seed=11, scheduler=FastUniformScheduler())
        assert a.final.to_dict() == b.final.to_dict()
        assert a.interactions == b.interactions


# ----------------------------------------------------------------------
# Golden-seed pins: one per sampler backend
# ----------------------------------------------------------------------
class TestGoldenSeeds:
    """Fixed-budget majority runs, pinned per backend.  These freeze the
    whole sampling stack — batch-length inversion, pair sampling, split
    draws, collision handling — so any accidental reordering of random
    draws shows up as a pin break, not a silent distribution shift."""

    PINS = {
        # seed 1234 reaches exact silence at 304 interactions under the
        # numpy sampler; the pure sampler's draw order differs, so that
        # trajectory runs to the full 400-interaction budget.
        "numpy": (304, 46, (("X", 9), ("x", 42))),
        "pure": (400, 58, (("X", 10), ("Y", 1), ("x", 40))),
    }

    @both_backends
    def test_fixed_budget_pin(self, backend_env):
        pp = majority_protocol()
        config = Multiset({"X": 30, "Y": 21})
        result = simulate(
            pp,
            config,
            seed=1234,
            engine="batched",
            max_interactions=400,
            convergence_window=NO_CONVERGE,
        )
        signature = (
            result.interactions,
            result.productive,
            tuple(sorted(result.final.to_dict().items())),
        )
        assert signature == self.PINS[backend_env]

    @both_backends
    def test_deterministic_per_seed(self, backend_env):
        pp = majority_protocol()
        config = Multiset({"X": 12, "Y": 9})
        runs = [
            simulate(
                pp,
                config,
                seed=77,
                engine="batched",
                max_interactions=1_000,
                convergence_window=NO_CONVERGE,
            )
            for _ in range(2)
        ]
        assert runs[0].final.to_dict() == runs[1].final.to_dict()
        assert runs[0].productive == runs[1].productive


# ----------------------------------------------------------------------
# Distributional equivalence vs the per-step uniform engine
# ----------------------------------------------------------------------
class TestDistributionalEquivalence:
    @both_backends
    def test_fixed_budget_configuration_chi2(self, backend_env):
        # After exactly 200 uniform interactions from X=25/Y=16 the
        # b-side count is a nontrivial statistic of the full trajectory;
        # 250 runs per engine, binned, two-sample chi-square at 0.1%.
        pp = majority_protocol()
        config = Multiset({"X": 25, "Y": 16})
        bins = [0, 5, 11, 17, 23, 10**9]

        def binned(seed0, **kwargs):
            values = []
            for s in range(250):
                final = simulate(
                    pp,
                    config,
                    seed=seed0 + s,
                    max_interactions=200,
                    convergence_window=NO_CONVERGE,
                    **kwargs,
                ).final
                values.append(final["Y"] + final["y"])
            return [
                sum(1 for v in values if lo <= v < hi)
                for lo, hi in zip(bins, bins[1:])
            ]

        batched = binned(0, engine="batched")
        perstep = binned(10_000, scheduler=FastUniformScheduler())
        stat = two_sample_chi2(batched, perstep)
        assert stat < CHI2_CRIT_001[len(bins) - 2], (stat, batched, perstep)

    @both_backends
    def test_cascade_runs_to_exact_silence(self, backend_env):
        pp, config = cascade_protocol(40)
        result = simulate(pp, config, seed=5, engine="batched")
        assert result.verdict is True
        assert result.silent
        assert result.final.to_dict() == {"b": 41}
        assert result.productive == 40


# ----------------------------------------------------------------------
# Verdict agreement across protocols and engines
# ----------------------------------------------------------------------
class TestVerdictAgreement:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_baselines_agree_with_fast_engine(
        self, majority, unary5, binary6, remainder3, seed
    ):
        cases = [
            (majority, Multiset({"X": 13, "Y": 8})),
            (unary5, Multiset({next(iter(unary5.input_states)): 7})),
            (binary6, Multiset({next(iter(binary6.input_states)): 11})),
            (remainder3, Multiset({next(iter(remainder3.input_states)): 6})),
        ]
        for pp, config in cases:
            kwargs = dict(seed=seed, attempts=3, max_interactions=500_000)
            assert decide(pp, config, engine="batched", **kwargs) == decide(
                pp, config, engine="fast", **kwargs
            ), (pp.name, seed)

    def test_threshold_protocol_agrees(self, lipton1_pipeline):
        # Populations that run to *exact silence* (trajectory-independent
        # verdicts) on the Theorem 1 protocol; window-heuristic verdicts
        # are engine-sensitive by design — the batched engine samples the
        # output only at batch boundaries.
        pp = lipton1_pipeline.protocol
        init = next(iter(pp.input_states))
        for n, seed in [(3, 0), (5, 0), (8, 1)]:
            config = Multiset({init: n})
            kwargs = dict(seed=seed, attempts=2, max_interactions=200_000)
            assert decide(pp, config, engine="batched", **kwargs) == decide(
                pp, config, engine="fast", **kwargs
            ), (n, seed)

    def test_parallel_matches_sequential(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        pp = majority_protocol()
        config = Multiset({"X": 9, "Y": 6})
        kwargs = dict(seed=21, attempts=4, engine="batched")
        assert decide(pp, config, jobs=2, **kwargs) == decide(
            pp, config, jobs=1, **kwargs
        )


# ----------------------------------------------------------------------
# Batch-granularity observability
# ----------------------------------------------------------------------
class TestBatchedObservability:
    def test_batch_events_account_for_every_interaction(self):
        pp = majority_protocol()
        config = Multiset({"X": 40, "Y": 25})
        profiler = ProfilingObserver()
        result = simulate(
            pp,
            config,
            seed=8,
            engine="batched",
            observer=profiler,
            max_interactions=3_000,
            convergence_window=NO_CONVERGE,
        )
        counters = profiler.metrics.counters
        assert counters["sim.collapsed"].value == result.interactions
        assert counters["sim.engine[batched]"].value == 1
        assert counters["sim.batch.multinomial"].value > 0
        # Every batch boundary is a collision interaction.
        assert counters["sim.batch.collisions"].value > 0

    def test_observation_does_not_change_the_run(self):
        pp = majority_protocol()
        config = Multiset({"X": 14, "Y": 9})
        kwargs = dict(
            seed=4,
            engine="batched",
            max_interactions=2_000,
            convergence_window=NO_CONVERGE,
        )
        bare = simulate(pp, config, **kwargs)
        observed = simulate(pp, config, observer=TraceRecorder(), **kwargs)
        assert bare.final.to_dict() == observed.final.to_dict()
        assert bare.productive == observed.productive

    def test_per_interaction_recording_gets_truncated_warning(self):
        pp, config = cascade_protocol(20)
        recorder = TraceRecorder()  # default: records everything
        simulate(pp, config, seed=0, engine="batched", observer=recorder)
        warnings = [e for e in recorder.events if e.kind == ev.TRUNCATED]
        assert len(warnings) == 1
        assert warnings[0].data["engine"] == "batched"
        assert "per-interaction" in warnings[0].data["reason"]
        # And the run genuinely emitted no per-interaction events.
        assert not any(e.kind == ev.INTERACTION for e in recorder.events)

    def test_batch_granular_recording_is_not_warned(self):
        pp, config = cascade_protocol(20)
        recorder = TraceRecorder(kinds={ev.BATCH, ev.RUN_START, ev.RUN_END})
        simulate(pp, config, seed=0, engine="batched", observer=recorder)
        assert not any(e.kind == ev.TRUNCATED for e in recorder.events)
        assert any(e.kind == ev.BATCH for e in recorder.events)

    def test_warning_reaches_recorders_inside_composites(self):
        pp, config = cascade_protocol(20)
        recorder = TraceRecorder()
        composite = CompositeObserver(ProfilingObserver(), recorder)
        simulate(pp, config, seed=0, engine="batched", observer=composite)
        assert any(e.kind == ev.TRUNCATED for e in recorder.events)
