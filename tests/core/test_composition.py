"""Tests for protocol composition (negation, products, intervals)."""

import pytest

from repro.baselines import (
    binary_threshold_protocol,
    remainder_protocol,
    unary_threshold_protocol,
)
from repro.core import InvalidProtocolError, Multiset, stabilisation_verdict
from repro.core.composition import (
    conjunction,
    disjunction,
    interval_protocol,
    negate,
    product,
)


class TestNegation:
    def test_negated_threshold(self):
        pp = negate(unary_threshold_protocol(3))
        for x in range(1, 6):
            assert stabilisation_verdict(pp, Multiset({1: x})) is (x < 3)

    def test_double_negation_identity(self):
        pp = unary_threshold_protocol(2)
        back = negate(negate(pp))
        assert back.accepting_states == pp.accepting_states

    def test_name(self):
        assert negate(unary_threshold_protocol(2)).name.startswith("not(")


class TestProductStructure:
    def test_state_count_multiplies(self):
        a = unary_threshold_protocol(2)
        b = unary_threshold_protocol(3)
        prod = conjunction(a, b)
        assert prod.state_count == a.state_count * b.state_count

    def test_single_input_state_paired(self):
        prod = conjunction(unary_threshold_protocol(2), unary_threshold_protocol(3))
        assert prod.input_states == frozenset({(1, 1)})

    def test_multi_input_requires_explicit_pairs(self):
        from repro.baselines import majority_protocol

        with pytest.raises(InvalidProtocolError):
            product(
                majority_protocol(),
                unary_threshold_protocol(2),
                lambda a, b: a and b,
            )

    def test_bad_explicit_pairs_rejected(self):
        with pytest.raises(InvalidProtocolError):
            product(
                unary_threshold_protocol(2),
                unary_threshold_protocol(2),
                lambda a, b: a,
                input_pairs={"input": (99, 1)},
            )


class TestConjunction:
    def test_two_thresholds(self):
        """x >= 2 and x >= 3 <=> x >= 3."""
        prod = conjunction(
            unary_threshold_protocol(2), unary_threshold_protocol(3)
        )
        for x in range(1, 6):
            verdict = stabilisation_verdict(
                prod, Multiset({(1, 1): x}), max_configurations=400_000
            )
            assert verdict is (x >= 3), x

    def test_threshold_and_parity(self):
        """x >= 2 and x even."""
        prod = conjunction(
            unary_threshold_protocol(2),
            remainder_protocol(2, 0),
            input_pairs={"input": (1, "a1")},
        )
        for x in range(1, 6):
            verdict = stabilisation_verdict(
                prod, Multiset({(1, "a1"): x}), max_configurations=400_000
            )
            assert verdict is (x >= 2 and x % 2 == 0), x


class TestDisjunction:
    def test_threshold_or_parity(self):
        """x >= 4 or x odd."""
        prod = disjunction(
            unary_threshold_protocol(4),
            remainder_protocol(2, 1),
            input_pairs={"input": (1, "a1")},
        )
        for x in range(1, 6):
            verdict = stabilisation_verdict(
                prod, Multiset({(1, "a1"): x}), max_configurations=400_000
            )
            assert verdict is (x >= 4 or x % 2 == 1), x


class TestInterval:
    def test_figure1_predicate_as_protocol(self):
        """4 <= x < 7 as a protocol product — the protocol-level
        counterpart of Figure 1's program (exact check on the boundary)."""
        pp = interval_protocol(2, 4)
        initial = next(iter(pp.input_states))
        for x in range(1, 6):
            verdict = stabilisation_verdict(
                pp, Multiset({initial: x}), max_configurations=600_000
            )
            assert verdict is (2 <= x < 4), x

    def test_invalid_bounds(self):
        with pytest.raises(InvalidProtocolError):
            interval_protocol(4, 4)
