"""Tests for the random schedulers."""

import random
from collections import Counter

import pytest

from repro.core import (
    EnabledTransitionScheduler,
    Multiset,
    PopulationProtocol,
    Transition,
    UniformPairScheduler,
)
from repro.core.scheduler import ordered_pair_weight


@pytest.fixture
def flip():
    return PopulationProtocol(
        states=["h", "t"],
        transitions=[Transition("h", "h", "h", "t")],
        input_states=["h"],
        accepting_states=["t"],
    )


class TestPairWeights:
    def test_distinct_states(self):
        c = Multiset({"a": 3, "b": 4})
        assert ordered_pair_weight(c, "a", "b") == 12

    def test_same_state(self):
        c = Multiset({"a": 3})
        assert ordered_pair_weight(c, "a", "a") == 6

    def test_absent_state(self):
        assert ordered_pair_weight(Multiset({"a": 1}), "a", "b") == 0


class TestUniformScheduler:
    def test_single_agent_is_null(self, flip):
        step = UniformPairScheduler().select(flip, Multiset({"h": 1}), random.Random(0))
        assert step.transition is None

    def test_matching_pair_fires(self, flip):
        step = UniformPairScheduler().select(flip, Multiset({"h": 2}), random.Random(0))
        assert step.transition == flip.transitions[0]

    def test_null_step_on_unmatched_pair(self, flip):
        # Only t-agents: no transition matches (t, t).
        step = UniformPairScheduler().select(flip, Multiset({"t": 5}), random.Random(0))
        assert step.transition is None
        assert step.pair is not None

    def test_pair_distribution_is_roughly_uniform(self, flip):
        """With 2 h and 2 t agents the ordered pair (h, h) occurs with
        probability 2/12; check the empirical rate."""
        rng = random.Random(42)
        scheduler = UniformPairScheduler()
        config = Multiset({"h": 2, "t": 2})
        hits = 0
        trials = 4000
        for _ in range(trials):
            step = scheduler.select(flip, config, rng)
            if step.transition is not None:
                hits += 1
        assert abs(hits / trials - 2 / 12) < 0.03

    def test_tie_break_uniform_over_candidates(self):
        pp = PopulationProtocol(
            ["a", "b", "c"],
            [Transition("a", "a", "b", "b"), Transition("a", "a", "c", "c")],
            ["a"],
            [],
        )
        rng = random.Random(7)
        seen = Counter()
        for _ in range(400):
            step = UniformPairScheduler().select(pp, Multiset({"a": 2}), rng)
            seen[step.transition.q2] += 1
        assert seen["b"] > 100 and seen["c"] > 100

    def test_tie_break_first(self):
        pp = PopulationProtocol(
            ["a", "b", "c"],
            [Transition("a", "a", "b", "b"), Transition("a", "a", "c", "c")],
            ["a"],
            [],
        )
        rng = random.Random(7)
        scheduler = UniformPairScheduler(tie_break="first")
        for _ in range(50):
            step = scheduler.select(pp, Multiset({"a": 2}), rng)
            assert step.transition.q2 == "b"

    def test_invalid_tie_break(self):
        with pytest.raises(ValueError):
            UniformPairScheduler(tie_break="nope")


class TestEnabledScheduler:
    def test_skips_null_steps(self, flip):
        rng = random.Random(0)
        scheduler = EnabledTransitionScheduler()
        config = Multiset({"h": 2, "t": 100})
        # The uniform scheduler would mostly sample (t, t); the enabled
        # scheduler must return the only productive transition directly.
        step = scheduler.select(flip, config, rng)
        assert step.transition == flip.transitions[0]

    def test_returns_null_when_silent(self, flip):
        step = EnabledTransitionScheduler().select(
            flip, Multiset({"t": 3}), random.Random(0)
        )
        assert step.transition is None

    def test_respects_pair_weights(self):
        pp = PopulationProtocol(
            ["a", "b", "x", "y"],
            [Transition("a", "a", "x", "x"), Transition("b", "b", "y", "y")],
            ["a", "b"],
            [],
        )
        rng = random.Random(11)
        config = Multiset({"a": 10, "b": 2})
        counts = Counter()
        for _ in range(600):
            step = EnabledTransitionScheduler().select(pp, config, rng)
            counts[step.transition.q] += 1
        # weight(a,a) = 90, weight(b,b) = 2: a should dominate heavily.
        assert counts["a"] > counts["b"] * 10
