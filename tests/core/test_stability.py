"""Tests for the exact stable-computation checker (terminal SCCs)."""

import pytest

from repro.core import (
    Multiset,
    NonConvergenceError,
    PopulationProtocol,
    Transition,
    initial_configurations,
    stabilisation_verdict,
    strongly_connected_components,
    terminal_sccs,
    verify_decides,
)


class TestSCC:
    def test_chain(self):
        edges = {1: frozenset({2}), 2: frozenset({3}), 3: frozenset()}
        comps = strongly_connected_components([1, 2, 3], edges)
        assert sorted(len(c) for c in comps) == [1, 1, 1]

    def test_cycle(self):
        edges = {1: frozenset({2}), 2: frozenset({1})}
        comps = strongly_connected_components([1, 2], edges)
        assert len(comps) == 1 and comps[0] == {1, 2}

    def test_terminal_detection(self):
        edges = {1: frozenset({2}), 2: frozenset({3}), 3: frozenset({2})}
        terms = terminal_sccs([1, 2, 3], edges)
        assert terms == [{2, 3}]

    def test_two_terminals(self):
        edges = {
            0: frozenset({1, 2}),
            1: frozenset(),
            2: frozenset(),
        }
        terms = terminal_sccs([0, 1, 2], edges)
        assert sorted(map(sorted, terms)) == [[1], [2]]

    def test_deep_graph_no_recursion_limit(self):
        n = 5000
        edges = {i: frozenset({i + 1}) for i in range(n)}
        edges[n] = frozenset()
        comps = strongly_connected_components(range(n + 1), edges)
        assert len(comps) == n + 1


class TestVerdicts:
    def test_epidemic_true(self):
        pp = PopulationProtocol(
            ["s", "i"],
            [Transition("i", "s", "i", "i")],
            ["s", "i"],
            ["i"],
        )
        assert stabilisation_verdict(pp, Multiset({"i": 1, "s": 4})) is True
        assert stabilisation_verdict(pp, Multiset({"s": 4})) is False

    def test_oscillator_is_undecided(self):
        pp = PopulationProtocol(
            ["a", "b"],
            [Transition("a", "b", "b", "a")],
            ["a", "b"],
            ["a"],
        )
        assert stabilisation_verdict(pp, Multiset({"a": 1, "b": 1})) is None

    def test_disagreeing_terminals_undecided(self):
        """A nondeterministic race: first pair to meet decides the output —
        fair runs disagree, so nothing is decided."""
        pp = PopulationProtocol(
            ["a", "T", "F"],
            [
                Transition("a", "a", "T", "T"),
                Transition("a", "a", "F", "F"),
                Transition("T", "a", "T", "T"),
                Transition("F", "a", "F", "F"),
            ],
            ["a"],
            ["T"],
        )
        assert stabilisation_verdict(pp, Multiset({"a": 4})) is None


class TestInitialEnumeration:
    def test_single_input_state(self):
        pp = PopulationProtocol(["a"], [], ["a"], [])
        configs = list(initial_configurations(pp, 3))
        assert configs == [Multiset({"a": 3})]

    def test_two_input_states_counts(self, majority):
        configs = list(initial_configurations(majority, 4))
        assert len(configs) == 5  # (0,4), (1,3), ..., (4,0)
        assert all(c.size == 4 for c in configs)

    def test_zero_population_empty(self, majority):
        assert list(initial_configurations(majority, 0)) == []


class TestVerifyDecides:
    def test_majority_passes(self, majority):
        verify_decides(majority, lambda c: c["X"] >= c["Y"], populations=[1, 2, 3, 4])

    def test_wrong_predicate_fails(self, majority):
        with pytest.raises(NonConvergenceError):
            verify_decides(majority, lambda c: c["X"] > c["Y"], populations=[2])
