"""Unit and property tests for multiset configurations (Section 3)."""

import pytest
from hypothesis import given, strategies as st

from repro.core import InvalidConfigurationError, Multiset

STATES = ["a", "b", "c", "d"]

counts_strategy = st.dictionaries(
    st.sampled_from(STATES), st.integers(min_value=0, max_value=50), max_size=4
)


class TestConstruction:
    def test_empty(self):
        c = Multiset()
        assert c.size == 0
        assert c.is_empty()
        assert c.support() == frozenset()

    def test_from_mapping(self):
        c = Multiset({"a": 2, "b": 0, "c": 1})
        assert c["a"] == 2
        assert c["b"] == 0
        assert "b" not in c  # zero counts are canonicalised away
        assert c.size == 3

    def test_from_iterable(self):
        c = Multiset(["a", "a", "b"])
        assert c["a"] == 2 and c["b"] == 1

    def test_negative_count_rejected(self):
        with pytest.raises(InvalidConfigurationError):
            Multiset({"a": -1})

    def test_singleton(self):
        c = Multiset.singleton("q", 3)
        assert c["q"] == 3 and c.size == 3

    def test_bignum_counts(self):
        huge = 2 ** (2**10)
        c = Multiset({"a": huge})
        assert c.size == huge
        assert (c + c)["a"] == 2 * huge


class TestOperators:
    def test_addition(self):
        c = Multiset({"a": 1}) + Multiset({"a": 2, "b": 1})
        assert c["a"] == 3 and c["b"] == 1

    def test_subtraction(self):
        c = Multiset({"a": 3, "b": 1}) - Multiset({"a": 1, "b": 1})
        assert c["a"] == 2 and "b" not in c

    def test_subtraction_underflow_rejected(self):
        with pytest.raises(InvalidConfigurationError):
            Multiset({"a": 1}) - Multiset({"a": 2})

    def test_ordering(self):
        small = Multiset({"a": 1})
        big = Multiset({"a": 2, "b": 1})
        assert small <= big
        assert small < big
        assert not big <= small

    def test_le_incomparable(self):
        x = Multiset({"a": 2})
        y = Multiset({"b": 2})
        assert not x <= y and not y <= x

    def test_comparison_with_non_multiset_not_implemented(self):
        c = Multiset({"a": 1})
        assert c.__le__({"a": 1}) is NotImplemented
        assert c.__lt__({"a": 1}) is NotImplemented
        with pytest.raises(TypeError):
            c <= {"a": 1}
        with pytest.raises(TypeError):
            c < 5

    def test_equality_and_hash(self):
        assert Multiset({"a": 1, "b": 0}) == Multiset({"a": 1})
        assert hash(Multiset({"a": 2})) == hash(Multiset({"a": 2}))

    def test_scale(self):
        c = Multiset({"a": 2, "b": 1}).scale(3)
        assert c["a"] == 6 and c["b"] == 3
        assert Multiset({"a": 1}).scale(0).is_empty()

    def test_scale_negative_rejected(self):
        with pytest.raises(InvalidConfigurationError):
            Multiset({"a": 1}).scale(-1)

    def test_count_over_subset(self):
        c = Multiset({"a": 2, "b": 3, "c": 5})
        assert c.count(["a", "c"]) == 7
        assert c.count([]) == 0


class TestMutation:
    def test_inc_dec(self):
        c = Multiset({"a": 1})
        c.inc("b")
        c.dec("a")
        assert c["b"] == 1 and "a" not in c and c.size == 1

    def test_dec_underflow(self):
        c = Multiset({"a": 1})
        with pytest.raises(InvalidConfigurationError):
            c.dec("a", 2)

    def test_copy_is_independent(self):
        c = Multiset({"a": 1})
        d = c.copy()
        d.inc("a")
        assert c["a"] == 1 and d["a"] == 2

    def test_freeze_roundtrip(self):
        c = Multiset({"a": 2, "b": 1})
        assert dict(c.freeze()) == {"a": 2, "b": 1}

    def test_watchers_see_every_count_change(self):
        c = Multiset({"a": 1})
        seen = []
        c.watch(lambda state, new: seen.append((state, new)))
        c.inc("a")
        c.inc("b", 3)
        c.dec("a", 2)
        assert seen == [("a", 2), ("b", 3), ("a", 0)]
        c.unwatch(next(iter(c._watchers)))
        assert not c._watchers

    def test_copy_drops_watchers(self):
        c = Multiset({"a": 1})
        seen = []
        c.watch(lambda state, new: seen.append((state, new)))
        d = c.copy()
        d.inc("a")
        assert seen == []


@given(counts_strategy, counts_strategy)
def test_addition_commutes(x, y):
    assert Multiset(x) + Multiset(y) == Multiset(y) + Multiset(x)


@given(counts_strategy, counts_strategy, counts_strategy)
def test_addition_associates(x, y, z):
    a, b, c = Multiset(x), Multiset(y), Multiset(z)
    assert (a + b) + c == a + (b + c)


@given(counts_strategy, counts_strategy)
def test_add_then_subtract_roundtrips(x, y):
    a, b = Multiset(x), Multiset(y)
    assert (a + b) - b == a


@given(counts_strategy, counts_strategy)
def test_size_additive(x, y):
    a, b = Multiset(x), Multiset(y)
    assert (a + b).size == a.size + b.size


@given(counts_strategy, counts_strategy)
def test_le_iff_subtraction_defined(x, y):
    a, b = Multiset(x), Multiset(y)
    if a <= b:
        assert (b - a) + a == b
    else:
        with pytest.raises(InvalidConfigurationError):
            b - a


@given(counts_strategy)
def test_support_matches_positive_counts(x):
    c = Multiset(x)
    assert c.support() == frozenset(k for k, v in x.items() if v > 0)


@given(counts_strategy)
def test_hash_consistent_with_equality(x):
    assert hash(Multiset(x)) == hash(Multiset(dict(x)))
